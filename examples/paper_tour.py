#!/usr/bin/env python
"""A guided tour of the paper, section by section, live.

Walks through the paper's storyline executing the reproduction at each
step: the slack condition, the bound function and its phases, Algorithm 1
in action, the Theorem-1 adversary, Corollary 1, and the commitment
taxonomy.  Ten minutes of reading, one second of compute.

Run:  python examples/paper_tour.py
"""

import math

from repro import (
    Instance,
    Job,
    ThresholdPolicy,
    c_bound,
    corner_values,
    duel,
    simulate,
    threshold_parameters,
)
from repro.adversary import enumerate_decision_tree
from repro.analysis.tables import render_rows
from repro.core.params import corner_closed_form
from repro.core.randomized import expected_load_classify_select
from repro.offline.bracket import opt_bracket
from repro.workloads import alternating_instance


def section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    section("§2  The slack condition: d >= (1+eps)p + r")
    eps = 0.2
    job = Job(release=1.0, processing=2.0, deadline=1.0 + 1.2 * 2.0)
    print(f"job {job!r}: slack = {job.slack():.3f} (tight at eps = {eps})")

    section("§2  The bound function c(eps, m) and its phases")
    rows = []
    for m in (1, 2, 3):
        p = threshold_parameters(eps, m)
        rows.append(
            {
                "m": m,
                "c(0.2, m)": p.c,
                "phase k": p.k,
                "f ladder": ", ".join(f"{v:.3f}" for v in p.f),
            }
        )
    print(render_rows(rows))
    print(
        f"\ncorners for m=3: {[round(float(c), 4) for c in corner_values(3)]}"
        f"  (closed form (km/(km+2m+1))^(m-k): "
        f"{corner_closed_form(1, 3):.4f}, {corner_closed_form(2, 3):.4f})"
    )

    section("§4  Algorithm 1 (Threshold) deciding a stream")
    jobs = [
        Job(0.0, 1.0, 10.0),
        Job(0.0, 1.0, 1.2),   # tight filler
        Job(0.1, 4.0, 5.0),   # tight whale
    ]
    inst = Instance(jobs, machines=2, epsilon=eps)
    schedule = simulate(ThresholdPolicy(), inst)
    print(schedule.meta["trace"].render())
    print(schedule.gantt_ascii(width=56))
    bracket = opt_bracket(inst)
    print(
        f"load {schedule.accepted_load:.2f} vs OPT {bracket.upper:.2f} "
        f"(guarantee {c_bound(eps, 2):.2f})"
    )

    section("§3  Theorem 1: the adversary forces c(eps, m)")
    result = duel(ThresholdPolicy(), m=3, epsilon=eps)
    print(
        f"forced ratio {result.forced_ratio:.4f} vs c(0.2, 3) = "
        f"{c_bound(eps, 3):.4f}  (game: u={result.summary['u']}, "
        f"h={result.summary['final_h']})"
    )
    leaves = enumerate_decision_tree(3, eps)
    print(
        "all game-tree leaves: "
        + ", ".join(f"{o.forced_ratio:.3f}" for o in leaves)
        + "  — no escape below c"
    )

    section("Cor. 1  Randomized classify-and-select on the deterministic trap")
    trap = alternating_instance(pairs=4, machines=1, epsilon=0.05)
    expected, _ = expected_load_classify_select(trap, 3)
    det = simulate(ThresholdPolicy(), trap)
    ub = opt_bracket(trap, force_bounds=True).upper
    print(
        f"E[ratio] randomized = {ub / expected:.3f}  vs deterministic "
        f"{ub / det.accepted_load:.2f}  (ln(1/eps) = {math.log(20):.3f}, "
        f"1 + 1/eps = 21)"
    )

    section("§1  The commitment taxonomy, measured")
    from repro.engine.admission import AdmissionLazyPolicy, simulate_admission
    from repro.engine.delayed import DelayedGreedyPolicy, simulate_delayed
    from repro.baselines.greedy import GreedyPolicy

    trap3 = alternating_instance(pairs=3, machines=3, epsilon=0.05)
    print(
        render_rows(
            [
                {"model": "immediate greedy", "load": simulate(GreedyPolicy(), trap3).accepted_load},
                {"model": "immediate Threshold", "load": simulate(ThresholdPolicy(), trap3).accepted_load},
                {"model": "delayed greedy (d=eps)", "load": simulate_delayed(DelayedGreedyPolicy(), trap3, 0.05).accepted_load},
                {"model": "on-admission (lazy)", "load": simulate_admission(AdmissionLazyPolicy(), trap3).accepted_load},
                {"model": "offline ceiling", "load": opt_bracket(trap3, force_bounds=True).upper},
            ],
            precision=1,
        )
    )
    print(
        "\nThe paper's point in one table: with full immediate commitment,\n"
        "Threshold recovers most of what weaker commitment models buy."
    )


if __name__ == "__main__":
    main()
