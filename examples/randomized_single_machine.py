#!/usr/bin/env python
"""Corollary 1: randomized classify-and-select on a single machine.

Runs the deterministic Threshold algorithm on m* ~ ln(1/eps) virtual
machines, selects one uniformly at random, and executes only its jobs on
the real machine.

The demonstration workload is the *bait-and-whale* stream (unit bait with
tight slack, then a ~1/eps whale whose deadline rules out waiting behind
the bait): any deterministic immediate-commitment algorithm takes the
bait and loses the whale — the Omega(1/eps) lower bound — while the
virtual multi-machine simulation catches the whale on an idle virtual
machine, so a random selection keeps an eps-independent share of it and
the expected ratio grows only like O(log 1/eps).

Run:  python examples/randomized_single_machine.py
"""

import math

from repro.analysis import render_rows
from repro.baselines.registry import run_algorithm
from repro.core.randomized import default_virtual_machines, expected_load_classify_select
from repro.offline.bracket import opt_bracket
from repro.workloads import alternating_instance


def main() -> None:
    rows = []
    for eps in [0.2, 0.1, 0.05, 0.02, 0.01]:
        # One bait + one whale per round, single machine, six rounds.
        instance = alternating_instance(pairs=6, machines=1, epsilon=eps)
        bracket = opt_bracket(instance, force_bounds=True)
        m_star = default_virtual_machines(eps)
        expected, _ = expected_load_classify_select(instance, m_star)

        deterministic = run_algorithm("goldwasser-kerbikov", instance)
        rows.append(
            {
                "eps": eps,
                "m*": m_star,
                "E[load] randomized": expected,
                "load deterministic": deterministic.accepted_load,
                "E[ratio] randomized": bracket.upper / expected,
                "ratio deterministic": bracket.upper / deterministic.accepted_load,
                "2+1/eps": 2 + 1 / eps,
                "ln(1/eps)": math.log(1 / eps),
            }
        )
    print(
        render_rows(
            rows,
            title="Corollary 1 — classify-and-select vs deterministic single machine "
            "on bait-and-whale streams (ratios vs certified OPT upper bound)",
            precision=3,
        )
    )
    print()
    print(
        "The deterministic ratio blows up like Theta(1/eps) (it always takes\n"
        "the bait); the randomized expectation stays within a small multiple\n"
        "of ln(1/eps) — Corollary 1 in action.  Per-virtual-machine loads for\n"
        "eps = 0.02 show where the whales went:"
    )
    eps = 0.02
    instance = alternating_instance(pairs=6, machines=1, epsilon=eps)
    _, loads = expected_load_classify_select(instance, default_virtual_machines(eps))
    print("    " + ", ".join(f"{x:.2f}" for x in loads))


if __name__ == "__main__":
    main()
