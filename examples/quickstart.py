#!/usr/bin/env python
"""Quickstart: admit jobs online with the paper's Threshold algorithm.

Builds a small job stream, runs Algorithm 1 with immediate commitment,
prints the decision trace, the resulting Gantt chart, and the certified
competitive-ratio measurement against the exact offline optimum.

Run:  python examples/quickstart.py
"""

from repro import Instance, Job, ThresholdPolicy, simulate, theorem2_bound
from repro.offline import opt_bracket


def main() -> None:
    epsilon = 0.25  # every deadline has at least 25% slack
    machines = 2

    # A hand-crafted stream: two early fillers, one oversized whale whose
    # deadline is tight, and a couple of late stragglers.
    jobs = [
        Job(release=0.0, processing=1.0, deadline=4.0),
        Job(release=0.2, processing=1.5, deadline=6.0),
        Job(release=0.5, processing=4.0, deadline=5.5),   # tight whale
        Job(release=2.0, processing=1.0, deadline=9.0),
        Job(release=3.0, processing=0.5, deadline=4.0),
    ]
    instance = Instance(jobs, machines=machines, epsilon=epsilon, name="quickstart")

    schedule = simulate(ThresholdPolicy(), instance)

    print("Decision trace (immediate commitment — one final verdict per job):")
    print(schedule.meta["trace"].render())
    print()
    print("Committed schedule:")
    print(schedule.gantt_ascii(width=60))
    print()

    bracket = opt_bracket(instance)  # exact for this size
    ratio = bracket.upper / schedule.accepted_load
    bound = theorem2_bound(epsilon, machines)
    print(f"accepted load      : {schedule.accepted_load:.3f}")
    print(f"offline optimum    : {bracket.upper:.3f} (exact={bracket.exact})")
    print(f"empirical ratio    : {ratio:.3f}")
    print(f"Theorem 2 guarantee: {bound:.3f}")
    assert ratio <= bound + 1e-9, "guarantee violated?!"
    print("-> within the paper's guarantee, as proved.")


if __name__ == "__main__":
    main()
