#!/usr/bin/env python
"""Who gets in?  Acceptance profiles of the admission policies.

Buckets an overloaded stream's jobs into size quintiles and shows, per
algorithm, the fraction of each bucket's load that was admitted.  Greedy
admits whatever arrives while capacity lasts; the Threshold algorithm
visibly shifts acceptance toward larger jobs (its deadline gate scales
with outstanding load, so small fillers are the first to be refused).
Also demonstrates the oracle reference and a parallel sweep.

Run:  python examples/acceptance_profiles.py
"""

from functools import partial

from repro.analysis.profile import compare_profiles
from repro.analysis.tables import render_rows
from repro.baselines.reference import run_oracle
from repro.core.threshold import ThresholdPolicy
from repro.baselines.greedy import GreedyPolicy
from repro.engine.simulator import simulate
from repro.workloads import random_instance
from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.sweep import SweepSpec, aggregate_rows


def main() -> None:
    instance = random_instance(
        160, 3, 0.1, seed=2, distribution="bimodal", tight_fraction=0.8
    )
    schedules = {
        "threshold": simulate(ThresholdPolicy(), instance),
        "greedy": simulate(GreedyPolicy(), instance),
        "oracle": run_oracle(instance),
    }
    rows = compare_profiles(schedules, dimension="processing", buckets=5)
    print(
        render_rows(
            rows,
            title="accepted-load fraction per size quintile "
            "(bimodal overload, m=3, eps=0.1)",
            precision=2,
        )
    )
    print()
    for name, s in schedules.items():
        print(f"{name:>10s}: total accepted load {s.accepted_load:8.2f}")
    print()

    spec = SweepSpec(
        epsilons=[0.1, 0.3],
        machine_counts=[2, 3],
        algorithms=["threshold", "greedy"],
        # partial over the library generator: workload(m, eps, seed) with
        # n = 20 bound — picklable, so it survives the process pool.
        workload=partial(random_instance, 20),
        repetitions=3,
        base_seed=11,
    )
    result = execute_sweep(spec, ExecutionPolicy(workers=2, strict=True))
    print(
        render_rows(
            aggregate_rows(result.rows),
            title="parallel sweep (2 workers, deterministic per-cell seeds)",
        )
    )


if __name__ == "__main__":
    main()
