#!/usr/bin/env python
"""The commitment-model taxonomy of §1, measured side by side.

Runs the same bait-and-whale stream through every commitment model the
paper's introduction discusses:

* immediate commitment (this paper's setting): greedy and Threshold;
* δ-delayed commitment (Chen et al. style): delayed greedy for several δ;
* commitment with penalties (Fung style): revocable greedy across φ;
* the offline optimum as the ceiling.

The punchline: the Threshold algorithm — with *zero* deferral and *zero*
revocation — recovers most of the value the relaxed models buy with
their extra power.

Run:  python examples/commitment_models.py
"""

from repro.analysis.tables import render_rows
from repro.baselines.registry import run_algorithm
from repro.engine.admission import AdmissionLazyPolicy, simulate_admission
from repro.engine.delayed import DelayedGreedyPolicy, simulate_delayed
from repro.engine.penalties import RevocableGreedyPolicy, simulate_with_penalties
from repro.offline.bracket import opt_bracket
from repro.workloads import alternating_instance


def main() -> None:
    eps, machines, rounds = 0.05, 3, 4
    instance = alternating_instance(pairs=rounds, machines=machines, epsilon=eps)
    opt_upper = opt_bracket(instance, force_bounds=True).upper

    rows = []

    def add(model: str, value: float, note: str = "") -> None:
        rows.append(
            {
                "model": model,
                "objective": value,
                "fraction of OPT": value / opt_upper,
                "note": note,
            }
        )

    add("immediate greedy", run_algorithm("greedy", instance).accepted_load,
        "takes every bait, loses every whale")
    add("immediate THRESHOLD (the paper)",
        run_algorithm("threshold", instance).accepted_load,
        "no deferral, no revocation")
    for frac in (0.25, 1.0):
        load = simulate_delayed(
            DelayedGreedyPolicy(), instance, frac * eps
        ).accepted_load
        add(f"delayed greedy, delta = {frac:g}*eps", load, "decides after seeing whales")
    add(
        "commitment on admission (lazy)",
        simulate_admission(AdmissionLazyPolicy(), instance).accepted_load,
        "waits; commits only at start",
    )
    for phi in (0.0, 1.0, 5.0):
        out = simulate_with_penalties(RevocableGreedyPolicy(), instance, phi)
        add(
            f"revocable greedy, phi = {phi:g}",
            out.net_value,
            f"{len(out.revoked)} revocations, penalty {out.penalty_paid:.1f}",
        )
    add("offline optimum (upper bound)", opt_upper, "clairvoyant ceiling")

    print(
        render_rows(
            rows,
            title=(
                f"Commitment models on bait-and-whale "
                f"(m={machines}, eps={eps}, {rounds} rounds)"
            ),
            precision=3,
        )
    )
    print()
    print(
        "Reading guide: the gap between 'immediate greedy' and everything\n"
        "else is the price of committing blindly; the small gap between\n"
        "THRESHOLD and the relaxed models is the paper's contribution —\n"
        "worst-case-optimal admission without deferral or revocation."
    )


if __name__ == "__main__":
    main()
