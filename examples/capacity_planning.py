#!/usr/bin/env python
"""Capacity planning with the bound function: the operator's workflow.

The paper frames slack as "a system parameter determined by the system
provider".  This example inverts the theory into the two decisions a
provider actually makes:

1. *How many machines do I need* to guarantee a worst-case ratio R at my
   current SLA slack?
2. *How much deadline stretch (slack) must I sell* to meet R on the fleet
   I have?

It also prints the marginal value of each added machine — including the
curious dip where Theorem 2's additive (3−e)/(e−1) loss switches on —
and validates one planned configuration by simulation.

Run:  python examples/capacity_planning.py
"""

from repro.analysis.capacity import (
    machines_for_target,
    marginal_machine_value,
    planning_table,
    slack_for_target,
)
from repro.analysis.ratio import empirical_ratio
from repro.analysis.tables import render_rows
from repro.workloads import random_instance


def main() -> None:
    print("trade-off surface: worst-case guarantee per (slack, fleet):")
    print(
        render_rows(
            planning_table(epsilons=(0.05, 0.1, 0.2), machine_counts=(1, 2, 4, 8)),
            precision=3,
        )
    )
    print()

    target = 5.0
    for eps in (0.05, 0.1, 0.2):
        m = machines_for_target(eps, target)
        print(
            f"target ratio {target} at eps={eps}: "
            + (f"need m = {m} machines" if m else "unachievable with machines alone")
        )
    for m in (2, 4, 8):
        eps = slack_for_target(m, target)
        print(
            f"target ratio {target} with m={m}: "
            + (f"need slack eps >= {eps:.4f}" if eps else "unachievable")
        )
    print()

    print("marginal value of each added machine at eps = 0.1:")
    print(
        render_rows(
            marginal_machine_value(0.1, up_to=9),
            columns=["machines", "c", "guarantee", "guarantee_improvement"],
            precision=4,
        )
    )
    print(
        "\n(note m=8: the guarantee *worsens* — Lemma 11's additive loss\n"
        "switches on when the phase index reaches 4, even though the tight\n"
        "bound c keeps improving; the planner linear-scans for this reason)"
    )
    print()

    # Validate one planned configuration empirically.
    eps, m = 0.1, machines_for_target(0.1, target)
    inst = random_instance(14, m, eps, seed=3)
    report = empirical_ratio("threshold", inst)
    print(
        f"validation: threshold on a random instance with the planned "
        f"(eps={eps}, m={m}): certified ratio {report.ratio_upper:.3f} "
        f"<= target {target} (guarantee {report.guarantee:.3f})"
    )
    assert report.ratio_upper <= target + 1e-9


if __name__ == "__main__":
    main()
