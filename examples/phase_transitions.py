#!/usr/bin/env python
"""Reproduce Fig. 1: the tight bound c(eps, m) and its phase transitions.

Evaluates the bound function for m = 1..4 on a log grid, draws the curves
as ASCII art with the transition circles, verifies Eq. (1)'s closed form
for m = 2, detects the corners numerically, and writes the series to CSV
for external plotting.

Run:  python examples/phase_transitions.py [--csv fig1.csv]
"""

import argparse

import numpy as np

from repro.analysis.phase import detect_transitions, fig1_series, log_grid
from repro.analysis.plotting import ascii_plot, series_to_csv
from repro.analysis.tables import render_rows
from repro.core.params import closed_form_m2, corner_values


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--csv", help="write the curve series to this CSV file")
    args = parser.parse_args()

    grid = log_grid(0.02, 1.0, 250)
    series = fig1_series((1, 2, 3, 4), epsilons=grid)

    plot = ascii_plot(
        {f"m={s.m}": (s.epsilons, np.minimum(s.values, 25.0)) for s in series},
        logx=True,
        markers={f"m={s.m}": s.transitions for s in series},
        title="Fig. 1 — c(eps, m) for m = 1..4 (O marks phase transitions; clipped at 25)",
        width=78,
        height=24,
    )
    print(plot)
    print()

    rows = []
    for s in series:
        detected = detect_transitions(s.epsilons, s.values) if s.m > 1 else []
        analytic = list(corner_values(s.m)[1:-1])
        rows.append(
            {
                "m": s.m,
                "analytic corners": ", ".join(f"{c:.4f}" for c in analytic) or "—",
                "detected corners": ", ".join(f"{c:.4f}" for c in detected) or "—",
            }
        )
    print(render_rows(rows, title="phase transitions: analytic vs detected"))
    print()

    # Eq. (1) closed-form check for m = 2.
    worst = max(
        abs(v - closed_form_m2(float(e)))
        for e, v in zip(series[1].epsilons, series[1].values)
    )
    print(f"Eq. (1) closed form vs numeric recursion (m=2): max |diff| = {worst:.2e}")

    if args.csv:
        text = series_to_csv(
            {f"m={s.m}": (s.epsilons, s.values) for s in series}, x_name="epsilon"
        )
        with open(args.csv, "w") as fh:
            fh.write(text)
        print(f"wrote {args.csv}")


if __name__ == "__main__":
    main()
