#!/usr/bin/env python
"""Hunt for hard instances, then diagnose what made them hard.

Workflow:

1. run the blind falsification search against greedy and Threshold on a
   single machine (no knowledge of the paper's constructions);
2. compare the found hardness against the theoretical guarantees;
3. open the hood on the hardest instance found: the covered-interval
   diagnostics (the paper's own proof objects) show exactly which time
   window the policy conceded and at what local ratio.

Run:  python examples/falsification_hunt.py
"""

from repro.adversary.search import falsify
from repro.analysis.covered import rows as covered_rows
from repro.analysis.tables import render_rows
from repro.baselines.registry import run_algorithm
from repro.core.guarantees import greedy_bound, theorem2_bound


def main() -> None:
    m, eps, budget = 1, 0.1, 300

    results = {
        name: falsify(name, machines=m, epsilon=eps, budget=budget, n_jobs=6, seed=1)
        for name in ("greedy", "threshold")
    }
    print(
        render_rows(
            [
                {
                    "algorithm": name,
                    "found ratio": r.best_ratio,
                    "guarantee": greedy_bound(eps, m)
                    if name == "greedy"
                    else theorem2_bound(eps, m),
                    "improvements": r.improvements,
                    "jobs in witness": len(r.best_instance),
                }
                for name, r in results.items()
            ],
            title=f"blind search, m={m}, eps={eps}, budget={budget}",
            precision=3,
        )
    )
    print()

    hardest = results["greedy"]
    print("hardest instance found against greedy:")
    for job in hardest.best_instance:
        print(
            f"  job {job.job_id}: r={job.release:.3f} p={job.processing:.3f} "
            f"d={job.deadline:.3f} (slack {job.slack():.3f})"
        )
    print()

    schedule = run_algorithm("greedy", hardest.best_instance).detail
    print("greedy's schedule on it:")
    print(schedule.gantt_ascii(width=60))
    print()
    print("covered-interval diagnostics (the Section-4 proof objects):")
    print(render_rows(covered_rows(schedule), precision=3))
    print()
    print(
        "The ratio_bound column is Definition 3's conservative per-interval\n"
        "bound: the window where it peaks is the window the policy conceded\n"
        "— on the found witness it is exactly the bait-then-whale pattern\n"
        "the paper's lower bound formalises."
    )


if __name__ == "__main__":
    main()
