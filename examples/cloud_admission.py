#!/usr/bin/env python
"""IaaS admission control: the paper's motivating cloud scenario.

Generates a multi-service-level cloud workload (interactive jobs at the
slack frontier, batch jobs with generous deadlines), runs every algorithm
in the registry on it, and reports accepted load, per-service acceptance,
and certified empirical ratios against the offline bracket.

Run:  python examples/cloud_admission.py
"""

from collections import defaultdict

from repro.analysis import compare_algorithms, render_rows
from repro.baselines.registry import run_algorithm
from repro.model.schedule import Schedule
from repro.workloads.cloud import cloud_instance, per_service_loads


def per_service_acceptance(result) -> dict[str, float]:
    """Fraction of each service class's load that was accepted."""
    offered = per_service_loads(result.instance)
    accepted: dict[str, float] = defaultdict(float)
    detail = result.detail
    if isinstance(detail, Schedule):
        accepted_ids = set(detail.assignments)
    else:  # preemptive / migration outcomes
        accepted_ids = set(detail.accepted_ids)
    for job in result.instance:
        if job.job_id in accepted_ids:
            accepted[job.tag("service", "?")] += job.processing
    return {svc: accepted[svc] / offered[svc] for svc in offered}


def main() -> None:
    epsilon, machines = 0.1, 4
    instance = cloud_instance(
        n=250, machines=machines, epsilon=epsilon, seed=42, utilization=1.8
    )
    print(f"workload: {instance.describe()}")
    print(f"offered load per service: {per_service_loads(instance)}")
    print()

    algorithms = ["threshold", "greedy", "lee-style", "dasgupta-palis", "migration-greedy"]
    reports = compare_algorithms(algorithms, instance)
    print(
        render_rows(
            [r.as_dict() for r in reports],
            columns=["algorithm", "load", "ratio_upper", "guarantee", "within"],
            title=f"cloud admission (n={len(instance)}, m={machines}, eps={epsilon})",
        )
    )
    print()

    print("per-service acceptance (fraction of offered load admitted):")
    rows = []
    for name in algorithms:
        result = run_algorithm(name, instance)
        row = {"algorithm": name}
        row.update(per_service_acceptance(result))
        rows.append(row)
    print(render_rows(rows, precision=2))
    print()
    print("fleet utilization over time (one strip per algorithm):")
    from repro.analysis.latency import compare_latency
    from repro.analysis.timeline import render_heat_strip, utilization
    from repro.model.schedule import Schedule

    schedules = {}
    for name in algorithms:
        result = run_algorithm(name, instance)
        if isinstance(result.detail, Schedule):
            schedules[name] = result.detail
            series = utilization(result.detail, windows=64)
            print(render_heat_strip(series, label=name[:8]))
    print()
    print("responsiveness of accepted jobs (waiting and stretch):")
    print(
        render_rows(
            compare_latency(schedules),
            columns=["algorithm", "mean_wait", "p95_wait", "mean_stretch"],
            precision=3,
        )
    )
    print()
    print(
        "Note how the threshold algorithm protects capacity for large\n"
        "batch/analytics jobs while greedy fills up on interactive ones —\n"
        "the worst-case-safe behaviour Theorems 1/2 are about."
    )


if __name__ == "__main__":
    main()
