#!/usr/bin/env python
"""Play the Theorem-1 adversary against every online algorithm.

The three-phase adaptive adversary of Section 3 forces any deterministic
immediate-commitment algorithm to a ratio of at least c(eps, m).  This
example runs the duel for several (m, eps) pairs and shows that:

* the Threshold algorithm is forced to essentially exactly c(eps, m)
  (it is optimal against this adversary, Theorem 2);
* greedy and the Lee-style baseline are forced well above it.

Run:  python examples/adversary_duel.py
"""

from repro.adversary import duel, enumerate_decision_tree, render_decision_tree
from repro.analysis import render_rows
from repro.baselines import GreedyPolicy, LeeStylePolicy
from repro.core import ThresholdPolicy, c_bound


def main() -> None:
    rows = []
    for m, eps in [(1, 0.1), (2, 0.1), (2, 0.4), (3, 0.05), (3, 0.2), (4, 0.1)]:
        for factory in (ThresholdPolicy, GreedyPolicy, LeeStylePolicy):
            policy = factory()
            result = duel(policy, m=m, epsilon=eps)
            rows.append(
                {
                    "m": m,
                    "eps": eps,
                    "algorithm": policy.name,
                    "forced_ratio": result.forced_ratio,
                    "c(eps,m)": c_bound(eps, m),
                    "alg_load": result.algorithm_load,
                    "opt": result.constructive_opt,
                    "u": result.summary["u"],
                    "h": result.summary["final_h"],
                }
            )
    print(render_rows(rows, title="Theorem-1 adversary duels (lower the better)"))
    print()

    print("Fig. 2 reproduction: the full decision tree for m=3, eps=0.2:")
    outcomes = enumerate_decision_tree(3, 0.2)
    print(render_decision_tree(outcomes))
    print()
    print(
        "Every leaf forces at least c(eps, m) — the adversary wins whatever\n"
        "the algorithm does; Threshold merely loses by the least possible."
    )


if __name__ == "__main__":
    main()
