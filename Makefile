# Development targets for the reproduction repository.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: install test verify bench examples report docs docs-check clean all

install:
	pip install -e .

# Tier-1 gate: exactly what CI runs.
test:
	$(PYTHON) -m pytest -x -q

verify: test

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f > /dev/null || exit 1; done
	@echo "all examples ran clean"

report:
	$(PYTHON) -m repro report --out report.md

docs:
	$(PYTHON) -m repro.tools.apidoc --out docs/api.md

# CI staleness gate: fails when docs/api.md was not regenerated.
docs-check:
	$(PYTHON) -m repro.tools.apidoc --check

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -prune -exec rm -rf {} +

all: install test bench
