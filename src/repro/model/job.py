"""The job model.

A job :math:`J_j` is the triple :math:`(r_j, p_j, d_j)` of release date,
processing time and deadline (Section 2 of the paper).  The deadline has to
satisfy the *slack condition*

.. math::    d_j \\ge (1 + \\varepsilon) \\cdot p_j + r_j

for the system-wide slack parameter :math:`\\varepsilon`.  When the
condition holds with equality the job has *tight slack*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any

from repro.utils.tolerances import TIME_EPS, fge


@dataclass(frozen=True, slots=True)
class Job:
    """An immutable job ``(release, processing, deadline)``.

    Attributes
    ----------
    release:
        Release date :math:`r_j \\ge 0`; the job becomes known to the online
        algorithm exactly at this time (online-over-time model).
    processing:
        Processing time :math:`p_j > 0`; also the job's value under the load
        objective :math:`\\sum p_j (1 - U_j)`.
    deadline:
        Absolute deadline :math:`d_j`; a non-preemptive execution interval
        ``[s, s + p)`` is feasible iff ``s >= release`` and
        ``s + processing <= deadline``.
    job_id:
        Stable identifier assigned by the enclosing instance (submission
        order index unless stated otherwise).
    weight:
        Optional value :math:`w_j` for the *general* objective
        :math:`\\sum w_j (1 - U_j)` of Lucier et al. [28] — the paper's
        §1 notes that this objective admits **no** bounded competitive
        ratio under immediate commitment (reproduced as experiment E15).
        ``None`` (the default) means the load objective
        :math:`w_j = p_j`; the paper's algorithms never read this field.
    tags:
        Free-form metadata (service level, generator provenance, adversary
        phase, ...) that algorithms must ignore.
    """

    release: float
    processing: float
    deadline: float
    job_id: int = -1
    weight: float | None = None
    tags: tuple[tuple[str, Any], ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        for name in ("release", "processing", "deadline"):
            value = getattr(self, name)
            if not math.isfinite(value):
                raise ValueError(f"job {self.job_id}: {name} must be finite, got {value}")
        if self.weight is not None and not math.isfinite(self.weight):
            raise ValueError(f"job {self.job_id}: weight must be finite, got {self.weight}")
        if self.processing <= 0.0:
            raise ValueError(f"job {self.job_id}: processing must be positive, got {self.processing}")
        if self.release < 0.0:
            raise ValueError(f"job {self.job_id}: release must be non-negative, got {self.release}")
        if self.deadline < self.release + self.processing - TIME_EPS:
            raise ValueError(
                f"job {self.job_id}: window [{self.release}, {self.deadline}) "
                f"cannot fit processing time {self.processing}"
            )
        if self.weight is not None and self.weight < 0.0:
            raise ValueError(f"job {self.job_id}: weight must be non-negative, got {self.weight}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def value(self) -> float:
        """The job's objective contribution: ``weight`` if set, else ``processing``."""
        return self.processing if self.weight is None else self.weight

    @property
    def latest_start(self) -> float:
        """Latest feasible start time ``d - p``."""
        return self.deadline - self.processing

    @property
    def window(self) -> float:
        """Length of the feasibility window ``d - r``."""
        return self.deadline - self.release

    @property
    def laxity(self) -> float:
        """Scheduling laxity ``d - r - p`` (how long the job can wait)."""
        return self.deadline - self.release - self.processing

    def slack(self) -> float:
        """The job's individual slack :math:`(d - r)/p - 1`.

        The instance-wide slack :math:`\\varepsilon` is the minimum of this
        quantity over all jobs.
        """
        return (self.deadline - self.release) / self.processing - 1.0

    def satisfies_slack(self, epsilon: float, eps: float = TIME_EPS) -> bool:
        """Check the slack condition ``d >= (1 + epsilon) * p + r``."""
        return fge(self.deadline, (1.0 + epsilon) * self.processing + self.release, eps)

    def has_tight_slack(self, epsilon: float, eps: float = TIME_EPS) -> bool:
        """Whether the slack condition holds with equality (tight slack)."""
        return abs(self.deadline - ((1.0 + epsilon) * self.processing + self.release)) <= eps

    def feasible_start(self, start: float, eps: float = TIME_EPS) -> bool:
        """Whether starting at *start* respects release and deadline."""
        return fge(start, self.release, eps) and fge(self.deadline, start + self.processing, eps)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def with_id(self, job_id: int) -> "Job":
        """Return a copy of this job carrying identifier *job_id*."""
        return replace(self, job_id=job_id)

    def with_tags(self, **tags: Any) -> "Job":
        """Return a copy with *tags* merged into the metadata."""
        merged = dict(self.tags)
        merged.update(tags)
        return replace(self, tags=tuple(sorted(merged.items())))

    def tag(self, key: str, default: Any = None) -> Any:
        """Look up a metadata tag by *key*."""
        return dict(self.tags).get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Job(id={self.job_id}, r={self.release:g}, p={self.processing:g}, "
            f"d={self.deadline:g})"
        )


def slack_of(job: Job) -> float:
    """Module-level alias for :meth:`Job.slack` (useful as a sort key)."""
    return job.slack()


def tight_deadline(release: float, processing: float, epsilon: float) -> float:
    """Deadline making ``(release, processing)`` a tight-slack job.

    Returns ``release + (1 + epsilon) * processing`` — the smallest deadline
    admitted by the slack condition.  Adversarial constructions use this
    constantly (the paper's phase-3 jobs have tight slack).
    """
    if processing <= 0:
        raise ValueError(f"processing must be positive, got {processing}")
    return release + (1.0 + epsilon) * processing
