"""Problem instances: ordered collections of jobs plus system parameters.

An :class:`Instance` is the offline view of a job sequence: the jobs in
*submission order* (the order the online algorithm sees them — ties in the
release date are broken by position in the sequence), the number of
machines, and the declared slack.  The class validates the slack condition,
computes summary statistics, and round-trips to plain-dict / JSON form so
benchmark artefacts can be archived.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.model.job import Job
from repro.utils.tolerances import TIME_EPS


@dataclass(frozen=True)
class Instance:
    """An ordered job sequence for ``m`` machines with declared slack ``epsilon``.

    Parameters
    ----------
    jobs:
        Jobs in submission order.  Release dates must be non-decreasing
        (the online model reveals jobs in this order).  Job ids are
        rewritten to the position in the sequence unless already consistent.
    machines:
        Number of identical non-preemptive machines ``m >= 1``.
    epsilon:
        Declared slack in ``(0, 1]`` (values above 1 are legal inputs to the
        greedy baselines but outside the paper's analysed range; the
        constructor allows any ``epsilon > 0`` and leaves range policy to
        the algorithms).
    name:
        Optional human-readable label (generator provenance).
    meta:
        Free-form metadata dictionary.
    """

    jobs: tuple[Job, ...]
    machines: int
    epsilon: float
    name: str = ""
    meta: dict[str, Any] = field(default_factory=dict, compare=False)

    def __init__(
        self,
        jobs: Iterable[Job],
        machines: int,
        epsilon: float,
        name: str = "",
        meta: dict[str, Any] | None = None,
        validate: bool = True,
    ) -> None:
        jobs = tuple(jobs)
        relabelled = []
        for idx, job in enumerate(jobs):
            relabelled.append(job if job.job_id == idx else job.with_id(idx))
        object.__setattr__(self, "jobs", tuple(relabelled))
        object.__setattr__(self, "machines", int(machines))
        object.__setattr__(self, "epsilon", float(epsilon))
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "meta", dict(meta or {}))
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` on malformed instances.

        Checks: positive machine count, positive slack, non-decreasing
        release dates, and the slack condition for every job.
        """
        if self.machines < 1:
            raise ValueError(f"machines must be >= 1, got {self.machines}")
        if self.epsilon <= 0.0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        prev_release = 0.0
        for job in self.jobs:
            if job.release < prev_release - TIME_EPS:
                raise ValueError(
                    f"job {job.job_id} released at {job.release} before "
                    f"predecessor at {prev_release}: submission order must "
                    "follow release order"
                )
            prev_release = max(prev_release, job.release)
            if not job.satisfies_slack(self.epsilon):
                raise ValueError(
                    f"job {job.job_id} violates the slack condition for "
                    f"epsilon={self.epsilon}: d={job.deadline} < "
                    f"(1+eps)*p+r={(1 + self.epsilon) * job.processing + job.release}"
                )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs)

    def __getitem__(self, idx: int) -> Job:
        return self.jobs[idx]

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    @property
    def total_load(self) -> float:
        """Sum of all processing times (the offline value ceiling)."""
        return float(sum(j.processing for j in self.jobs))

    @property
    def horizon(self) -> float:
        """Largest deadline in the instance (0 for the empty instance)."""
        return max((j.deadline for j in self.jobs), default=0.0)

    @property
    def min_slack(self) -> float:
        """Smallest individual job slack (``inf`` for the empty instance)."""
        return min((j.slack() for j in self.jobs), default=float("inf"))

    def releases(self) -> np.ndarray:
        """Release dates as a float array (submission order)."""
        return np.array([j.release for j in self.jobs], dtype=float)

    def processings(self) -> np.ndarray:
        """Processing times as a float array (submission order)."""
        return np.array([j.processing for j in self.jobs], dtype=float)

    def deadlines(self) -> np.ndarray:
        """Deadlines as a float array (submission order)."""
        return np.array([j.deadline for j in self.jobs], dtype=float)

    def describe(self) -> dict[str, Any]:
        """Summary statistics used by benchmark reports."""
        p = self.processings()
        return {
            "name": self.name,
            "jobs": len(self.jobs),
            "machines": self.machines,
            "epsilon": self.epsilon,
            "total_load": self.total_load,
            "horizon": self.horizon,
            "min_slack": self.min_slack,
            "p_min": float(p.min()) if len(p) else 0.0,
            "p_max": float(p.max()) if len(p) else 0.0,
            "p_mean": float(p.mean()) if len(p) else 0.0,
        }

    # ------------------------------------------------------------------
    # Derived instances
    # ------------------------------------------------------------------
    def with_machines(self, machines: int) -> "Instance":
        """Same job sequence on a different machine count."""
        return Instance(self.jobs, machines, self.epsilon, self.name, dict(self.meta))

    def restricted_to(self, job_ids: Iterable[int]) -> "Instance":
        """Sub-instance containing only *job_ids* (submission order kept).

        Job ids are re-assigned positionally in the sub-instance; the
        original id is preserved in the ``origin_id`` tag.
        """
        wanted = set(job_ids)
        kept = [j.with_tags(origin_id=j.job_id) for j in self.jobs if j.job_id in wanted]
        return Instance(kept, self.machines, self.epsilon, self.name + "/restricted", dict(self.meta))

    def sorted_by_release(self) -> "Instance":
        """Stable re-sort by release date (normalises generator output)."""
        ordered = sorted(self.jobs, key=lambda j: j.release)
        return Instance(ordered, self.machines, self.epsilon, self.name, dict(self.meta))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-safe)."""
        return {
            "name": self.name,
            "machines": self.machines,
            "epsilon": self.epsilon,
            "meta": self.meta,
            "jobs": [
                {
                    "r": j.release,
                    "p": j.processing,
                    "d": j.deadline,
                    "id": j.job_id,
                    **({"w": j.weight} if j.weight is not None else {}),
                }
                for j in self.jobs
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Instance":
        """Inverse of :meth:`to_dict`."""
        jobs = [
            Job(
                release=j["r"],
                processing=j["p"],
                deadline=j["d"],
                job_id=j.get("id", i),
                weight=j.get("w"),
            )
            for i, j in enumerate(data["jobs"])
        ]
        return cls(
            jobs,
            machines=data["machines"],
            epsilon=data["epsilon"],
            name=data.get("name", ""),
            meta=data.get("meta"),
        )

    def to_json(self) -> str:
        """JSON text form."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Instance":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def instance_from_arrays(
    releases: Sequence[float],
    processings: Sequence[float],
    deadlines: Sequence[float],
    machines: int,
    epsilon: float | None = None,
    name: str = "",
) -> Instance:
    """Build an :class:`Instance` from parallel arrays.

    When *epsilon* is ``None`` the declared slack is inferred as the minimum
    individual slack over the jobs (clipped to at most 1, matching the
    paper's analysed range ``(0, 1]`` whenever possible).
    """
    releases = np.asarray(releases, dtype=float)
    processings = np.asarray(processings, dtype=float)
    deadlines = np.asarray(deadlines, dtype=float)
    if not (len(releases) == len(processings) == len(deadlines)):
        raise ValueError("releases, processings and deadlines must have equal length")
    jobs = [
        Job(release=float(r), processing=float(p), deadline=float(d), job_id=i)
        for i, (r, p, d) in enumerate(zip(releases, processings, deadlines))
    ]
    if epsilon is None:
        if not jobs:
            raise ValueError("cannot infer epsilon from an empty instance")
        epsilon = min(min(j.slack() for j in jobs), 1.0)
        if epsilon <= 0:
            raise ValueError("cannot infer a positive epsilon: some job has no slack")
    order = np.argsort(releases, kind="stable")
    jobs = [jobs[i] for i in order]
    return Instance(jobs, machines=machines, epsilon=float(epsilon), name=name)
