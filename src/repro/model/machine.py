"""Non-preemptive machine state: committed execution intervals.

A machine accumulates irrevocable commitments ``(job, [start, start+p))``.
The class maintains the invariant that commitments never overlap and
exposes the quantities Algorithm 1 of the paper operates on:

* ``outstanding(t)`` — the *outstanding load* :math:`l(m_i)` at time *t*:
  total committed work that still has to execute at or after *t* (running
  remainders count, finished work does not).
* ``completion_frontier(t)`` — first time at/after *t* when the machine has
  no further commitments (where a newly appended job would start under the
  paper's "start immediately after the outstanding load" rule, provided the
  machine never idles between *t* and its last commitment).
* ``fits(job, t)`` — whether appending the job after the current frontier
  still meets its deadline (candidate-machine test of Algorithm 1, Line 9).

Performance
-----------

Simulations query ``outstanding`` once per machine per submission, so a
naive scan makes long runs quadratic (profiled at 3.5k jobs/s for an
8000-job stream).  The committed intervals are disjoint, hence sorted by
start *and* by end simultaneously; the class therefore keeps parallel
``starts`` / ``ends`` arrays plus a running prefix sum of processing
times, giving ``O(log n)`` ``outstanding``/``busy_at`` via :mod:`bisect`
and an O(1) overlap check on commit (only the two neighbours of the
insertion point can conflict).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterator

from repro.model.job import Job
from repro.utils.intervals import Interval
from repro.utils.tolerances import TIME_EPS, fge, snap


@dataclass(frozen=True, slots=True)
class Commitment:
    """A single irrevocable allocation of *job* to ``[start, end)``."""

    job: Job
    start: float

    @property
    def end(self) -> float:
        """Completion time ``start + processing``."""
        return self.start + self.job.processing

    @property
    def interval(self) -> Interval:
        """The execution interval as an :class:`Interval`."""
        return Interval(self.start, self.end)


class MachineState:
    """Mutable committed timeline of one non-preemptive machine.

    Commitments may be appended in any time order (some baselines reserve
    future slots); the class keeps them sorted by start time and rejects
    overlapping commitments.
    """

    __slots__ = ("index", "_commitments", "_starts", "_ends", "_prefix")

    def __init__(self, index: int) -> None:
        self.index = index
        self._commitments: list[Commitment] = []
        self._starts: list[float] = []
        self._ends: list[float] = []
        #: prefix[i] = total processing time of the first i commitments.
        self._prefix: list[float] = [0.0]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def commit(self, job: Job, start: float) -> Commitment:
        """Irrevocably allocate *job* at *start*; returns the commitment.

        Raises ``ValueError`` if the execution interval would overlap an
        existing commitment or violate the job's own window.
        """
        if not job.feasible_start(start):
            raise ValueError(
                f"machine {self.index}: start {start} infeasible for job "
                f"{job.job_id} (window [{job.release}, {job.deadline}), p={job.processing})"
            )
        new = Commitment(job, start)
        pos = bisect_left(self._starts, start)
        # Disjoint sorted intervals: only the neighbours can overlap.
        if pos > 0 and self._ends[pos - 1] > new.start + TIME_EPS:
            other = self._commitments[pos - 1]
            raise ValueError(
                f"machine {self.index}: job {job.job_id} at "
                f"[{new.start}, {new.end}) overlaps job "
                f"{other.job.job_id} at [{other.start}, {other.end})"
            )
        if pos < len(self._starts) and self._starts[pos] < new.end - TIME_EPS:
            other = self._commitments[pos]
            raise ValueError(
                f"machine {self.index}: job {job.job_id} at "
                f"[{new.start}, {new.end}) overlaps job "
                f"{other.job.job_id} at [{other.start}, {other.end})"
            )
        self._commitments.insert(pos, new)
        self._starts.insert(pos, new.start)
        self._ends.insert(pos, new.end)
        if pos == len(self._prefix) - 1:
            # Common case: append at the end -> O(1) prefix extension.
            self._prefix.append(self._prefix[-1] + job.processing)
        else:
            del self._prefix[pos + 1 :]
            for i, c in enumerate(self._commitments[pos:], start=pos):
                self._prefix.append(self._prefix[i] + c.job.processing)
        return new

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._commitments)

    def __iter__(self) -> Iterator[Commitment]:
        return iter(self._commitments)

    @property
    def commitments(self) -> tuple[Commitment, ...]:
        """All commitments, sorted by start time."""
        return tuple(self._commitments)

    def last_end(self) -> float:
        """Completion time of the last commitment (0 when empty)."""
        return self._ends[-1] if self._ends else 0.0

    def outstanding(self, t: float) -> float:
        """Outstanding load :math:`l(m_i)` at time *t*.

        Sum over commitments of the part of the execution interval at or
        after *t*.  This is the quantity Algorithm 1 multiplies by
        :math:`f_h` to obtain the machine-dependent deadline threshold.
        ``O(log n)`` via bisection on the (sorted) completion times.
        """
        n = len(self._commitments)
        if n == 0:
            return 0.0
        j = bisect_right(self._ends, t)
        if j >= n:
            return 0.0
        partial = self._ends[j] - max(self._starts[j], t)
        rest = self._prefix[n] - self._prefix[j + 1]
        return snap(partial + rest)

    def completion_frontier(self, t: float) -> float:
        """First time ``>= t`` with no further committed work after it.

        For append-only policies (Threshold, greedy best-fit) this equals
        ``t + outstanding(t)`` because those policies never leave a gap
        after *t*; for reservation-style policies it is the end of the last
        commitment if that lies after *t*.
        """
        return max(t, self._ends[-1]) if self._ends else t

    def busy_at(self, t: float) -> bool:
        """Whether some commitment's interval contains time *t*."""
        pos = bisect_right(self._starts, t + TIME_EPS) - 1
        if pos < 0:
            return False
        return self._starts[pos] - TIME_EPS <= t < self._ends[pos] - TIME_EPS

    def is_idle_from(self, t: float) -> bool:
        """Whether the machine has no committed work at or after *t*."""
        return self.outstanding(t) <= TIME_EPS

    def append_start(self, job: Job, t: float) -> float:
        """Start time under the paper's append rule at decision time *t*.

        Algorithm 1 starts an accepted job "immediately after completing
        the load of this machine": ``max(t, frontier)`` where the frontier
        is the end of all current commitments.  The start additionally may
        not precede the job's release (callers pass ``t = r_j``).
        """
        return max(max(t, job.release), self.completion_frontier(t))

    def fits(self, job: Job, t: float) -> bool:
        """Candidate-machine test: can the appended job finish by its deadline?"""
        start = self.append_start(job, t)
        return fge(job.deadline, start + job.processing)

    def free_intervals(self, t: float, horizon: float) -> list[Interval]:
        """Idle intervals of the committed timeline within ``[t, horizon)``.

        Used by gap-filling baselines and the audit layer.
        """
        gaps: list[Interval] = []
        cursor = t
        for c in self._commitments:
            if c.end <= cursor + TIME_EPS:
                continue
            if c.start > cursor + TIME_EPS:
                gaps.append(Interval(cursor, min(c.start, horizon)))
            cursor = max(cursor, c.end)
            if cursor >= horizon:
                break
        if cursor < horizon - TIME_EPS:
            gaps.append(Interval(cursor, horizon))
        return [g for g in gaps if g.length > TIME_EPS]

    def committed_load(self) -> float:
        """Total processing time ever committed to this machine."""
        return self._prefix[-1]

    def clone(self) -> "MachineState":
        """Deep-enough copy (commitments are immutable, arrays are copied)."""
        copy = MachineState(self.index)
        copy._commitments = list(self._commitments)
        copy._starts = list(self._starts)
        copy._ends = list(self._ends)
        copy._prefix = list(self._prefix)
        return copy

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        spans = ", ".join(f"{c.job.job_id}@[{c.start:g},{c.end:g})" for c in self._commitments)
        return f"MachineState(index={self.index}, [{spans}])"
