"""Committed schedules and their audit.

A :class:`Schedule` is the *output* of running an online (or offline)
algorithm on an instance: for every job either a rejection or an
:class:`Assignment` (machine, start time).  The class knows how to verify
itself against the non-preemptive semantics — Claim 1 of the paper
("Algorithm 1 completes any accepted job on time") becomes the executable
:meth:`Schedule.audit`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.model.instance import Instance
from repro.model.job import Job
from repro.utils.intervals import Interval
from repro.utils.tolerances import TIME_EPS, fge


class ScheduleViolation(AssertionError):
    """Raised by :meth:`Schedule.audit` when a schedule is invalid."""


@dataclass(frozen=True, slots=True)
class Assignment:
    """An accepted job's irrevocable allocation."""

    job_id: int
    machine: int
    start: float

    def interval(self, job: Job) -> Interval:
        """Execution interval of *job* under this assignment."""
        return Interval(self.start, self.start + job.processing)


@dataclass
class Schedule:
    """The result of scheduling *instance*: assignments and rejections.

    Attributes
    ----------
    instance:
        The scheduled instance.
    assignments:
        Mapping from job id to :class:`Assignment` for accepted jobs.
    rejected:
        Ids of rejected jobs.
    algorithm:
        Label of the producing algorithm (reporting only).
    meta:
        Free-form metadata (decision traces, thresholds, ...).
    """

    instance: Instance
    assignments: dict[int, Assignment] = field(default_factory=dict)
    rejected: set[int] = field(default_factory=set)
    algorithm: str = ""
    meta: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    @property
    def accepted_load(self) -> float:
        """The objective value :math:`\\sum p_j (1 - U_j)`."""
        return float(
            sum(self.instance[jid].processing for jid in self.assignments)
        )

    @property
    def accepted_value(self) -> float:
        """The general objective :math:`\\sum w_j (1 - U_j)`.

        Coincides with :attr:`accepted_load` on unweighted instances
        (``weight is None`` means :math:`w_j = p_j`).
        """
        return float(sum(self.instance[jid].value for jid in self.assignments))

    @property
    def accepted_count(self) -> int:
        """Number of accepted jobs."""
        return len(self.assignments)

    @property
    def rejected_load(self) -> float:
        """Total processing time of rejected jobs."""
        return float(sum(self.instance[jid].processing for jid in self.rejected))

    def acceptance_rate(self) -> float:
        """Fraction of jobs accepted (1.0 on the empty instance)."""
        n = len(self.instance)
        return 1.0 if n == 0 else len(self.assignments) / n

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def machine_timeline(self, machine: int) -> list[tuple[Job, Interval]]:
        """Jobs on *machine*, sorted by start time, with their intervals."""
        rows = [
            (self.instance[jid], a.interval(self.instance[jid]))
            for jid, a in self.assignments.items()
            if a.machine == machine
        ]
        rows.sort(key=lambda row: row[1].start)
        return rows

    def machine_loads(self) -> list[float]:
        """Total accepted processing time per machine."""
        loads = [0.0] * self.instance.machines
        for jid, a in self.assignments.items():
            loads[a.machine] += self.instance[jid].processing
        return loads

    def makespan(self) -> float:
        """Latest completion time over all accepted jobs (0 if none)."""
        return max(
            (a.start + self.instance[jid].processing for jid, a in self.assignments.items()),
            default=0.0,
        )

    def is_accepted(self, job_id: int) -> bool:
        """Whether *job_id* was accepted."""
        return job_id in self.assignments

    # ------------------------------------------------------------------
    # Audit (Claim 1 as an executable invariant)
    # ------------------------------------------------------------------
    def audit(self) -> None:
        """Verify the schedule; raise :class:`ScheduleViolation` otherwise.

        Checks, for every job of the instance:

        1. the job is *either* accepted or rejected, exactly once;
        2. accepted jobs start no earlier than their release;
        3. accepted jobs complete no later than their deadline (Claim 1);
        4. the machine index is valid;
        5. no two jobs on the same machine overlap in time.
        """
        ids = {j.job_id for j in self.instance}
        decided = set(self.assignments) | self.rejected
        if decided != ids:
            missing = ids - decided
            extra = decided - ids
            raise ScheduleViolation(
                f"decision coverage broken: missing={sorted(missing)} extra={sorted(extra)}"
            )
        if self.assignments.keys() & self.rejected:
            both = sorted(self.assignments.keys() & self.rejected)
            raise ScheduleViolation(f"jobs both accepted and rejected: {both}")

        per_machine: dict[int, list[tuple[float, float, int]]] = {}
        for jid, a in self.assignments.items():
            job = self.instance[jid]
            if not (0 <= a.machine < self.instance.machines):
                raise ScheduleViolation(
                    f"job {jid}: machine index {a.machine} out of range "
                    f"[0, {self.instance.machines})"
                )
            if not fge(a.start, job.release):
                raise ScheduleViolation(
                    f"job {jid}: starts at {a.start} before release {job.release}"
                )
            if not fge(job.deadline, a.start + job.processing):
                raise ScheduleViolation(
                    f"job {jid}: completes at {a.start + job.processing} after "
                    f"deadline {job.deadline}"
                )
            per_machine.setdefault(a.machine, []).append(
                (a.start, a.start + job.processing, jid)
            )
        for machine, spans in per_machine.items():
            spans.sort()
            for (s1, e1, j1), (s2, e2, j2) in zip(spans, spans[1:]):
                if s2 < e1 - TIME_EPS:
                    raise ScheduleViolation(
                        f"machine {machine}: job {j1} [{s1},{e1}) overlaps "
                        f"job {j2} [{s2},{e2})"
                    )

    def is_valid(self) -> bool:
        """Boolean form of :meth:`audit`."""
        try:
            self.audit()
        except ScheduleViolation:
            return False
        return True

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_decisions(
        cls,
        instance: Instance,
        decisions: Iterable[tuple[int, Assignment | None]],
        algorithm: str = "",
        meta: Mapping[str, Any] | None = None,
    ) -> "Schedule":
        """Build a schedule from ``(job_id, assignment-or-None)`` pairs."""
        sched = cls(instance=instance, algorithm=algorithm, meta=dict(meta or {}))
        for jid, assignment in decisions:
            if assignment is None:
                sched.rejected.add(jid)
            else:
                sched.assignments[jid] = assignment
        return sched

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-safe form (instance embedded; traces/meta dropped).

        Only plain decision data round-trips — decision traces hold live
        objects and are deliberately not serialised.
        """
        return {
            "instance": self.instance.to_dict(),
            "algorithm": self.algorithm,
            "assignments": [
                {"job": a.job_id, "machine": a.machine, "start": a.start}
                for a in sorted(self.assignments.values(), key=lambda a: a.job_id)
            ],
            "rejected": sorted(self.rejected),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Schedule":
        """Inverse of :meth:`to_dict`; the result is re-audited."""
        instance = Instance.from_dict(data["instance"])
        schedule = cls(instance=instance, algorithm=data.get("algorithm", ""))
        for entry in data["assignments"]:
            schedule.assignments[entry["job"]] = Assignment(
                entry["job"], entry["machine"], entry["start"]
            )
        schedule.rejected = set(data["rejected"])
        schedule.audit()
        return schedule

    def to_json(self) -> str:
        """JSON text form of :meth:`to_dict`."""
        import json

        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        """Inverse of :meth:`to_json`."""
        import json

        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def gantt_ascii(self, width: int = 72) -> str:
        """Crude ASCII Gantt chart — one row per machine.

        Used by the Fig. 3 reproduction and the examples; each accepted job
        is drawn as a run of its ``job_id mod 10`` digit.
        """
        horizon = max(self.makespan(), self.instance.horizon, TIME_EPS)
        scale = (width - 1) / horizon
        rows = []
        for machine in range(self.instance.machines):
            row = ["."] * width
            for job, iv in self.machine_timeline(machine):
                lo = int(round(iv.start * scale))
                hi = max(lo + 1, int(round(iv.end * scale)))
                for x in range(lo, min(hi, width)):
                    row[x] = str(job.job_id % 10)
            rows.append(f"m{machine}: " + "".join(row))
        return "\n".join(rows)
