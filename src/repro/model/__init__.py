"""Problem model: jobs, instances, machine state, and schedules.

The model layer is deliberately independent of any particular algorithm:
it defines *what* a valid input and a valid committed schedule are, and it
can audit any schedule against the non-preemptive machine semantics and the
slack condition of the paper.
"""

from repro.model.job import Job, slack_of, tight_deadline
from repro.model.instance import Instance, instance_from_arrays
from repro.model.machine import MachineState
from repro.model.schedule import Assignment, Schedule, ScheduleViolation

__all__ = [
    "Job",
    "slack_of",
    "tight_deadline",
    "Instance",
    "instance_from_arrays",
    "MachineState",
    "Assignment",
    "Schedule",
    "ScheduleViolation",
]
