"""Certified upper bounds on the offline optimum.

The key bound is the *preemption + migration + fractional acceptance*
relaxation: any non-preemptive schedule of accepted jobs induces a flow in
Horn's interval network, so the maximum flow is an upper bound on the
achievable load.  The network:

* event times = all releases and deadlines; consecutive events bound the
  intervals :math:`I_\\ell`;
* ``source -> job_j`` with capacity :math:`p_j` (fractional acceptance);
* ``job_j -> I_ell`` with capacity :math:`|I_\\ell|` whenever
  :math:`I_\\ell \\subseteq [r_j, d_j]` (no self-parallelism);
* ``I_ell -> sink`` with capacity :math:`m \\cdot |I_\\ell|`.

The value is exact for the preemptive-migration machine model (it equals
that model's optimum when acceptance is all-or-nothing relaxed), which the
migration baseline's tests exploit.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.model.instance import Instance
from repro.utils.tolerances import TIME_EPS, fge


def flow_upper_bound(instance: Instance) -> float:
    """Horn-relaxation upper bound on the offline optimal load."""
    if len(instance) == 0:
        return 0.0
    events = sorted(
        {float(j.release) for j in instance} | {float(j.deadline) for j in instance}
    )
    intervals = [
        (lo, hi) for lo, hi in zip(events, events[1:]) if hi - lo > TIME_EPS
    ]
    # Integer node labels, not strings: networkx's flow algorithms iterate
    # internal *sets* of nodes, and string hashing is randomised per process
    # (PYTHONHASHSEED), which perturbs the float summation order and thus
    # the last ulp of the flow value.  Small-int hashing is deterministic,
    # so the bound is bit-identical across processes and hosts.
    src, sink = 0, 1
    interval_node = [2 + idx for idx in range(len(intervals))]
    job_node_base = 2 + len(intervals)
    graph = nx.DiGraph()
    for idx, (lo, hi) in enumerate(intervals):
        graph.add_edge(interval_node[idx], sink, capacity=instance.machines * (hi - lo))
    for job in instance:
        graph.add_edge(src, job_node_base + job.job_id, capacity=job.processing)
        for idx, (lo, hi) in enumerate(intervals):
            if fge(lo, job.release) and fge(job.deadline, hi):
                graph.add_edge(
                    job_node_base + job.job_id, interval_node[idx], capacity=hi - lo
                )
    value, _ = nx.maximum_flow(graph, src, sink)
    return float(value)


def machine_window_upper_bound(instance: Instance) -> float:
    """A cheap coarse bound: ``m * (max deadline - min release)``.

    Useful as a quick sanity cap and in tests of the flow bound itself.
    """
    if len(instance) == 0:
        return 0.0
    releases = instance.releases()
    deadlines = instance.deadlines()
    return float(instance.machines * (deadlines.max() - releases.min()))


def opt_upper_bound(instance: Instance) -> float:
    """Best certified upper bound: min of flow, total load, and window."""
    return float(
        np.min(
            [
                flow_upper_bound(instance),
                instance.total_load,
                machine_window_upper_bound(instance),
            ]
        )
    )
