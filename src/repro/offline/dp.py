"""Exact DP for the common-release single-machine case.

When all jobs share one release date, an optimal single-machine schedule
can process its accepted set in EDD order (the classical exchange argument
goes through because no job has to wait for a release).  Selecting a
maximum-load subset then becomes a prefix-constrained knapsack: process
jobs in EDD order and keep the set of achievable *used-time* values — the
objective equals the used time, because every accepted job contributes its
full processing time.

The state set is pruned to unique values, so the DP is pseudo-polynomial
for integer data and exact for arbitrary floats (at worst :math:`2^n`
states, which the adversarial instances it is used on never approach).

This solver cross-checks the constructive optima claimed by the
lower-bound adversary (whose jobs, apart from :math:`J_1`, share the
release date :math:`t`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.model.job import Job
from repro.utils.tolerances import TIME_EPS, fge


def single_machine_common_release_opt(jobs: Sequence[Job] | Iterable[Job]) -> float:
    """Maximum schedulable load of *jobs* on one machine, common release.

    Raises ``ValueError`` if the jobs do not share a release date.
    """
    jobs = list(jobs)
    if not jobs:
        return 0.0
    release = jobs[0].release
    if any(abs(j.release - release) > TIME_EPS for j in jobs):
        raise ValueError("common-release DP requires identical release dates")

    ordered = sorted(jobs, key=lambda j: (j.deadline, j.processing))
    # Achievable completion offsets (work performed since `release`).
    achievable: set[float] = {0.0}
    for job in ordered:
        budget = job.deadline - release
        additions = set()
        for used in achievable:
            finish = used + job.processing
            if fge(budget, finish):
                additions.add(round(finish, 9))
        achievable |= additions
    return max(achievable)


def single_machine_common_release_opt_subset(
    jobs: Sequence[Job],
) -> tuple[float, list[int]]:
    """Like :func:`single_machine_common_release_opt`, also returning one
    optimal accepted subset (job ids, in EDD processing order)."""
    jobs = list(jobs)
    if not jobs:
        return 0.0, []
    release = jobs[0].release
    if any(abs(j.release - release) > TIME_EPS for j in jobs):
        raise ValueError("common-release DP requires identical release dates")

    ordered = sorted(jobs, key=lambda j: (j.deadline, j.processing))
    # parent[used_after] = (used_before, job_id) for backtracking.
    parents: dict[float, tuple[float, int] | None] = {0.0: None}
    for job in ordered:
        budget = job.deadline - release
        new_states: dict[float, tuple[float, int]] = {}
        for used in list(parents):
            finish = round(used + job.processing, 9)
            if fge(budget, finish) and finish not in parents:
                new_states[finish] = (used, job.job_id)
        parents.update(new_states)
    best = max(parents)
    chain: list[int] = []
    cursor = best
    while parents[cursor] is not None:
        prev, jid = parents[cursor]  # type: ignore[misc]
        chain.append(jid)
        cursor = prev
    chain.reverse()
    return best, chain
