"""Content-addressed on-disk cache for offline OPT brackets.

:func:`repro.offline.bracket.opt_bracket` is *pure* in ``(instance,
exact_limit, force_bounds)`` — the same job set on the same machine count
always yields the same certified bracket — and it dominates the cost of a
sweep cell.  Reruns across algorithm variants, resumed journals and
repeated report generation therefore recompute identical brackets over
and over.  :class:`BracketCache` eliminates that waste with two tiers:

* a **process-local LRU** (an ``OrderedDict`` capped at
  ``max_memory_entries``) absorbing repeated lookups within one process;
* a **content-addressed disk tier**: one atomic JSON file per bracket
  under a sharded directory (``<cache_dir>/<key[:2]>/<key[2:]>.json``),
  shared between processes and across runs.

Keys are SHA-256 digests of a *canonical* instance fingerprint — the
sorted multiset of ``(release, processing, deadline)`` triples plus the
machine count — combined with ``exact_limit``, ``force_bounds`` and
:data:`CACHE_VERSION`.  Job order, ids, names, metadata and the declared
slack ``epsilon`` do not enter the key: none of them can change the
offline optimum.  Bumping :data:`CACHE_VERSION` (done whenever the
bracket computation itself changes meaning) invalidates every old entry
by construction — stale files simply stop being addressed.

Robustness contract:

* **writes are atomic** — entries are written to a temp file in the
  shard directory and ``os.replace``'d into place, so concurrent writers
  (e.g. the resilient runner's fresh worker processes) can race on the
  same key and the loser merely overwrites identical bytes;
* **a bad entry is a miss, never a crash** — truncated, garbled,
  wrong-schema or non-finite entries are dropped (best-effort unlink),
  counted in :attr:`CacheStats.corrupt` and reported via
  :class:`BracketCacheWarning`;
* **an unusable cache directory degrades to pass-through** — I/O errors
  on read or write are counted (:attr:`CacheStats.io_errors`) and the
  bracket is computed as if no cache existed.

``BracketCache(":memory:")`` keeps only the LRU tier (used by the report
generator, which wants sharing within one invocation but no durable
state).
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import pathlib
import tempfile
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.model.instance import Instance
from repro.offline.bracket import OptBracket, opt_bracket
from repro.offline.exact import EXACT_JOB_LIMIT

#: Cache schema/semantics version.  Part of every key: bump it whenever
#: the bracket computation or the entry layout changes meaning, and every
#: previously written entry becomes unreachable (a clean global miss).
CACHE_VERSION = 1

#: Sentinel ``cache_dir`` selecting a memory-only cache (no disk tier).
MEMORY_ONLY = ":memory:"


class BracketCacheWarning(UserWarning):
    """A cache entry was unreadable and has been treated as a miss."""


def default_cache_dir() -> pathlib.Path:
    """The default on-disk location for bracket entries.

    ``$REPRO_CACHE_DIR/brackets`` when the environment variable is set,
    otherwise ``$XDG_CACHE_HOME/repro/brackets`` falling back to
    ``~/.cache/repro/brackets``.
    """
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return pathlib.Path(root) / "brackets"
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro" / "brackets"


def instance_fingerprint(instance: Instance) -> str:
    """Canonical content fingerprint of *instance* (hex SHA-256).

    Hashes the sorted multiset of ``(release, processing, deadline)``
    triples plus the machine count — everything the offline optimum
    depends on, and nothing else.  Two instances with permuted job
    orders, different names/metadata or different declared ``epsilon``
    fingerprint identically.
    """
    triples = sorted(
        (job.release, job.processing, job.deadline) for job in instance.jobs
    )
    payload = json.dumps(
        {"machines": int(instance.machines), "jobs": triples},
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def bracket_key(
    instance: Instance,
    exact_limit: int = EXACT_JOB_LIMIT,
    force_bounds: bool = False,
) -> str:
    """Content address of one ``opt_bracket`` result (hex SHA-256).

    Combines the instance fingerprint with every remaining input of
    :func:`repro.offline.bracket.opt_bracket` plus :data:`CACHE_VERSION`.
    """
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "instance": instance_fingerprint(instance),
            "exact_limit": int(exact_limit),
            "force_bounds": bool(force_bounds),
        },
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/evict counters for one :class:`BracketCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    writes: int = 0
    #: entries pushed out of the memory LRU (they remain on disk).
    evictions: int = 0
    #: unreadable entries dropped and recomputed (never raised).
    corrupt: int = 0
    #: read/write OS failures absorbed by pass-through degradation.
    io_errors: int = 0

    @property
    def hits(self) -> int:
        """Total hits across both tiers."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """``hits / lookups`` (0.0 before the first lookup)."""
        return 0.0 if self.lookups == 0 else self.hits / self.lookups

    def as_dict(self) -> dict[str, Any]:
        """Flat dict form (JSON/report-friendly), including derived rates."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "io_errors": self.io_errors,
            "hit_rate": self.hit_rate,
        }

    def merge(self, other: "CacheStats | dict[str, Any]") -> None:
        """Accumulate counters from another stats object or its dict form.

        Derived fields (``hits``, ``hit_rate``) in a dict are ignored —
        they are recomputed from the merged counters.
        """
        source = other.as_dict() if isinstance(other, CacheStats) else other
        for name in (
            "memory_hits",
            "disk_hits",
            "misses",
            "writes",
            "evictions",
            "corrupt",
            "io_errors",
        ):
            setattr(self, name, getattr(self, name) + int(source.get(name, 0)))


@dataclass(frozen=True)
class CacheReport:
    """On-disk census of a cache directory (``repro cache stats``)."""

    directory: str
    entries: int
    shards: int
    total_bytes: int

    def as_dict(self) -> dict[str, Any]:
        """Flat dict form (JSON-friendly)."""
        return {
            "directory": self.directory,
            "entries": self.entries,
            "shards": self.shards,
            "total_bytes": self.total_bytes,
            "version": CACHE_VERSION,
        }


class BracketCache:
    """Two-tier content-addressed cache of :class:`OptBracket` records.

    ``cache_dir`` defaults to :func:`default_cache_dir`; pass
    :data:`MEMORY_ONLY` (``":memory:"``) to disable the disk tier.  The
    instance is picklable: only the configuration crosses process
    boundaries — each fresh worker process starts with an empty LRU and
    zeroed stats over the *shared* disk directory.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike[str] | None = None,
        max_memory_entries: int = 512,
    ) -> None:
        if max_memory_entries < 0:
            raise ValueError(
                f"max_memory_entries must be >= 0, got {max_memory_entries}"
            )
        self.memory_only = cache_dir == MEMORY_ONLY
        self.cache_dir = (
            None
            if self.memory_only
            else pathlib.Path(cache_dir) if cache_dir is not None else default_cache_dir()
        )
        self.max_memory_entries = max_memory_entries
        self.stats = CacheStats()
        self._memory: OrderedDict[str, OptBracket] = OrderedDict()

    # -- pickling: ship configuration, not contents --------------------

    def __getstate__(self) -> dict[str, Any]:
        return {
            "cache_dir": MEMORY_ONLY if self.memory_only else os.fspath(self.cache_dir),
            "max_memory_entries": self.max_memory_entries,
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__init__(state["cache_dir"], state["max_memory_entries"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = MEMORY_ONLY if self.memory_only else os.fspath(self.cache_dir)
        return f"BracketCache({where!r}, entries_in_memory={len(self._memory)})"

    # -- layout --------------------------------------------------------

    def entry_path(self, key: str) -> pathlib.Path:
        """Sharded on-disk location of *key* (two-hex-digit fan-out)."""
        if self.cache_dir is None:
            raise ValueError("memory-only cache has no on-disk entries")
        return self.cache_dir / key[:2] / f"{key[2:]}.json"

    def _iter_entry_files(self) -> Iterator[pathlib.Path]:
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return
        for shard in sorted(self.cache_dir.iterdir()):
            if shard.is_dir() and len(shard.name) == 2:
                yield from sorted(shard.glob("*.json"))

    # -- memory tier ---------------------------------------------------

    def _memory_get(self, key: str) -> OptBracket | None:
        bracket = self._memory.get(key)
        if bracket is not None:
            self._memory.move_to_end(key)
        return bracket

    def _memory_put(self, key: str, bracket: OptBracket) -> None:
        if self.max_memory_entries == 0:
            return
        self._memory[key] = bracket
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # -- disk tier -----------------------------------------------------

    def _disk_get(self, key: str) -> OptBracket | None:
        path = self.entry_path(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            self.stats.io_errors += 1
            return None
        bracket = self._decode_entry(raw)
        if bracket is None:
            self.stats.corrupt += 1
            warnings.warn(
                f"dropping corrupt bracket-cache entry {path} (recomputing)",
                BracketCacheWarning,
                stacklevel=3,
            )
            try:
                path.unlink()
            except OSError:  # pragma: no cover - unlink race / read-only dir
                pass
        return bracket

    @staticmethod
    def _decode_entry(raw: bytes) -> OptBracket | None:
        """Parse one entry; ``None`` for anything structurally unsound."""
        try:
            record = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(record, dict) or record.get("version") != CACHE_VERSION:
            return None
        try:
            lower = float(record["lower"])
            upper = float(record["upper"])
            exact = record["exact"]
        except (KeyError, TypeError, ValueError):
            return None
        if not isinstance(exact, bool):
            return None
        if not (math.isfinite(lower) and math.isfinite(upper)):
            return None
        if lower > upper:
            return None
        return OptBracket(lower=lower, upper=upper, exact=exact)

    def _disk_put(self, key: str, bracket: OptBracket) -> None:
        path = self.entry_path(key)
        record = json.dumps(
            {
                "version": CACHE_VERSION,
                "key": key,
                "lower": bracket.lower,
                "upper": bracket.upper,
                "exact": bracket.exact,
            },
            sort_keys=True,
            allow_nan=False,
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=path.parent
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(record)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            self.stats.io_errors += 1
            return
        self.stats.writes += 1

    # -- public API ----------------------------------------------------

    def get(
        self,
        instance: Instance,
        exact_limit: int = EXACT_JOB_LIMIT,
        force_bounds: bool = False,
    ) -> OptBracket | None:
        """Look the bracket up in both tiers; ``None`` is a miss."""
        key = bracket_key(instance, exact_limit, force_bounds)
        bracket = self._memory_get(key)
        if bracket is not None:
            self.stats.memory_hits += 1
            return bracket
        if self.cache_dir is not None:
            bracket = self._disk_get(key)
            if bracket is not None:
                self.stats.disk_hits += 1
                self._memory_put(key, bracket)
                return bracket
        self.stats.misses += 1
        return None

    def put(
        self,
        instance: Instance,
        bracket: OptBracket,
        exact_limit: int = EXACT_JOB_LIMIT,
        force_bounds: bool = False,
    ) -> None:
        """Store a computed bracket in both tiers (atomic on disk)."""
        key = bracket_key(instance, exact_limit, force_bounds)
        self._memory_put(key, bracket)
        if self.cache_dir is not None:
            self._disk_put(key, bracket)

    def bracket(
        self,
        instance: Instance,
        exact_limit: int = EXACT_JOB_LIMIT,
        force_bounds: bool = False,
    ) -> OptBracket:
        """Cached :func:`repro.offline.bracket.opt_bracket` (get-or-compute)."""
        cached = self.get(instance, exact_limit, force_bounds)
        if cached is not None:
            return cached
        bracket = opt_bracket(instance, exact_limit=exact_limit, force_bounds=force_bounds)
        self.put(instance, bracket, exact_limit, force_bounds)
        return bracket

    def clear(self) -> int:
        """Drop the memory tier and delete every on-disk entry.

        Returns the number of disk entries removed (0 for memory-only).
        Shard directories are pruned when emptied; foreign files are
        left untouched.
        """
        self._memory.clear()
        removed = 0
        for path in list(self._iter_entry_files()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                self.stats.io_errors += 1
        if self.cache_dir is not None and self.cache_dir.is_dir():
            for shard in self.cache_dir.iterdir():
                if shard.is_dir() and len(shard.name) == 2:
                    try:
                        shard.rmdir()
                    except OSError:
                        pass  # non-empty (foreign files) or racing writer
        return removed

    def scan(self) -> CacheReport:
        """Census of the disk tier (``repro cache stats`` backing)."""
        entries = 0
        shards: set[str] = set()
        total = 0
        for path in self._iter_entry_files():
            entries += 1
            shards.add(path.parent.name)
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - deleted mid-scan
                pass
        return CacheReport(
            directory=MEMORY_ONLY if self.cache_dir is None else os.fspath(self.cache_dir),
            entries=entries,
            shards=len(shards),
            total_bytes=total,
        )


def cached_opt_bracket(
    instance: Instance,
    exact_limit: int = EXACT_JOB_LIMIT,
    force_bounds: bool = False,
    cache: BracketCache | None = None,
) -> OptBracket:
    """``opt_bracket`` through an optional cache.

    With ``cache=None`` this is exactly
    :func:`repro.offline.bracket.opt_bracket` — the call-site-friendly
    form for APIs that thread an optional :class:`BracketCache`.
    """
    if cache is None:
        return opt_bracket(instance, exact_limit=exact_limit, force_bounds=force_bounds)
    return cache.bracket(instance, exact_limit=exact_limit, force_bounds=force_bounds)


__all__ = [
    "BracketCache",
    "BracketCacheWarning",
    "CacheReport",
    "CacheStats",
    "CACHE_VERSION",
    "MEMORY_ONLY",
    "bracket_key",
    "cached_opt_bracket",
    "default_cache_dir",
    "instance_fingerprint",
]
