"""LP formulation of the Horn relaxation (cross-check for the flow bound).

The max-flow upper bound of :mod:`repro.offline.bounds` has an equivalent
linear program: variables :math:`x_{j\\ell} \\ge 0` = work of job *j*
executed in interval :math:`I_\\ell`,

.. math::

    \\max \\sum_{j,\\ell} x_{j\\ell}
    \\quad\\text{s.t.}\\quad
    \\sum_\\ell x_{j\\ell} \\le p_j, \\;
    \\sum_j x_{j\\ell} \\le m |I_\\ell|, \\;
    x_{j\\ell} \\le |I_\\ell|, \\;
    x_{j\\ell} = 0 \\text{ unless } I_\\ell \\subseteq [r_j, d_j].

Solved with :func:`scipy.optimize.linprog` (HiGHS).  By LP duality /
max-flow-min-cut the optimal value coincides with the flow bound — the
test-suite asserts agreement to 1e-6 on random instances, giving an
independent implementation check of both.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import lil_matrix

from repro.model.instance import Instance
from repro.utils.tolerances import TIME_EPS, fge


def lp_upper_bound(instance: Instance) -> float:
    """Horn-relaxation optimum via linear programming."""
    if len(instance) == 0:
        return 0.0
    events = sorted(
        {float(j.release) for j in instance} | {float(j.deadline) for j in instance}
    )
    intervals = [
        (lo, hi) for lo, hi in zip(events, events[1:]) if hi - lo > TIME_EPS
    ]
    if not intervals:
        return 0.0

    # Variable index: one per admissible (job, interval) pair.
    pairs: list[tuple[int, int]] = []
    for jdx, job in enumerate(instance):
        for idx, (lo, hi) in enumerate(intervals):
            if fge(lo, job.release) and fge(job.deadline, hi):
                pairs.append((jdx, idx))
    if not pairs:
        return 0.0

    n_vars = len(pairs)
    n_jobs = len(instance)
    n_ints = len(intervals)

    # Row blocks: job caps then interval caps.
    a_ub = lil_matrix((n_jobs + n_ints, n_vars))
    b_ub = np.empty(n_jobs + n_ints)
    for jdx, job in enumerate(instance):
        b_ub[jdx] = job.processing
    for idx, (lo, hi) in enumerate(intervals):
        b_ub[n_jobs + idx] = instance.machines * (hi - lo)
    upper = np.empty(n_vars)
    for var, (jdx, idx) in enumerate(pairs):
        a_ub[jdx, var] = 1.0
        a_ub[n_jobs + idx, var] = 1.0
        lo, hi = intervals[idx]
        upper[var] = hi - lo  # no self-parallelism within an interval

    result = linprog(
        c=-np.ones(n_vars),
        A_ub=a_ub.tocsr(),
        b_ub=b_ub,
        bounds=list(zip(np.zeros(n_vars), upper)),
        method="highs",
    )
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"LP solver failed: {result.message}")
    return float(-result.fun)
