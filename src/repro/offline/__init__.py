"""Offline optimum computation and bounds.

The offline problem — select and non-preemptively schedule a maximum-load
subset of jobs on ``m`` machines meeting all deadlines — is NP-hard, so
the library provides a portfolio:

* :mod:`repro.offline.exact` — branch-and-bound exact optimum for small
  instances (memoised DFS over dispatch sequences with load-based pruning);
* :mod:`repro.offline.dp` — exact dynamic program for the common-release
  single-machine case (pseudo-polynomial; used to cross-check adversarial
  constructions);
* :mod:`repro.offline.bounds` — certified *upper* bounds: the Horn-style
  preemption+migration max-flow relaxation and the trivial total load;
* :mod:`repro.offline.heuristics` — certified *lower* bounds: multi-order
  insertion heuristics with gap filling.

``opt_bracket`` combines them into ``(lower, upper)`` with
``lower <= OPT <= upper``; :mod:`repro.offline.cache` memoises those
brackets content-addressed on disk (``opt_bracket`` is pure in
``(instance, exact_limit, force_bounds)``), so sweep reruns and resumed
grids never recompute an OPT reference they already certified.
"""

from repro.offline.exact import exact_optimum, ExactResult, EXACT_JOB_LIMIT
from repro.offline.dp import single_machine_common_release_opt
from repro.offline.bounds import flow_upper_bound, opt_upper_bound
from repro.offline.lp import lp_upper_bound
from repro.offline.heuristics import best_offline_schedule, opt_lower_bound
from repro.offline.bracket import opt_bracket, OptBracket
from repro.offline.cache import (
    BracketCache,
    BracketCacheWarning,
    CacheReport,
    CacheStats,
    bracket_key,
    cached_opt_bracket,
    default_cache_dir,
    instance_fingerprint,
)

__all__ = [
    "exact_optimum",
    "ExactResult",
    "EXACT_JOB_LIMIT",
    "single_machine_common_release_opt",
    "flow_upper_bound",
    "opt_upper_bound",
    "lp_upper_bound",
    "best_offline_schedule",
    "opt_lower_bound",
    "opt_bracket",
    "OptBracket",
    "BracketCache",
    "BracketCacheWarning",
    "CacheReport",
    "CacheStats",
    "bracket_key",
    "cached_opt_bracket",
    "default_cache_dir",
    "instance_fingerprint",
]
