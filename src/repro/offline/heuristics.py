"""Offline heuristics: certified lower bounds on the optimum.

Strategy: try several job orderings, insert each job at the earliest
feasible position on any machine (allowing placement into idle *gaps*, not
just at timeline ends — this is what distinguishes the offline packer from
the online greedy), then try to squeeze every rejected job into remaining
gaps.  The best resulting schedule is returned; its load is a valid lower
bound because the schedule is audited.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.machine import MachineState
from repro.model.schedule import Assignment, Schedule
from repro.utils.tolerances import TIME_EPS, fge

#: Job orderings tried by the portfolio, name -> sort key.
ORDERINGS: dict[str, Callable[[Job], tuple]] = {
    "edd": lambda j: (j.deadline, j.release, j.job_id),
    "long-first": lambda j: (-j.processing, j.deadline, j.job_id),
    "short-first": lambda j: (j.processing, j.deadline, j.job_id),
    "latest-start": lambda j: (j.latest_start, j.job_id),
    "release": lambda j: (j.release, j.deadline, j.job_id),
    "tightness": lambda j: (j.laxity, -j.processing, j.job_id),
}


def earliest_feasible_start(machine: MachineState, job: Job) -> float | None:
    """Earliest start of *job* on *machine*'s current timeline, gaps included.

    Scans the idle intervals of the committed timeline within the job's
    window; returns ``None`` when no gap fits.
    """
    horizon = job.deadline
    for gap in machine.free_intervals(job.release, horizon):
        start = max(gap.start, job.release)
        if fge(gap.end, start + job.processing) and fge(job.deadline, start + job.processing):
            return start
    return None


def _pack(instance: Instance, ordered: Sequence[Job]) -> Schedule:
    """Insert jobs in the given order, earliest-feasible-start placement."""
    machines = [MachineState(i) for i in range(instance.machines)]
    schedule = Schedule(instance=instance, algorithm="offline-pack")
    pending: list[Job] = []
    for job in ordered:
        placements = []
        for ms in machines:
            start = earliest_feasible_start(ms, job)
            if start is not None:
                placements.append((start, ms))
        if placements:
            start, ms = min(placements, key=lambda sm: (sm[0], sm[1].index))
            ms.commit(job, start)
            schedule.assignments[job.job_id] = Assignment(job.job_id, ms.index, start)
        else:
            pending.append(job)
    # Second chance: rejected jobs may fit into gaps created later.
    for job in pending:
        placed = False
        for ms in machines:
            start = earliest_feasible_start(ms, job)
            if start is not None:
                ms.commit(job, start)
                schedule.assignments[job.job_id] = Assignment(job.job_id, ms.index, start)
                placed = True
                break
        if not placed:
            schedule.rejected.add(job.job_id)
    schedule.audit()
    return schedule


def best_offline_schedule(instance: Instance) -> Schedule:
    """Best schedule over the ordering portfolio (certified feasible)."""
    best: Schedule | None = None
    for name, key in ORDERINGS.items():
        ordered = sorted(instance.jobs, key=key)
        candidate = _pack(instance, ordered)
        candidate.meta["ordering"] = name
        if best is None or candidate.accepted_load > best.accepted_load + TIME_EPS:
            best = candidate
    assert best is not None
    best.algorithm = "offline-heuristic"
    return best


def opt_lower_bound(instance: Instance) -> float:
    """Load of the best heuristic schedule (``<= OPT``)."""
    return best_offline_schedule(instance).accepted_load
