"""Exact offline optimum by memoised branch-and-bound (small instances).

Left-shift normalisation: every feasible schedule can be normalised so
each job starts at ``max(release, completion of its machine predecessor)``
without violating any deadline.  Normalised schedules are exactly the
outcomes of *dispatch sequences* — repeatedly appending some job to some
machine — so DFS over (job, machine-frontier) choices with memoisation on
``(remaining jobs, sorted frontiers)`` enumerates the full solution space.

State-space reductions:

* frontiers are kept as a sorted tuple (machines are identical);
* only *distinct* frontier values are branched on;
* jobs that can no longer meet their deadline from the smallest frontier
  are dropped from the state (frontiers only grow along a branch);
* branches are explored largest-job-first with a node-local upper-bound
  cut (remaining feasible load cannot beat the best branch found so far).

The solver is exponential by nature; :data:`EXACT_JOB_LIMIT` guards
against accidental use on large instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.machine import MachineState
from repro.model.schedule import Assignment, Schedule
from repro.utils.tolerances import TIME_EPS, fge

#: Hard cap on instance size for the exact solver.
EXACT_JOB_LIMIT = 18

#: Safety valve on the memoised state count: pathological instances (many
#: distinct release dates and interleaved windows) can explode the DFS even
#: below the job limit; exceeding this raises ``ExactSolverBudgetExceeded``
#: instead of hanging.
MAX_EXPLORED_STATES = 2_000_000


class ExactSolverBudgetExceeded(RuntimeError):
    """The branch-and-bound exceeded its state budget (use opt_bracket)."""

#: Frontier values are rounded to this many decimals for memo keys.
_KEY_DECIMALS = 9


@dataclass
class ExactResult:
    """Exact optimum: objective value and one optimal schedule."""

    value: float
    schedule: Schedule
    explored_states: int


def _round_key(x: float) -> float:
    return round(x, _KEY_DECIMALS)


class _Solver:
    def __init__(self, instance: Instance) -> None:
        self.instance = instance
        self.jobs: dict[int, Job] = {j.job_id: j for j in instance}
        self.memo: dict[tuple, float] = {}

    # ------------------------------------------------------------------
    def _alive(self, remaining: frozenset[int], min_frontier: float) -> frozenset[int]:
        """Drop jobs that can never be scheduled from this state on."""
        return frozenset(
            jid
            for jid in remaining
            if fge(
                self.jobs[jid].deadline,
                max(self.jobs[jid].release, min_frontier) + self.jobs[jid].processing,
            )
        )

    def best_additional(self, remaining: frozenset[int], frontiers: tuple[float, ...]) -> float:
        """Maximum additional load schedulable from this state."""
        remaining = self._alive(remaining, frontiers[0])
        if not remaining:
            return 0.0
        key = (remaining, frontiers)
        cached = self.memo.get(key)
        if cached is not None:
            return cached
        if len(self.memo) >= MAX_EXPLORED_STATES:
            raise ExactSolverBudgetExceeded(
                f"exact solver exceeded {MAX_EXPLORED_STATES} memoised states; "
                "use repro.offline.bracket.opt_bracket(force_bounds=True) instead"
            )

        total_possible = sum(self.jobs[j].processing for j in remaining)
        best = 0.0
        # Largest-processing-first finds strong incumbents early.
        for jid in sorted(remaining, key=lambda i: -self.jobs[i].processing):
            job = self.jobs[jid]
            if job.processing + total_possible - job.processing <= best + TIME_EPS:
                # Even scheduling everything cannot beat the incumbent.
                break
            tried: set[float] = set()
            for slot, frontier in enumerate(frontiers):
                if frontier in tried:
                    continue
                tried.add(frontier)
                start = max(job.release, frontier)
                if not fge(job.deadline, start + job.processing):
                    continue
                new_frontiers = list(frontiers)
                new_frontiers[slot] = _round_key(start + job.processing)
                new_frontiers.sort()
                value = job.processing + self.best_additional(
                    remaining - {jid}, tuple(new_frontiers)
                )
                if value > best + TIME_EPS:
                    best = value
                if best >= total_possible - TIME_EPS:
                    self.memo[key] = best
                    return best
        self.memo[key] = best
        return best

    # ------------------------------------------------------------------
    def reconstruct(self) -> Schedule:
        """Rebuild one optimal schedule by walking the memoised values."""
        machines = [MachineState(i) for i in range(self.instance.machines)]
        schedule = Schedule(instance=self.instance, algorithm="offline-exact")
        remaining = frozenset(self.jobs)
        frontiers = tuple([0.0] * self.instance.machines)
        # Track which physical machine owns each frontier slot.
        slot_machines = list(range(self.instance.machines))

        while True:
            remaining = self._alive(remaining, frontiers[0])
            if not remaining:
                break
            target = self.best_additional(remaining, frontiers)
            if target <= TIME_EPS:
                break
            moved = False
            for jid in sorted(remaining, key=lambda i: -self.jobs[i].processing):
                job = self.jobs[jid]
                tried: set[float] = set()
                for slot, frontier in enumerate(frontiers):
                    if frontier in tried:
                        continue
                    tried.add(frontier)
                    start = max(job.release, frontier)
                    if not fge(job.deadline, start + job.processing):
                        continue
                    new_frontiers = list(frontiers)
                    new_frontiers[slot] = _round_key(start + job.processing)
                    order = sorted(range(len(new_frontiers)), key=lambda i: new_frontiers[i])
                    candidate = job.processing + self.best_additional(
                        remaining - {jid},
                        tuple(new_frontiers[i] for i in order),
                    )
                    if abs(candidate - target) <= 1e-7:
                        machine_idx = slot_machines[slot]
                        machines[machine_idx].commit(job, start)
                        schedule.assignments[jid] = Assignment(jid, machine_idx, start)
                        remaining = remaining - {jid}
                        slot_machines = [slot_machines[i] for i in order]
                        frontiers = tuple(new_frontiers[i] for i in order)
                        moved = True
                        break
                if moved:
                    break
            if not moved:  # pragma: no cover - defensive
                raise RuntimeError("reconstruction failed to follow the memo")
        for jid in self.jobs:
            if jid not in schedule.assignments:
                schedule.rejected.add(jid)
        schedule.audit()
        return schedule


def exact_optimum(instance: Instance, job_limit: int = EXACT_JOB_LIMIT) -> ExactResult:
    """Exact offline optimum of *instance* (small instances only).

    Raises ``ValueError`` when the instance exceeds *job_limit* jobs — use
    :func:`repro.offline.bracket.opt_bracket` for large instances.
    """
    if len(instance) > job_limit:
        raise ValueError(
            f"exact solver limited to {job_limit} jobs; instance has {len(instance)} "
            "(use opt_bracket for bounds instead)"
        )
    solver = _Solver(instance)
    value = solver.best_additional(
        frozenset(solver.jobs), tuple([0.0] * instance.machines)
    )
    schedule = solver.reconstruct()
    if abs(schedule.accepted_load - value) > 1e-6:  # pragma: no cover - defensive
        raise RuntimeError(
            f"reconstructed load {schedule.accepted_load} != optimum {value}"
        )
    return ExactResult(value=value, schedule=schedule, explored_states=len(solver.memo))
