"""Bracketing the offline optimum: ``lower <= OPT <= upper``.

Small instances get the exact value (both ends coincide); large instances
combine the heuristic packer (lower) with the flow relaxation (upper).
Empirical competitive ratios computed against ``upper`` are conservative
*over*-estimates of the true ratio — the safe direction when checking an
algorithm against its theoretical guarantee.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.model.instance import Instance
from repro.offline.bounds import opt_upper_bound
from repro.offline.exact import EXACT_JOB_LIMIT, exact_optimum
from repro.offline.heuristics import opt_lower_bound


class _CallableFloat(float):
    """Deprecation shim: a float that still answers the legacy call form.

    ``OptBracket.relative_gap`` used to be a method while its siblings
    ``midpoint``/``gap`` were properties; it is a property now.  Old
    callers writing ``bracket.relative_gap()`` receive this float
    subclass, whose ``__call__`` returns the same value under a
    :class:`DeprecationWarning` instead of raising ``TypeError``.

    .. deprecated:: 1.0
        The call form ``bracket.relative_gap()`` will stop working in
        version 2.0, when this shim class is removed and the property
        returns a plain ``float``.
    """

    def __call__(self) -> float:
        warnings.warn(
            "OptBracket.relative_gap is now a property; drop the call "
            "parentheses (the () form will be removed in a future release)",
            DeprecationWarning,
            stacklevel=2,
        )
        return float(self)


@dataclass(frozen=True)
class OptBracket:
    """Certified bracket of the offline optimum."""

    lower: float
    upper: float
    exact: bool

    @property
    def midpoint(self) -> float:
        """Midpoint estimate (equals the optimum when ``exact``)."""
        return 0.5 * (self.lower + self.upper)

    @property
    def gap(self) -> float:
        """Absolute bracket width."""
        return self.upper - self.lower

    @property
    def relative_gap(self) -> float:
        """Bracket width relative to the upper bound (0 when exact)."""
        return _CallableFloat(0.0 if self.upper <= 0 else self.gap / self.upper)


def opt_bracket(
    instance: Instance,
    exact_limit: int = EXACT_JOB_LIMIT,
    force_bounds: bool = False,
) -> OptBracket:
    """Compute a certified bracket of the offline optimum of *instance*.

    ``force_bounds`` skips the exact solver even on small instances (used
    by benchmarks that time the bound computations themselves).
    """
    if len(instance) <= exact_limit and not force_bounds:
        value = exact_optimum(instance, job_limit=exact_limit).value
        return OptBracket(lower=value, upper=value, exact=True)
    lower = opt_lower_bound(instance)
    upper = opt_upper_bound(instance)
    # Numerical safety: the heuristic is a real schedule, so it can exceed
    # the flow bound only by round-off.
    upper = max(upper, lower)
    return OptBracket(lower=lower, upper=upper, exact=False)
