"""Online simulation engine.

One shared kernel (:mod:`repro.engine.kernel`) owns the event loop,
decision validation, machine-timeline mutation, audit invocation and a
model-agnostic observability layer (structured events + per-run stats).
Each commitment model of the paper's §1 taxonomy plugs into it as a thin
:class:`~repro.engine.kernel.CommitmentModel` strategy:

* :mod:`repro.engine.simulator` — immediate commitment (the paper's model);
* :mod:`repro.engine.delayed` — δ-delayed commitment;
* :mod:`repro.engine.admission` — commitment on admission;
* :mod:`repro.engine.penalties` — commitment with penalties;
* :mod:`repro.engine.preemptive` — preemptive immediate notification
  (substrate of the Section 1.2 baselines).

Every invalid policy decision, in every model, raises the unified
:class:`~repro.engine.kernel.SimulationError`; every run surfaces
``meta["stats"]`` and, on request, ``meta["events"]``.

Above the per-model simulators sits the **kernel-backend seam**
(:mod:`repro.engine.backend`): :func:`~repro.engine.backend.run_simulations`
dispatches :class:`~repro.engine.backend.SimulationRequest` batches either
to the scalar golden path above or to the structure-of-arrays NumPy kernels
(:mod:`repro.engine.batch`, :mod:`repro.engine.batch_delayed`,
:mod:`repro.engine.batch_penalties`), which are bit-identical to it — see
``docs/engine_backends.md``.  An optional numba-jitted inner loop
(:mod:`repro.engine.jit`, ``REPRO_NUMBA=1``) accelerates the immediate
batch kernels without changing a single bit; ``docs/kernel_authoring.md``
explains how to add a kernel that keeps these guarantees.

For request-at-a-time use (the ``repro serve`` service), the kernel's
event loop is also exposed incrementally: :func:`~repro.engine.controller.
open_session` opens an :class:`~repro.engine.controller.AdmissionController`
that drives the same immediate-commitment strategy one ``offer`` at a
time, with snapshot/restore by deterministic replay — bit-identical to
:func:`simulate` by construction (see ``docs/serving.md``).
"""

from repro.engine.kernel import (
    CommitmentModel,
    EventStream,
    JobFeed,
    KernelContext,
    RunStats,
    SimEvent,
    SimulationError,
    commit_decision,
    replay_events,
    run_model,
)
from repro.engine.policy import Decision, OnlinePolicy, JobSource, SequenceSource
from repro.engine.simulator import ImmediateCommitmentModel, simulate, simulate_source
from repro.engine.controller import (
    AdmissionController,
    SnapshotMismatchError,
    open_session,
)
from repro.engine.recorder import DecisionRecord, TraceRecorder
from repro.engine.preemptive import (
    PreemptiveCommitmentModel,
    PreemptiveMachine,
    PreemptiveOutcome,
    edf_feasible,
    simulate_preemptive,
    PreemptivePolicy,
)
from repro.engine.audit import audit_run, CommitmentAuditError
from repro.engine.delayed import (
    DelayedCommitmentModel,
    DelayedPolicy,
    DelayedGreedyPolicy,
    PendingJob,
    simulate_delayed,
)
from repro.engine.admission import (
    AdmissionCommitmentModel,
    AdmissionPolicy,
    AdmissionGreedyPolicy,
    AdmissionEddPolicy,
    AdmissionLazyPolicy,
    simulate_admission,
)
from repro.engine.penalties import (
    PenaltiesCommitmentModel,
    PenaltyPolicy,
    RevocableGreedyPolicy,
    PenaltyOutcome,
    simulate_with_penalties,
)
from repro.engine.batch import (
    ImmediateRule,
    IMMEDIATE_RULES,
    run_classify_select_batch,
    run_immediate_batch,
    run_random_admission_batch,
)
from repro.engine.batch_delayed import (
    ADMISSION_ALGORITHMS,
    run_admission_batch,
    run_delayed_batch,
)
from repro.engine.batch_penalties import DEFAULT_PHI, run_penalties_batch
from repro.engine.backend import (
    BACKEND_CHOICES,
    BACKENDS,
    BackendFallbackWarning,
    BatchBackend,
    KernelBackend,
    ScalarBackend,
    SimulationRequest,
    run_simulation,
    run_simulations,
)

__all__ = [
    "CommitmentModel",
    "EventStream",
    "JobFeed",
    "KernelContext",
    "RunStats",
    "SimEvent",
    "SimulationError",
    "commit_decision",
    "replay_events",
    "run_model",
    "Decision",
    "OnlinePolicy",
    "JobSource",
    "SequenceSource",
    "ImmediateCommitmentModel",
    "simulate",
    "simulate_source",
    "AdmissionController",
    "SnapshotMismatchError",
    "open_session",
    "DecisionRecord",
    "TraceRecorder",
    "PreemptiveCommitmentModel",
    "PreemptiveMachine",
    "PreemptiveOutcome",
    "edf_feasible",
    "simulate_preemptive",
    "PreemptivePolicy",
    "audit_run",
    "CommitmentAuditError",
    "DelayedCommitmentModel",
    "DelayedPolicy",
    "DelayedGreedyPolicy",
    "PendingJob",
    "simulate_delayed",
    "PenaltiesCommitmentModel",
    "PenaltyPolicy",
    "RevocableGreedyPolicy",
    "PenaltyOutcome",
    "simulate_with_penalties",
    "AdmissionCommitmentModel",
    "AdmissionPolicy",
    "AdmissionGreedyPolicy",
    "AdmissionEddPolicy",
    "AdmissionLazyPolicy",
    "simulate_admission",
    "ImmediateRule",
    "IMMEDIATE_RULES",
    "run_immediate_batch",
    "run_classify_select_batch",
    "run_random_admission_batch",
    "ADMISSION_ALGORITHMS",
    "run_admission_batch",
    "run_delayed_batch",
    "DEFAULT_PHI",
    "run_penalties_batch",
    "BACKEND_CHOICES",
    "BACKENDS",
    "BackendFallbackWarning",
    "BatchBackend",
    "KernelBackend",
    "ScalarBackend",
    "SimulationRequest",
    "run_simulation",
    "run_simulations",
]
