"""Online simulation engine.

The engine owns the ground-truth machine timelines, feeds jobs to an
:class:`~repro.engine.policy.OnlinePolicy` in submission order, enforces
immediate commitment (decisions are applied instantly and can never be
revised), and produces an audited :class:`~repro.model.schedule.Schedule`.

Two execution models are provided:

* :mod:`repro.engine.simulator` — the paper's non-preemptive model;
* :mod:`repro.engine.preemptive` — a per-machine preemptive EDF executor
  used by the preemptive baselines of Section 1.2.
"""

from repro.engine.policy import Decision, OnlinePolicy, JobSource, SequenceSource
from repro.engine.simulator import simulate, simulate_source, SimulationError
from repro.engine.recorder import DecisionRecord, TraceRecorder
from repro.engine.preemptive import (
    PreemptiveMachine,
    edf_feasible,
    simulate_preemptive,
    PreemptivePolicy,
)
from repro.engine.audit import audit_run, CommitmentAuditError
from repro.engine.delayed import (
    DelayedPolicy,
    DelayedGreedyPolicy,
    PendingJob,
    simulate_delayed,
)
from repro.engine.admission import (
    AdmissionPolicy,
    AdmissionGreedyPolicy,
    AdmissionEddPolicy,
    AdmissionLazyPolicy,
    simulate_admission,
)
from repro.engine.penalties import (
    PenaltyPolicy,
    RevocableGreedyPolicy,
    PenaltyOutcome,
    simulate_with_penalties,
)

__all__ = [
    "Decision",
    "OnlinePolicy",
    "JobSource",
    "SequenceSource",
    "simulate",
    "simulate_source",
    "SimulationError",
    "DecisionRecord",
    "TraceRecorder",
    "PreemptiveMachine",
    "edf_feasible",
    "simulate_preemptive",
    "PreemptivePolicy",
    "audit_run",
    "CommitmentAuditError",
    "DelayedPolicy",
    "DelayedGreedyPolicy",
    "PendingJob",
    "simulate_delayed",
    "PenaltyPolicy",
    "RevocableGreedyPolicy",
    "PenaltyOutcome",
    "simulate_with_penalties",
    "AdmissionPolicy",
    "AdmissionGreedyPolicy",
    "AdmissionEddPolicy",
    "AdmissionLazyPolicy",
    "simulate_admission",
]
