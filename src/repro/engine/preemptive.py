"""Preemptive per-machine execution (EDF) for the preemptive baselines.

The paper's own model is non-preemptive, but its related-work comparators
(DasGupta–Palis ``1 + 1/ε``; Schwiegelshohn² with migration) live in
preemptive machine models.  This module provides the substrate those
baselines run on:

* :class:`PreemptiveMachine` — one machine executing its accepted jobs in
  *earliest-deadline-first* order, preemptively.  Because admission happens
  at release time, every accepted-but-unfinished job on a machine is
  already released, so EDF feasibility reduces to a prefix-sum test and
  EDF execution to processing remainders in deadline order.
* :func:`edf_feasible` — the single-machine feasibility test
  (EDF is optimal for ``1 | r_j, pmtn | deadline`` feasibility).
* :func:`simulate_preemptive` — the kernel-backed entry point for
  :class:`PreemptivePolicy` implementations (accept/reject plus machine
  choice; no start-time commitment — the machine may preempt at will, i.e.
  this is the *immediate notification* model).

The event loop, validation and observability run on
:mod:`repro.engine.kernel` via :class:`PreemptiveCommitmentModel`; policy
bugs raise :class:`~repro.engine.kernel.SimulationError`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.engine.kernel import CommitmentModel, JobFeed, KernelContext, run_model
from repro.model.instance import Instance
from repro.model.job import Job
from repro.utils.tolerances import TIME_EPS, fge, snap


@dataclass
class ActiveJob:
    """An accepted job with its remaining processing requirement."""

    job: Job
    remaining: float

    @property
    def deadline(self) -> float:
        """Absolute deadline of the underlying job."""
        return self.job.deadline


def edf_feasible(now: float, items: Sequence[ActiveJob], extra: Job | None = None) -> bool:
    """Single-machine EDF feasibility of already-released work at time *now*.

    ``items`` are active (released) jobs with remainders; *extra* optionally
    adds a candidate job (full processing time).  Feasible iff processing
    the remainders in non-decreasing deadline order meets every deadline:

    .. math:: now + \\sum_{i \\le j} rem_i \\le d_j \\quad \\forall j .
    """
    entries = [(a.deadline, a.remaining) for a in items if a.remaining > TIME_EPS]
    if extra is not None:
        entries.append((extra.deadline, extra.processing))
    entries.sort()
    clock = now
    for deadline, remaining in entries:
        clock += remaining
        if not fge(deadline, clock):
            return False
    return True


class PreemptiveMachine:
    """One preemptive machine running EDF over its accepted jobs."""

    __slots__ = ("index", "now", "active", "completed_load", "completions")

    def __init__(self, index: int) -> None:
        self.index = index
        self.now = 0.0
        self.active: list[ActiveJob] = []
        self.completed_load = 0.0
        self.completions: dict[int, float] = {}

    def advance(self, t: float) -> None:
        """Execute EDF from the machine's local clock up to time *t*."""
        if t < self.now - TIME_EPS:
            raise ValueError(f"machine {self.index}: time moved backwards {self.now} -> {t}")
        budget = t - self.now
        self.active.sort(key=lambda a: a.deadline)
        clock = self.now
        still_active: list[ActiveJob] = []
        for item in self.active:
            if budget <= TIME_EPS:
                still_active.append(item)
                continue
            work = min(item.remaining, budget)
            item.remaining = snap(item.remaining - work)
            budget -= work
            clock += work
            if item.remaining <= TIME_EPS:
                self.completed_load += item.job.processing
                self.completions[item.job.job_id] = clock
            else:
                still_active.append(item)
        self.active = still_active
        self.now = t

    def outstanding(self) -> float:
        """Total remaining work of active jobs at the local clock."""
        return sum(a.remaining for a in self.active)

    def feasible_with(self, job: Job) -> bool:
        """Whether accepting *job* now keeps this machine EDF-feasible."""
        return edf_feasible(self.now, self.active, extra=job)

    def accept(self, job: Job) -> None:
        """Admit *job* (caller is responsible for the feasibility check)."""
        self.active.append(ActiveJob(job, job.processing))

    def drain(self) -> None:
        """Run the machine to completion of all active work."""
        horizon = self.now + self.outstanding()
        self.advance(horizon)


class PreemptivePolicy(ABC):
    """Admission policy in the preemptive immediate-notification model.

    The policy answers accept/reject plus a machine choice; it does *not*
    commit a start time (machines preempt freely).  Jobs never migrate
    between machines (the DasGupta–Palis model); the migration model is
    handled by :mod:`repro.baselines.migration` with its own feasibility
    oracle.
    """

    name: str = "preemptive-policy"
    immediate_commitment: bool = False

    def reset(self, machines: int, epsilon: float) -> None:
        """Prepare for a fresh run."""

    @abstractmethod
    def on_submission(
        self, job: Job, t: float, machines: Sequence[PreemptiveMachine]
    ) -> int | None:
        """Return the chosen machine index, or ``None`` to reject."""


@dataclass
class PreemptiveOutcome:
    """Result of a preemptive simulation run."""

    instance: Instance
    algorithm: str
    accepted_ids: set[int] = field(default_factory=set)
    completions: dict[int, float] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def accepted_load(self) -> float:
        """Objective value :math:`\\sum p_j (1 - U_j)`."""
        return float(sum(self.instance[j].processing for j in self.accepted_ids))

    def audit(self) -> None:
        """Verify every accepted job completed by its deadline."""
        for jid in self.accepted_ids:
            job = self.instance[jid]
            done = self.completions.get(jid)
            if done is None:
                raise AssertionError(f"accepted job {jid} never completed")
            if not fge(job.deadline, done):
                raise AssertionError(
                    f"job {jid} completed at {done} after deadline {job.deadline}"
                )


class PreemptiveCommitmentModel(CommitmentModel):
    """Kernel strategy for the preemptive immediate-notification model.

    One kernel step per submission: all machines advance their EDF
    execution to the release time, the policy picks a machine (or
    rejects), and acceptance is validated against the machine's EDF
    feasibility oracle.
    """

    model = "preemptive"

    def __init__(self, policy: PreemptivePolicy, instance: Instance) -> None:
        self.policy = policy
        self.instance = instance
        self.algorithm = policy.name
        self.feed = JobFeed(instance.jobs)
        self.machines: list[PreemptiveMachine] = []
        self.outcome: PreemptiveOutcome | None = None

    def begin(self, ctx: KernelContext) -> None:
        self.machines = [PreemptiveMachine(i) for i in range(self.instance.machines)]
        self.policy.reset(self.instance.machines, self.instance.epsilon)
        self.outcome = PreemptiveOutcome(instance=self.instance, algorithm=self.policy.name)

    def step(self, ctx: KernelContext) -> bool:
        job = self.feed.pop()
        if job is None:
            return False
        t = job.release
        ctx.submitted(job, t)
        for machine in self.machines:
            machine.advance(t)
        choice = self.policy.on_submission(job, t, self.machines)
        if choice is None:
            ctx.decided(t, job.job_id, False)
            return True
        if not 0 <= choice < len(self.machines):
            ctx.fail(
                f"policy chose machine {choice} out of range", job_id=job.job_id, time=t
            )
        if not self.machines[choice].feasible_with(job):
            ctx.fail(
                f"policy accepted job {job.job_id} onto infeasible machine {choice}",
                job_id=job.job_id,
                time=t,
            )
        self.machines[choice].accept(job)
        self.outcome.accepted_ids.add(job.job_id)
        ctx.decided(t, job.job_id, True, machine=choice)
        return True

    def finish(self, ctx: KernelContext) -> None:
        for machine in self.machines:
            machine.drain()
            self.outcome.completions.update(machine.completions)
            if ctx.events is not None:
                for jid, done in sorted(machine.completions.items()):
                    ctx.emit("complete", done, job_id=jid, machine=machine.index)

    def build(self, ctx: KernelContext) -> PreemptiveOutcome:
        return self.outcome


def simulate_preemptive(
    policy: PreemptivePolicy, instance: Instance, record_events: bool = False
) -> PreemptiveOutcome:
    """Run a :class:`PreemptivePolicy` over *instance* on the shared kernel."""
    return run_model(
        PreemptiveCommitmentModel(policy, instance), record_events=record_events
    )
