"""Commitment on admission: decide only when starting a job (§1).

The weakest commitment variant in the paper's taxonomy (used by the early
online admission-control literature [18, 26, 27]): the scheduler keeps
submitted jobs *pending* and commits to a job only at the moment it
starts executing.  A pending job is implicitly rejected once it can no
longer start anywhere in time.

Mechanics
---------

* events are job releases, machine-free times and pending expiries;
* at each event, pending jobs that can no longer meet their deadline even
  on the *earliest-free* machine become rejections (decisive expiry — a
  busy fleet kills a pending job the moment waiting would be fatal);
* the policy ranks the live pending jobs; the engine starts the chosen
  job on an idle machine immediately (starting *now* is the commitment —
  reservations into the future would be immediate commitment in disguise
  and are not part of this model);
* between events machines run their started jobs to completion
  (non-preemptive).

The event loop, validation and observability run on
:mod:`repro.engine.kernel` via :class:`AdmissionCommitmentModel`; policy
bugs raise :class:`~repro.engine.kernel.SimulationError`.

The bundled :class:`AdmissionGreedyPolicy` starts the largest startable
pending job whenever a machine is idle — on the bait-and-whale streams it
simply waits out the baits and starts the whales, which is exactly why
the literature found this model so much easier than immediate commitment
(benchmark E12 quantifies the gap).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.engine.kernel import (
    CommitmentModel,
    JobFeed,
    KernelContext,
    exhaust,
    run_model,
)
from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.schedule import Assignment, Schedule
from repro.utils.tolerances import TIME_EPS, fge


class AdmissionPolicy(ABC):
    """Ranking policy for the commitment-on-admission engine."""

    name: str = "admission-policy"
    immediate_commitment = False

    def reset(self, machines: int, epsilon: float) -> None:
        """Prepare for a fresh run."""

    @abstractmethod
    def choose(self, t: float, pending: Sequence[Job]) -> Job | None:
        """Pick the pending job to start *now* on an idle machine.

        ``pending`` contains only jobs that can still start at *t*
        (``latest_start >= t``).  Return ``None`` to leave the machine
        idle until the next event.
        """


class AdmissionGreedyPolicy(AdmissionPolicy):
    """Start the most valuable (largest) startable pending job."""

    name = "admission-greedy"

    def choose(self, t: float, pending: Sequence[Job]) -> Job | None:
        if not pending:
            return None
        return max(pending, key=lambda j: (j.processing, -j.job_id))


class AdmissionEddPolicy(AdmissionPolicy):
    """Start the most urgent (earliest-deadline) startable pending job."""

    name = "admission-edd"

    def choose(self, t: float, pending: Sequence[Job]) -> Job | None:
        if not pending:
            return None
        return min(pending, key=lambda j: (j.deadline, j.job_id))


class AdmissionLazyPolicy(AdmissionPolicy):
    """Wait until some pending job is about to expire, then start the best.

    The model's entire power over immediate commitment is the option to
    *wait*: starting as late as possible keeps the machine free for
    whatever bigger job may still arrive.  Only when some startable job
    reaches its latest start time does the policy commit — and then it
    starts the *largest* startable job, which need not be the one whose
    deadline forced the decision (on bait-and-whale streams the expiring
    bait triggers the start of a whale).
    """

    name = "admission-lazy"

    def __init__(self, slack_margin: float = 10 * TIME_EPS) -> None:
        self.slack_margin = slack_margin

    def choose(self, t: float, pending: Sequence[Job]) -> Job | None:
        if not pending:
            return None
        edge = min(j.latest_start for j in pending)
        if edge > t + self.slack_margin:
            return None  # nothing is forced yet: keep waiting
        return max(pending, key=lambda j: (j.processing, -j.job_id))


class AdmissionCommitmentModel(CommitmentModel):
    """Kernel strategy for the commitment-on-admission model.

    One kernel step per event time (release, machine-free time or pending
    expiry); starting jobs while machines are idle is a within-event
    fixpoint handled by the kernel's :func:`~repro.engine.kernel.exhaust`.
    """

    model = "commitment-on-admission"

    def __init__(self, policy: AdmissionPolicy, instance: Instance) -> None:
        self.policy = policy
        self.instance = instance
        self.algorithm = policy.name
        self.machine_free: list[float] = []
        self.pending: dict[int, Job] = {}
        self.feed = JobFeed(instance.jobs)
        self.schedule: Schedule | None = None
        self.now = 0.0

    def begin(self, ctx: KernelContext) -> None:
        self.policy.reset(self.instance.machines, self.instance.epsilon)
        self.machine_free = [0.0] * self.instance.machines
        self.schedule = Schedule(instance=self.instance, algorithm=self.policy.name)
        self.schedule.meta["model"] = self.model

    def _start_one(self, ctx: KernelContext) -> bool:
        """Start at most one pending job on an idle machine; True if started."""
        if not self.pending:
            return False
        now = self.now
        idle = [i for i, f in enumerate(self.machine_free) if f <= now + TIME_EPS]
        if not idle:
            return False
        startable = [j for j in self.pending.values() if fge(j.latest_start, now)]
        if not startable:
            return False
        choice = self.policy.choose(now, startable)
        if choice is None:
            return False
        if choice.job_id not in self.pending or not fge(choice.latest_start, now):
            ctx.fail(
                f"policy chose job {choice.job_id} that is not startable at {now}",
                job_id=choice.job_id,
                time=now,
            )
        machine = idle[0]
        start = max(now, choice.release)
        self.schedule.assignments[choice.job_id] = Assignment(choice.job_id, machine, start)
        self.machine_free[machine] = start + choice.processing
        del self.pending[choice.job_id]
        ctx.decided(now, choice.job_id, True, machine, start)
        return True

    def step(self, ctx: KernelContext) -> bool:
        if self.feed.exhausted and not self.pending:
            return False
        now = self.now

        # 1) absorb all releases at or before `now`.
        for job in self.feed.take_released(now):
            self.pending[job.job_id] = job
            ctx.submitted(job, now)

        # 2) decisive expiry: a pending job whose latest start precedes the
        #    earliest time any machine frees can never run.
        earliest_free = min(self.machine_free)
        for jid in [
            j
            for j, job in self.pending.items()
            if job.latest_start < max(now, earliest_free) - TIME_EPS
        ]:
            self.schedule.rejected.add(jid)
            del self.pending[jid]
            ctx.emit("expire", now, job_id=jid)
            ctx.decided(now, jid, False, reason="expired")

        # 3) start jobs on idle machines at the current instant.
        exhaust(lambda: self._start_one(ctx))

        # 4) advance to the next strictly-future event.
        candidates = []
        head = self.feed.peek()
        if head is not None:
            candidates.append(head.release)
        candidates.extend(f for f in self.machine_free if f > now + TIME_EPS)
        candidates.extend(
            j.latest_start for j in self.pending.values() if j.latest_start > now + TIME_EPS
        )
        future = [c for c in candidates if c > now + TIME_EPS]
        if future:
            self.now = min(future)
        elif self.pending:
            # Nothing will ever change: the remaining pending jobs are
            # un-startable (policy declined or machines busy forever in
            # the past-tense sense) — reject them and finish.
            for jid in list(self.pending):
                self.schedule.rejected.add(jid)
                del self.pending[jid]
                ctx.decided(now, jid, False, reason="unstartable")
        return True

    def build(self, ctx: KernelContext) -> Schedule:
        return self.schedule


def simulate_admission(
    policy: AdmissionPolicy, instance: Instance, record_events: bool = False
) -> Schedule:
    """Run *policy* in the commitment-on-admission model; audited schedule.

    Jobs that can no longer start in time on any machine are recorded as
    rejected.  ``schedule.meta['model']`` records the model name so
    reports can distinguish it from immediate-commitment runs.
    """
    return run_model(
        AdmissionCommitmentModel(policy, instance), record_events=record_events
    )
