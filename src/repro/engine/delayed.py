"""Delayed commitment: the δ-deferral model of the paper's Section 1.

The paper's taxonomy (§1) contrasts *immediate commitment* with
*δ-delayed commitment*: an algorithm may postpone the accept/reject
decision on job :math:`J_j` until time :math:`r_j + \\delta \\cdot p_j`
(with :math:`\\delta \\le \\varepsilon`), e.g. the framework of Chen et
al. [8] and Azar et al. [2].  This module implements that machine model so
the benchmarks can measure the *price of immediacy* — how much objective
value the immediate-commitment requirement costs relative to a deferred
decider on the same streams.

Mechanics
---------

* Each submitted job enters a *pending* set with decision deadline
  :math:`t_{dec} = r_j + \\delta p_j` (clipped so that an accepted job can
  still start in time: :math:`t_{dec} \\le d_j - p_j`).
* The engine advances through events (releases and decision deadlines).
  At each event the policy sees the full pending set and may decide any
  subset of it early; jobs whose deadline fires *must* be decided.
* Acceptance fixes machine and start time (``start >= decision time``) —
  commitment is still binding once made, it is only *later*.

The event loop, validation and observability run on
:mod:`repro.engine.kernel` via :class:`DelayedCommitmentModel`; every
policy-bug path raises :class:`~repro.engine.kernel.SimulationError`.

The bundled :class:`DelayedGreedyPolicy` defers every decision as long as
allowed and then accepts iff feasible, preferring long jobs among pending
conflicts — enough look-ahead to dodge the bait-and-whale trap that costs
immediate greedy a :math:`\\Theta(1/\\varepsilon)` factor.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.engine.kernel import (
    CommitmentModel,
    JobFeed,
    KernelContext,
    commit_decision,
    run_model,
)
from repro.engine.policy import Decision
from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.machine import MachineState
from repro.model.schedule import Assignment, Schedule
from repro.utils.tolerances import TIME_EPS


@dataclass(frozen=True, slots=True)
class PendingJob:
    """A job awaiting its (possibly deferred) decision."""

    job: Job
    decision_deadline: float


class DelayedPolicy(ABC):
    """Admission policy in the δ-delayed-commitment model."""

    name: str = "delayed-policy"
    immediate_commitment = False

    def reset(self, machines: int, epsilon: float, delta: float) -> None:
        """Prepare for a fresh run."""

    @abstractmethod
    def decide(
        self,
        t: float,
        due: Sequence[PendingJob],
        pending: Sequence[PendingJob],
        machines: Sequence[MachineState],
    ) -> dict[int, Decision]:
        """Decide at event time *t*.

        ``due`` are pending jobs whose decision deadline fires at *t* —
        each MUST receive a decision.  ``pending`` is the full pending set
        (including ``due``); the policy may decide others early by
        including them in the returned mapping (job id -> decision).
        """


def decision_deadline(job: Job, delta: float) -> float:
    """Latest legal decision time for *job* under δ-deferral.

    ``r + delta * p``, clipped to the job's latest feasible start (a later
    decision could never be honoured).
    """
    return min(job.release + delta * job.processing, job.latest_start)


class DelayedCommitmentModel(CommitmentModel):
    """Kernel strategy for the δ-delayed-commitment model.

    One kernel step per event time (a release or the earliest pending
    decision deadline); the pending set and the committed machine
    timelines are the model state.
    """

    model = "delayed"

    def __init__(self, policy: DelayedPolicy, instance: Instance, delta: float) -> None:
        self.policy = policy
        self.instance = instance
        self.delta = delta
        self.algorithm = policy.name
        self.machines: list[MachineState] = []
        self.pending: dict[int, PendingJob] = {}
        self.feed = JobFeed(instance.jobs)
        self.schedule: Schedule | None = None

    def begin(self, ctx: KernelContext) -> None:
        self.machines = [MachineState(i) for i in range(self.instance.machines)]
        self.policy.reset(self.instance.machines, self.instance.epsilon, self.delta)
        self.schedule = Schedule(instance=self.instance, algorithm=self.policy.name)
        self.schedule.meta["delta"] = self.delta

    def _apply(self, ctx: KernelContext, decisions: dict[int, Decision], t: float) -> None:
        for jid, decision in decisions.items():
            item = self.pending.pop(jid, None)
            if item is None:
                ctx.fail(f"policy decided unknown/decided job {jid}", job_id=jid, time=t)
            if decision.accepted:
                if decision.start is None or decision.start < t - TIME_EPS:
                    ctx.fail(
                        f"job {jid}: committed start {decision.start} precedes "
                        f"decision time {t}",
                        job_id=jid,
                        time=t,
                    )
                commit_decision(self.machines, item.job, t, decision.machine, decision.start, ctx)
                self.schedule.assignments[jid] = Assignment(jid, decision.machine, decision.start)
            else:
                self.schedule.rejected.add(jid)
            ctx.decided(t, jid, decision.accepted, decision.machine, decision.start)

    def step(self, ctx: KernelContext) -> bool:
        if self.feed.exhausted and not self.pending:
            return False
        # Next event: the earlier of the next release and the earliest
        # pending decision deadline.
        candidates: list[float] = []
        head = self.feed.peek()
        if head is not None:
            candidates.append(head.release)
        if self.pending:
            candidates.append(min(p.decision_deadline for p in self.pending.values()))
        t = min(candidates)

        # Admit all releases at time t into the pending set first.
        for job in self.feed.take_released(t):
            self.pending[job.job_id] = PendingJob(job, decision_deadline(job, self.delta))
            ctx.submitted(job, t)

        due = [p for p in self.pending.values() if p.decision_deadline <= t + TIME_EPS]
        if not due:
            return True
        decisions = self.policy.decide(t, due, list(self.pending.values()), self.machines)
        missing = {p.job.job_id for p in due} - set(decisions)
        if missing:
            ctx.fail(f"policy left due jobs undecided: {sorted(missing)}", time=t)
        self._apply(ctx, decisions, t)
        return True

    def build(self, ctx: KernelContext) -> Schedule:
        return self.schedule


def simulate_delayed(
    policy: DelayedPolicy,
    instance: Instance,
    delta: float,
    record_events: bool = False,
) -> Schedule:
    """Run *policy* on *instance* in the δ-delayed-commitment model.

    Returns an audited schedule.  ``delta`` must lie in
    ``[0, instance.epsilon]`` (the model's own constraint δ <= ε);
    ``delta = 0`` reduces to immediate commitment.
    """
    if not 0.0 <= delta <= instance.epsilon + TIME_EPS:
        raise ValueError(
            f"delta must lie in [0, epsilon={instance.epsilon}], got {delta}"
        )
    return run_model(
        DelayedCommitmentModel(policy, instance, delta), record_events=record_events
    )


class DelayedGreedyPolicy(DelayedPolicy):
    """Defer maximally, then admit by value with pending look-ahead.

    At each event, jobs are decided in order of decreasing processing time
    among those due; each is accepted onto the machine that can finish it
    earliest if feasible.  Before accepting a *due* job, the policy checks
    whether a strictly more valuable pending (not yet due) job would lose
    its only feasible machine slot — if so the due job is rejected in its
    favour.  This simple one-step look-ahead is what deferral buys.
    """

    name = "delayed-greedy"

    def __init__(self, lookahead: bool = True) -> None:
        self.lookahead = lookahead
        if not lookahead:
            self.name = "delayed-greedy[no-lookahead]"

    def _fits_anywhere(self, job: Job, t: float, machines: Sequence[MachineState]) -> bool:
        return any(ms.fits(job, t) for ms in machines)

    def decide(self, t, due, pending, machines):
        decisions: dict[int, Decision] = {}
        # Plan on clones: the engine owns the real timelines and applies
        # the returned decisions itself.
        planning = [ms.clone() for ms in machines]
        due_sorted = sorted(due, key=lambda p: -p.job.processing)
        others = [
            p for p in pending if p.job.job_id not in {d.job.job_id for d in due}
        ]
        for item in due_sorted:
            job = item.job
            candidates = [ms for ms in planning if ms.fits(job, t)]
            if not candidates:
                decisions[job.job_id] = Decision.reject(reason="no fit")
                continue
            chosen = max(candidates, key=lambda ms: (ms.outstanding(t), -ms.index))
            if self.lookahead and others:
                # Would accepting this job starve a strictly bigger pending
                # job of its last feasible machine?
                trial_machine = chosen.clone()
                trial_machine.commit(job, trial_machine.append_start(job, t))
                trial = [
                    trial_machine if ms is chosen else ms for ms in planning
                ]
                starved = [
                    o
                    for o in others
                    if o.job.processing > job.processing
                    and self._fits_anywhere(o.job, t, planning)
                    and not self._fits_anywhere(o.job, t, trial)
                ]
                if starved:
                    decisions[job.job_id] = Decision.reject(
                        reason="yielding to pending", yielded_to=starved[0].job.job_id
                    )
                    continue
            start = chosen.append_start(job, t)
            decisions[job.job_id] = Decision.accept(machine=chosen.index, start=start)
            chosen.commit(job, start)  # keep the plan current for this event
        return decisions
