"""Decision traces.

Every simulation records one :class:`DecisionRecord` per submission: the
job, the decision, and a snapshot of the per-machine outstanding loads at
decision time.  Traces power the audit layer (irrevocability and Claim 1
checks), the Fig. 2 decision-tree reproduction, and debugging output in the
examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from repro.engine.policy import Decision
from repro.model.job import Job


@dataclass(frozen=True, slots=True)
class DecisionRecord:
    """One submission and its immediate, irrevocable outcome."""

    seq: int
    time: float
    job: Job
    decision: Decision
    loads_before: tuple[float, ...]

    @property
    def accepted(self) -> bool:
        """Whether the job was admitted."""
        return self.decision.accepted

    def summary(self) -> str:
        """Single-line rendering for logs and the examples."""
        verdict = (
            f"accept -> m{self.decision.machine} @ {self.decision.start:g}"
            if self.decision.accepted
            else "reject"
        )
        extra = ""
        if "d_lim" in self.decision.info:
            extra = f" (d_lim={self.decision.info['d_lim']:g})"
        return (
            f"[{self.seq:4d}] t={self.time:g} job {self.job.job_id} "
            f"(p={self.job.processing:g}, d={self.job.deadline:g}): {verdict}{extra}"
        )


@dataclass
class TraceRecorder:
    """Append-only container of decision records for one run."""

    records: list[DecisionRecord] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    def record(
        self,
        time: float,
        job: Job,
        decision: Decision,
        loads_before: Sequence[float],
    ) -> DecisionRecord:
        """Append a record and return it."""
        rec = DecisionRecord(
            seq=len(self.records),
            time=time,
            job=job,
            decision=decision,
            loads_before=tuple(loads_before),
        )
        self.records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[DecisionRecord]:
        return iter(self.records)

    def accepted(self) -> list[DecisionRecord]:
        """Records of accepted jobs."""
        return [r for r in self.records if r.accepted]

    def rejected(self) -> list[DecisionRecord]:
        """Records of rejected jobs."""
        return [r for r in self.records if not r.accepted]

    def acceptance_by_job(self) -> dict[int, bool]:
        """Map from job id to acceptance verdict."""
        return {r.job.job_id: r.accepted for r in self.records}

    def render(self) -> str:
        """Multi-line rendering of the whole trace."""
        return "\n".join(r.summary() for r in self.records)
