"""Optional numba-jitted inner loop for the immediate-model batch kernel.

The SoA step loop of :mod:`repro.engine.batch` is NumPy-vectorised across
lanes, which leaves one Python-level iteration per submission.  When numba
is installed, the identical loop can run jit-compiled instead: request it
with ``REPRO_NUMBA=1`` in the environment or
``ExecutionPolicy(jit=True)`` (which exports the variable to sweep
workers).  The contract is unchanged — the compiled kernel executes the
same IEEE-754 operations in the same order as the NumPy path (and hence as
the scalar kernel), so all three produce bit-identical schedules; the CI
``numba`` job re-runs the backend-equivalence CSV diff under
``REPRO_NUMBA=1`` to pin that.

When numba is *absent* but the flag is set, the kernel falls back to the
NumPy path loudly with a
:class:`~repro.engine.backend.BackendFallbackWarning` — never silently, so
a mis-provisioned worker fleet cannot fake a jit benchmark.

The kernel body (:func:`_step_kernel`) is deliberately a plain Python
function using only loops and scalar arithmetic: the test suite executes
it *uncompiled* to pin its bit-identity against the scalar kernel even in
environments without numba, and ``numba.njit`` compiles the very same
object when available (``fastmath`` stays off — reassociation would break
bit-identity).
"""

from __future__ import annotations

import os
import warnings
from typing import Any

import numpy as np

#: Environment flag that requests the jit-compiled inner loop.
JIT_ENV = "REPRO_NUMBA"

_TRUTHY = {"1", "true", "yes", "on"}

#: Admission / allocation codes shared by the wrapper and the kernel.
ADMISSION_CODES = {"threshold": 0, "greedy": 1, "lee": 2, "random": 3}
ALLOCATION_CODES = {
    "best-fit": 0,
    "worst-fit": 1,
    "least-loaded": 1,
    "first-fit": 2,
    "class": 3,
}

_numba_probe: bool | None = None
_compiled: Any = None


def jit_requested() -> bool:
    """Whether the environment asks for the jit kernel (``REPRO_NUMBA``)."""
    return os.environ.get(JIT_ENV, "").strip().lower() in _TRUTHY


def numba_available() -> bool:
    """Whether numba can be imported (probed once per process)."""
    global _numba_probe
    if _numba_probe is None:
        try:
            import numba  # noqa: F401

            _numba_probe = True
        except ImportError:
            _numba_probe = False
    return _numba_probe


def jit_active() -> bool:
    """Whether the batch kernel should take the jit path *right now*.

    Requested-but-unavailable warns (:class:`BackendFallbackWarning`) and
    returns ``False`` — the loud fallback the docs promise.  Python's
    default warning filter collapses repeats, so a long sweep warns once.
    """
    if not jit_requested():
        return False
    if not numba_available():
        from repro.engine.backend import BackendFallbackWarning

        warnings.warn(
            BackendFallbackWarning(
                f"{JIT_ENV}=1 requests the numba-jitted batch kernel but "
                "numba is not installed; falling back to the NumPy kernel "
                "(results are identical, throughput is not)"
            ),
            stacklevel=2,
        )
        return False
    return True


def _step_kernel(rel, proc, dl, m, adm, alloc, f_pad, kvec, targets, q, draws):
    """The immediate-model step loop, one (job, lane) pair at a time.

    Mirrors :func:`repro.engine.batch._simulate` operand-for-operand:
    bisect-pointer outstanding loads with inline ``snap``, frontier fits
    via ``fge``, threshold ``d_lim`` as max over rank-paired products
    (sort order cannot change the product multiset), first-occurrence
    argmax/argmin tie-breaking, per-lane RNG stream pointers.  Returns the
    SoA outputs plus the job index of a Claim-1 violation (-1 if none) so
    the compiled code stays exception-free.
    """
    b, n = rel.shape
    cap = n if n > 0 else 1
    bm = b * m
    starts = np.zeros((bm, cap))
    ends = np.zeros((bm, cap))
    prefix = np.zeros((bm, cap + 1))
    cnt = np.zeros(bm, dtype=np.int64)
    ptr = np.zeros(bm, dtype=np.int64)
    dptr = np.zeros(b, dtype=np.int64)
    acc = np.zeros((b, n), dtype=np.bool_)
    mach = np.zeros((b, n), dtype=np.int64)
    startv = np.zeros((b, n))
    loads = np.zeros(m)
    frontier = np.zeros(m)
    fits = np.zeros(m, dtype=np.bool_)
    sorted_loads = np.zeros(m)
    eps = 1e-9
    need_loads = not (adm == 2 and alloc == 3)

    for s in range(n):
        for i in range(b):
            t = rel[i, s]
            p = proc[i, s]
            d = dl[i, s]
            anyfit = False
            for h in range(m):
                r = i * m + h
                c = cnt[r]
                if need_loads:
                    j = ptr[r]
                    while j < c and ends[r, j] <= t:
                        j += 1
                    ptr[r] = j
                    if j < c:
                        sj = starts[r, j]
                        mx = sj if sj > t else t
                        load = (ends[r, j] - mx) + (prefix[r, c] - prefix[r, j + 1])
                        if abs(load) <= eps:
                            load = 0.0
                        loads[h] = load
                    else:
                        loads[h] = 0.0
                if c > 0:
                    le = ends[r, c - 1]
                    frontier[h] = le if le > t else t
                else:
                    frontier[h] = t if t > 0.0 else 0.0
                fit = d >= frontier[h] + p - eps
                fits[h] = fit
                if fit:
                    anyfit = True

            if adm == 0:  # threshold
                for h in range(m):
                    sorted_loads[h] = loads[h]
                for a in range(1, m):  # insertion sort, descending
                    v = sorted_loads[a]
                    w = a - 1
                    while w >= 0 and sorted_loads[w] < v:
                        sorted_loads[w + 1] = sorted_loads[w]
                        w -= 1
                    sorted_loads[w + 1] = v
                best = -np.inf
                for h in range(kvec[i] - 1, m):
                    v = sorted_loads[h] * f_pad[i, h]
                    if v > best:
                        best = v
                ok = d >= (t + best) - eps
                if ok and not anyfit:
                    return acc, mach, startv, starts, ends, cnt, s
            elif adm == 2:  # lee size classes
                ok = fits[targets[i, s]]
            elif adm == 3:  # random admission (draw gated on anyfit)
                if anyfit:
                    ok = draws[dptr[i]] < q
                    dptr[i] += 1
                else:
                    ok = False
            else:  # greedy
                ok = anyfit
            if not ok:
                continue

            if alloc == 3:  # class: pinned to the size-class machine
                choice = targets[i, s]
            elif alloc == 0:  # best-fit: first-occurrence argmax of loads
                choice = 0
                best = -np.inf
                for h in range(m):
                    v = loads[h] if fits[h] else -np.inf
                    if v > best:
                        best = v
                        choice = h
            elif alloc == 1:  # worst-fit / least-loaded: argmin
                choice = 0
                best = np.inf
                for h in range(m):
                    v = loads[h] if fits[h] else np.inf
                    if v < best:
                        best = v
                        choice = h
            else:  # first-fit
                choice = 0
                for h in range(m):
                    if fits[h]:
                        choice = h
                        break

            r = i * m + choice
            c = cnt[r]
            st = frontier[choice]
            starts[r, c] = st
            ends[r, c] = st + p
            prefix[r, c + 1] = prefix[r, c] + p
            cnt[r] = c + 1
            acc[i, s] = True
            mach[i, s] = choice
            startv[i, s] = st

    return acc, mach, startv, starts, ends, cnt, -1


def _compiled_kernel():
    """Compile :func:`_step_kernel` once per process."""
    global _compiled
    if _compiled is None:
        import numba

        _compiled = numba.njit(cache=False, fastmath=False)(_step_kernel)
    return _compiled


def simulate_jit(
    rel: np.ndarray,
    proc: np.ndarray,
    dl: np.ndarray,
    m: int,
    admission: str,
    allocation: str,
    *,
    f_pad: np.ndarray | None = None,
    kvec: np.ndarray | None = None,
    targets: np.ndarray | None = None,
    q: float = 0.0,
    draws: np.ndarray | None = None,
    kernel: Any = None,
) -> tuple[np.ndarray, ...]:
    """Run the step loop through the compiled kernel; same outputs as NumPy.

    ``kernel`` overrides the compiled function — the test suite passes the
    *uncompiled* :func:`_step_kernel` to pin the loop body's bit-identity
    without numba installed.
    """
    b, n = rel.shape
    if f_pad is None:
        f_pad = np.zeros((b, m))
    if kvec is None:
        kvec = np.ones(b, dtype=np.int64)
    if targets is None:
        targets = np.zeros((b, n), dtype=np.int64)
    if draws is None:
        draws = np.zeros(1)
    if kernel is None:
        kernel = _compiled_kernel()
    out = kernel(
        rel, proc, dl, m,
        ADMISSION_CODES[admission], ALLOCATION_CODES[allocation],
        f_pad, kvec, np.ascontiguousarray(targets), float(q),
        np.ascontiguousarray(draws, dtype=float),
    )
    acc, mach, startv, starts, ends, cnt, err = out
    if err >= 0:
        # Same message as the NumPy path's Claim-1 guard.
        raise AssertionError(
            f"job {err}: accepted by threshold but no machine can "
            "complete it — Claim 1 invariant broken"
        )
    return acc, mach, startv, starts, ends, cnt


__all__ = [
    "ADMISSION_CODES",
    "ALLOCATION_CODES",
    "JIT_ENV",
    "jit_active",
    "jit_requested",
    "numba_available",
    "simulate_jit",
]
