"""Vectorised batch kernel for the commitment-with-penalties model.

The scalar :class:`repro.engine.penalties.RevocableGreedyPolicy` spends its
time scanning per-machine plan gaps (latest-feasible-start placement) and
plan suffixes (profitable-swap revocation) in pure Python — the slowest row
of ``BENCH_engine.json`` by a wide margin.  This module keeps each
machine's tentative plans in sorted NumPy slabs (start / end / processing /
job-id arrays plus a live count) so both scans become a handful of
elementwise operations, while preserving **bit-identity** with the scalar
engine:

* Gap scan: the candidate start of gap *g* is ``min(d, upper_g) - p`` and
  its floor is ``max(edge_g, earliest)`` — exactly the scalar fold's
  operands.  The fold's result equals the max over valid candidate starts
  whenever no valid gap is *tight* (candidate below its floor within
  ``TIME_EPS``); in the rare tight case the scalar fold is replayed
  verbatim in Python.  Small plan sets skip NumPy entirely and run the
  verbatim fold (identical by construction, faster below ~16 plans).
* Started plans form a *prefix* of the start-sorted slab (``started(t)`` is
  monotone in the start), so the swap rule's removable set is always a
  suffix — revocation truncates the slab, no compaction needed.
* Insertion uses ``searchsorted(..., side="right")``, reproducing Python's
  stable ``sorted(plans, key=start)`` order for equal starts (later
  insertion sorts after).
* All engine-side plan validation (`_validate_plan` in
  :mod:`repro.engine.penalties`) that can fire is replicated with the same
  :class:`~repro.engine.kernel.SimulationError` messages.

Sums that feed decisions or reported loads use Python's left-fold ``sum``
over the same operand order as the scalar engine — never ``np.sum``, whose
pairwise summation rounds differently.
"""

from __future__ import annotations

import time

import numpy as np

from repro.engine.kernel import MAX_KERNEL_STEPS, RunStats, SimulationError
from repro.engine.penalties import PenaltyOutcome, PlannedJob
from repro.model.instance import Instance
from repro.utils.tolerances import TIME_EPS, fge

#: Engine-level default penalty factor for the registry's
#: ``revocable-greedy`` entry (matches bench E13/E16 conventions).
DEFAULT_PHI = 0.5

#: Below this many plans the verbatim Python fold beats the NumPy version.
_SMALL_FOLD = 16

_MODEL = "commitment-with-penalties"
_ALGORITHM = "revocable-greedy"


def _latest_start_exact(d, p, earliest, edges, uppers):
    """Verbatim replica of ``RevocableGreedyPolicy._latest_start``."""
    best = None
    for lo, hi in zip(edges, uppers):
        lo = max(lo, earliest)
        start = min(d, hi) - p
        if start >= lo - TIME_EPS and fge(d, start + p):
            if best is None or start > best:
                best = max(start, lo)
    return best


def _latest_start(d, p, earliest, s_row, e_row, count, scratch=None):
    """Latest feasible start against the first *count* slab plans."""
    if count > 0:
        # O(1) fast path: when the unbounded gap after the last plan admits
        # ``d - p`` with at least TIME_EPS to spare, it is the fold's
        # winner.  Proof sketch: starts are sorted and positive-length
        # plans don't overlap, so every earlier gap's candidate start
        # ``min(d, s_g) - p`` is strictly below ``lo_last``, hence both its
        # raw start and its clamped floor (raw + at most TIME_EPS) stay
        # strictly below ``d - p`` — no earlier gap can outscore or mask
        # the last one.
        lo_last = max(float(e_row[count - 1]), earliest)
        cand = d - p
        if cand >= lo_last + TIME_EPS and fge(d, cand + p):
            return cand
    if count <= _SMALL_FOLD:
        edges = [earliest] + e_row[:count].tolist()
        uppers = s_row[:count].tolist() + [float("inf")]
        return _latest_start_exact(d, p, earliest, edges, uppers)
    if scratch is None:
        scratch = np.empty((2, count + 1))
    starts = scratch[0, : count + 1]
    lows = scratch[1, : count + 1]
    np.minimum(d, s_row[:count], out=starts[:count])
    starts[:count] -= p
    starts[count] = d - p
    lows[0] = earliest
    lows[1:] = e_row[:count]
    np.maximum(lows, earliest, out=lows)
    # The deadline re-check is not redundant: ``(min(d, hi) - p) + p`` can
    # round above ``d`` at large magnitudes, and the scalar fold tests it.
    valid = fge(starts, lows) & fge(d, starts + p)
    if not valid.any():
        return None
    if bool(np.any(valid & (starts < lows))):
        # A tight gap (candidate within TIME_EPS below its floor) makes the
        # scalar fold's running max depend on clamped values; replay it.
        edges = [earliest] + e_row[:count].tolist()
        uppers = s_row[:count].tolist() + [float("inf")]
        return _latest_start_exact(d, p, earliest, edges, uppers)
    return float(starts[valid].max())


class _MachineSlab:
    """Start-sorted plan arrays for one machine."""

    __slots__ = ("starts", "ends", "procs", "ids", "count")

    def __init__(self, capacity: int) -> None:
        self.starts = np.zeros(capacity)
        self.ends = np.zeros(capacity)
        self.procs = np.zeros(capacity)
        self.ids = np.zeros(capacity, dtype=np.int64)
        self.count = 0

    def insert(self, start: float, p: float, jid: int) -> None:
        c = self.count
        pos = int(np.searchsorted(self.starts[:c], start, side="right"))
        if pos < c:
            self.starts[pos + 1 : c + 1] = self.starts[pos:c].copy()
            self.ends[pos + 1 : c + 1] = self.ends[pos:c].copy()
            self.procs[pos + 1 : c + 1] = self.procs[pos:c].copy()
            self.ids[pos + 1 : c + 1] = self.ids[pos:c].copy()
        self.starts[pos] = start
        self.ends[pos] = start + p
        self.procs[pos] = p
        self.ids[pos] = jid
        self.count = c + 1


def _fail(message: str, jid: int, t: float) -> None:
    raise SimulationError(message, model=_MODEL, job_id=jid, time=t)


def _check_overlap(plans, instance, machine, start, end, jid, t) -> None:
    """Replicate `_validate_plan`'s overlap scan on a violation.

    Iterates the surviving-plan dict in insertion order (as the scalar
    engine does) so the reported conflicting job id is identical.
    """
    for rid, (g, st) in plans.items():
        other_end = st + instance[rid].processing
        if g == machine and (start < other_end - TIME_EPS and st < end - TIME_EPS):
            _fail(
                f"plan for job {jid} overlaps surviving plan {rid}",
                jid,
                t,
            )


def run_penalties_batch(
    instances: list[Instance],
    phi: float = DEFAULT_PHI,
    max_steps: int = MAX_KERNEL_STEPS,
) -> list[PenaltyOutcome]:
    """Revocable-greedy penalties runs for a batch of instances.

    Unlike the immediate batch kernel, the vectorisation here is *within*
    each instance (gap and suffix scans across a machine's plan slab);
    instances need not share a shape.
    """
    if phi < 0:
        raise ValueError(f"penalty factor must be non-negative, got {phi}")
    return [_run_one(inst, phi, max_steps) for inst in instances]


def _run_one(instance: Instance, phi: float, max_steps: int) -> PenaltyOutcome:
    jobs = instance.jobs
    m = instance.machines
    n = len(jobs)
    if n >= max_steps:
        raise SimulationError(
            f"kernel exceeded max_steps={max_steps} (non-terminating model?)",
            model=_MODEL,
        )

    t0 = time.perf_counter()
    slabs = [_MachineSlab(max(n, 1)) for _ in range(m)]
    scratch = np.empty((2, n + 1)) if n else None
    plans: dict[int, tuple[int, float]] = {}
    revoked: set[int] = set()
    rejected: set[int] = set()
    accepted = 0

    for job in jobs:
        t = job.release
        p = job.processing
        d = job.deadline
        jid = job.job_id

        # Phase 1 — plain placement: latest start over all machines, ties
        # to the lowest machine (strict > in the scalar scan).
        best_start = None
        best_machine = -1
        for g in range(m):
            slab = slabs[g]
            start = _latest_start(d, p, t, slab.starts, slab.ends, slab.count, scratch)
            if start is not None and (best_start is None or start > best_start):
                best_start = start
                best_machine = g
        if best_start is not None:
            end = best_start + p
            slab = slabs[best_machine]
            c = slab.count
            over = (best_start < slab.ends[:c] - TIME_EPS) & (
                slab.starts[:c] < end - TIME_EPS
            )
            if bool(over.any()):  # unreachable for a correct gap scan
                _check_overlap(plans, instance, best_machine, best_start, end, jid, t)
            slab.insert(best_start, p, jid)
            plans[jid] = (best_machine, best_start)
            accepted += 1
            continue

        # Phase 2 — profitable swap: drop the not-yet-started suffix of the
        # machine with the cheapest removable load.
        options = []
        for g in range(m):
            slab = slabs[g]
            c = slab.count
            if c == 0:
                continue
            n_started = int(np.count_nonzero(fge(t, slab.starts[:c])))
            if n_started == c:
                continue
            start = _latest_start(d, p, t, slab.starts, slab.ends, n_started, scratch)
            if start is None:
                continue
            cost = float(sum(slab.procs[n_started:c].tolist()))
            options.append((cost, g, start, n_started))
        placed = False
        if options:
            cost, g, start, n_started = min(options, key=lambda o: o[0])
            if p > (1.0 + phi) * cost + TIME_EPS:
                slab = slabs[g]
                for rid in slab.ids[n_started : slab.count].tolist():
                    del plans[rid]
                    revoked.add(rid)
                slab.count = n_started
                end = start + p
                over = (start < slab.ends[:n_started] - TIME_EPS) & (
                    slab.starts[:n_started] < end - TIME_EPS
                )
                if bool(over.any()):
                    _check_overlap(plans, instance, g, start, end, jid, t)
                slab.insert(start, p, jid)
                plans[jid] = (g, start)
                accepted += 1
                placed = True
        if not placed:
            rejected.add(jid)

    completed = {
        jid: PlannedJob(jobs[jid], machine, start)
        for jid, (machine, start) in plans.items()
    }
    outcome = PenaltyOutcome(
        instance=instance,
        algorithm=_ALGORITHM,
        phi=phi,
        completed=completed,
        revoked=revoked,
        rejected=rejected,
    )
    sim_seconds = time.perf_counter() - t0

    t1 = time.perf_counter()
    outcome.audit()
    audit_seconds = time.perf_counter() - t1

    outcome.meta["model"] = _MODEL
    outcome.meta["backend"] = "batch"
    outcome.meta["stats"] = RunStats(
        model=_MODEL,
        algorithm=_ALGORITHM,
        jobs=n,
        decisions=n,
        accepted=accepted,
        rejected=n - accepted,
        revoked=len(revoked),
        steps=n,
        accepted_load=float(outcome.completed_load),
        sim_seconds=sim_seconds,
        audit_seconds=audit_seconds,
    )
    return outcome


__all__ = ["DEFAULT_PHI", "run_penalties_batch"]
