"""Incremental admission control: one job in, one final decision out.

Every historical entrypoint of the engine (``simulate``, sweeps, the
batch backends) is run-to-completion over a frozen
:class:`~repro.model.instance.Instance`.  The paper's Threshold algorithm
is an *online admission controller*, though — in production it would sit
in a request loop: a job arrives, the controller answers commit/reject
immediately, and the committed machine state carries over to the next
request.  This module is that request loop, extracted from the kernel's
event loop as a facade:

* :func:`open_session` — build an :class:`AdmissionController` for a
  registry algorithm (or an explicit policy object) on ``machines``
  machines with slack ``epsilon``;
* :meth:`AdmissionController.offer` — submit one job, get the final
  :class:`~repro.engine.policy.Decision` back;
* :meth:`AdmissionController.snapshot` / :meth:`AdmissionController.restore`
  — JSON-safe state capture and deterministic-replay recovery;
* :meth:`AdmissionController.schedule` — the audited
  :class:`~repro.model.schedule.Schedule` over everything offered so far.

Bit-identity is the design contract, not an aspiration: the session drives
the *same* :class:`~repro.engine.simulator.ImmediateCommitmentModel`
strategy the batch path runs, one :meth:`~CommitmentModel.step` per
:meth:`offer`, against the same :class:`~repro.engine.kernel.KernelContext`
machinery.  Feeding a request log through a session and through
:func:`~repro.engine.simulator.simulate` therefore produces byte-identical
schedules and decision traces by construction — the suite pins it anyway
(``tests/serve/test_controller.py``), and ``repro serve`` builds its live
service plus crash recovery on top of exactly this guarantee.
"""

from __future__ import annotations

import time as _time
from collections import deque
from typing import Any, Iterable, Mapping, Sequence

from repro.engine.kernel import KernelContext, RunStats, SimulationError
from repro.engine.policy import Decision, JobSource, OnlinePolicy
from repro.engine.simulator import ImmediateCommitmentModel
from repro.model.job import Job
from repro.model.machine import MachineState
from repro.model.schedule import Schedule
from repro.utils.tolerances import TIME_EPS

__all__ = [
    "AdmissionController",
    "SnapshotMismatchError",
    "open_session",
]

#: Snapshot format version (bumped on incompatible layout changes).
SNAPSHOT_VERSION = 1


class SnapshotMismatchError(RuntimeError):
    """Replaying a snapshot produced a decision that differs from the record.

    Deterministic policies replay their request log to identical decisions;
    a divergence means the snapshot belongs to a different algorithm/seed
    (or the code changed behaviour between capture and restore) — silently
    continuing would split the served history from the recovered state.
    """


class _PushSource(JobSource):
    """A :class:`JobSource` fed one job at a time by the session.

    The immediate-commitment strategy pulls jobs and pushes decisions;
    this source turns that inside out so a caller can *offer* a job and
    collect the resulting decision synchronously.
    """

    def __init__(self, machines: int, epsilon: float, name: str = "") -> None:
        self._machines = machines
        self._epsilon = epsilon
        self._queue: deque[Job] = deque()
        self._decision: Decision | None = None
        self.name = name

    @property
    def machines(self) -> int:
        return self._machines

    @property
    def epsilon(self) -> float:
        return self._epsilon

    def push(self, job: Job) -> None:
        self._queue.append(job)

    def next_job(self) -> Job | None:
        return self._queue.popleft() if self._queue else None

    def observe(self, job: Job, decision: Decision) -> None:
        self._decision = decision

    def take_decision(self) -> Decision:
        decision = self._decision
        assert decision is not None, "no decision observed for the offered job"
        self._decision = None
        return decision


class AdmissionController:
    """A live, incremental admission session over committed machine state.

    One session is one continuous run of the immediate-commitment kernel
    strategy: machine timelines, the policy's private state and the
    decision trace persist across :meth:`offer` calls exactly as they
    would within a single :func:`~repro.engine.simulator.simulate` call.
    Sessions are single-writer — offers must be serialised by the caller
    (the asyncio server does this for free).

    Build sessions with :func:`open_session`; the constructor is the
    escape hatch for explicit policy objects (such sessions cannot
    :meth:`snapshot` unless given a registry ``algorithm`` name + kwargs
    that reconstruct the policy).
    """

    def __init__(
        self,
        policy: OnlinePolicy,
        machines: int,
        epsilon: float,
        *,
        algorithm: str | None = None,
        algorithm_kwargs: Mapping[str, Any] | None = None,
        name: str = "",
        max_jobs: int = 1_000_000,
    ) -> None:
        if machines < 1:
            raise ValueError(f"machines must be >= 1, got {machines}")
        if epsilon <= 0.0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self._algorithm = algorithm
        self._algorithm_kwargs = dict(algorithm_kwargs or {})
        self._source = _PushSource(machines, epsilon, name=name)
        self._model = ImmediateCommitmentModel(
            policy, self._source, max_jobs=max_jobs
        )
        self._stats = RunStats(model=self._model.model, algorithm=policy.name)
        self._ctx = KernelContext(model=self._model.model, stats=self._stats)
        self._model.begin(self._ctx)
        self._sim_seconds = 0.0
        self._closed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def algorithm(self) -> str:
        """Label of the policy driving the session."""
        return self._model.algorithm

    @property
    def machines(self) -> int:
        """Machine count of the session."""
        return self._source.machines

    @property
    def epsilon(self) -> float:
        """Declared slack of the session."""
        return self._source.epsilon

    @property
    def now(self) -> float:
        """Simulation clock: release date of the latest offered job."""
        return self._model.now

    @property
    def jobs(self) -> tuple[Job, ...]:
        """Every job offered so far, in submission order (ids assigned)."""
        return tuple(self._model.emitted)

    @property
    def decisions(self) -> list[Decision]:
        """Decisions in submission order (rebuilt from the trace)."""
        return [record.decision for record in self._model.recorder]

    @property
    def machine_states(self) -> Sequence[MachineState]:
        """The authoritative committed timelines (treat as read-only)."""
        return self._model.machines

    @property
    def accepted_load(self) -> float:
        """Total processing time of accepted jobs so far.

        Summed in acceptance order — the same order
        :attr:`~repro.model.schedule.Schedule.accepted_load` uses — so the
        float is bit-identical to the batch path's, not merely close.
        """
        emitted = self._model.emitted
        return float(
            sum(
                emitted[job_id].processing
                for job_id, assigned in self._model.decisions
                if assigned is not None
            )
        )

    def loads(self, t: float | None = None) -> list[float]:
        """Per-machine outstanding load at time *t* (default: now)."""
        at = self.now if t is None else t
        return [ms.outstanding(at) for ms in self._model.machines]

    def stats(self) -> RunStats:
        """Live counters of the session (same shape as a kernel run)."""
        stats = RunStats(model=self._model.model, algorithm=self._model.algorithm)
        decisions = self._model.decisions
        stats.jobs = len(self._model.emitted)
        stats.decisions = len(decisions)
        stats.accepted = sum(1 for _, a in decisions if a is not None)
        stats.rejected = stats.decisions - stats.accepted
        stats.steps = stats.decisions
        stats.accepted_load = self.accepted_load
        stats.sim_seconds = self._sim_seconds
        return stats

    # ------------------------------------------------------------------
    # The request loop
    # ------------------------------------------------------------------
    def offer(self, job: Job, t: float | None = None) -> Decision:
        """Submit one job; returns the final, irrevocable decision.

        ``t`` is the decision time and must equal the job's release date
        (pass ``t=None`` to use ``job.release``); offering a job released
        before the session clock raises
        :class:`~repro.engine.kernel.SimulationError`, exactly as the
        batch kernel would.  An accepted job is committed onto the live
        machine timelines before this returns.
        """
        if self._closed:
            raise SimulationError(
                "session is closed", model=self._model.model
            )
        if t is not None and abs(t - job.release) > TIME_EPS:
            raise SimulationError(
                f"offer time {t} disagrees with job release {job.release}",
                model=self._model.model,
                time=t,
            )
        self._source.push(job)
        t0 = _time.perf_counter()
        progressed = self._model.step(self._ctx)
        self._sim_seconds += _time.perf_counter() - t0
        assert progressed, "push source handed the kernel no job"
        return self._source.take_decision()

    def offer_many(self, jobs: Iterable[Job]) -> list[Decision]:
        """Offer several jobs in order; returns their decisions."""
        return [self.offer(job) for job in jobs]

    def close(self) -> Schedule:
        """Seal the session and return the final audited schedule."""
        schedule = self.schedule()
        self._closed = True
        return schedule

    # ------------------------------------------------------------------
    # Outcome (identical shape to the batch path)
    # ------------------------------------------------------------------
    def schedule(self) -> Schedule:
        """Audited :class:`Schedule` over everything offered so far.

        Runs the same finish/build/audit epilogue as
        :func:`~repro.engine.kernel.run_model`, so the result is
        byte-identical to :func:`~repro.engine.simulator.simulate` on the
        instance formed by the offered jobs — including ``meta["trace"]``
        and ``meta["stats"]`` counters (timings necessarily differ).
        """
        self._model.finish(self._ctx)
        outcome = self._model.build(self._ctx)
        t0 = _time.perf_counter()
        outcome.audit()
        stats = self.stats()
        stats.audit_seconds = _time.perf_counter() - t0
        meta = outcome.meta
        meta.setdefault("model", self._model.model)
        meta["stats"] = stats
        return outcome

    # ------------------------------------------------------------------
    # Snapshot / restore (deterministic replay)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-safe state capture: construction recipe + request log.

        Deterministic policies (every registry policy, including the
        seeded randomized ones) rebuild their exact private state by
        replaying the offered jobs in order, so the snapshot stores the
        request log plus the recorded decisions — :meth:`restore` replays
        and *verifies* each decision against the record.  Requires the
        session to have been opened by registry name
        (:func:`open_session`); ad-hoc policy objects carry arbitrary
        state the snapshot could not reconstruct.
        """
        if self._algorithm is None:
            raise ValueError(
                "snapshot() needs a registry algorithm name; open the "
                "session with open_session(algorithm, ...) instead of an "
                "ad-hoc policy object"
            )
        return {
            "version": SNAPSHOT_VERSION,
            "algorithm": self._algorithm,
            "kwargs": dict(self._algorithm_kwargs),
            "machines": self.machines,
            "epsilon": self.epsilon,
            "name": self._source.name,
            "max_jobs": self._model.max_jobs,
            "jobs": [job_to_payload(job) for job in self._model.emitted],
            "decisions": [
                decision_to_payload(record.decision)
                for record in self._model.recorder
            ],
        }

    @classmethod
    def restore(
        cls, snapshot: Mapping[str, Any], *, verify: bool = True
    ) -> "AdmissionController":
        """Rebuild a session from :meth:`snapshot` by deterministic replay.

        With ``verify=True`` (the default) every replayed decision is
        compared against the snapshot's record; a divergence raises
        :class:`SnapshotMismatchError` instead of silently forking the
        history.
        """
        version = snapshot.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported snapshot version {version!r} "
                f"(expected {SNAPSHOT_VERSION})"
            )
        session = open_session(
            snapshot["algorithm"],
            machines=int(snapshot["machines"]),
            epsilon=float(snapshot["epsilon"]),
            name=snapshot.get("name", ""),
            max_jobs=int(snapshot.get("max_jobs", 1_000_000)),
            **snapshot.get("kwargs", {}),
        )
        recorded = snapshot.get("decisions", [])
        for i, payload in enumerate(snapshot.get("jobs", [])):
            decision = session.offer(job_from_payload(payload))
            if verify and i < len(recorded):
                expected = recorded[i]
                got = decision_to_payload(decision)
                if got != expected:
                    raise SnapshotMismatchError(
                        f"replay diverged at job {i}: snapshot recorded "
                        f"{expected}, replay produced {got} — the snapshot "
                        "belongs to a different algorithm, seed or code "
                        "version"
                    )
        return session


def open_session(
    algorithm: str | OnlinePolicy,
    machines: int,
    epsilon: float,
    *,
    name: str = "",
    max_jobs: int = 1_000_000,
    **kwargs: Any,
) -> AdmissionController:
    """Open an incremental admission session (the facade entry point).

    ``algorithm`` is a registry name (``"threshold"``, ``"greedy"``, …)
    instantiated with ``**kwargs``, or an explicit
    :class:`~repro.engine.policy.OnlinePolicy` object (which forfeits
    :meth:`AdmissionController.snapshot` support).  Only non-preemptive
    immediate-commitment algorithms can serve a live request loop — the
    delayed/admission/penalties models defer or revoke decisions, so a
    synchronous ``offer -> final decision`` contract cannot hold for them
    and they are rejected with ``ValueError``.
    """
    if isinstance(algorithm, OnlinePolicy):
        if kwargs:
            raise ValueError(
                "keyword arguments only apply to registry algorithm names, "
                "not pre-built policy objects"
            )
        return AdmissionController(algorithm, machines, epsilon, name=name,
                                   max_jobs=max_jobs)
    from repro.baselines.registry import ALGORITHMS, make_algorithm

    spec = ALGORITHMS.get(algorithm)
    if spec is None:
        raise KeyError(
            f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHMS)}"
        )
    if spec.model != "nonpreemptive":
        immediate = sorted(
            n for n, s in ALGORITHMS.items() if s.model == "nonpreemptive"
        )
        raise ValueError(
            f"{algorithm!r} runs the {spec.model!r} commitment model, which "
            "cannot answer a live offer with a final decision; incremental "
            f"sessions support the immediate-commitment algorithms: {immediate}"
        )
    if spec.single_machine_only and machines != 1:
        raise ValueError(f"{algorithm!r} only runs on single-machine sessions")
    policy = make_algorithm(algorithm, **kwargs)
    return AdmissionController(
        policy,
        machines,
        epsilon,
        algorithm=algorithm,
        algorithm_kwargs=kwargs,
        name=name,
        max_jobs=max_jobs,
    )


# ---------------------------------------------------------------------------
# payload helpers (shared with the serve journal)
# ---------------------------------------------------------------------------


def job_to_payload(job: Job) -> list[Any]:
    """Compact JSON-safe form ``[release, processing, deadline, weight]``.

    Python's ``json`` emits shortest round-trip float literals, so the
    payload replays bit-identical — the property the serve journal's
    decision log and the snapshot both rely on.
    """
    return [job.release, job.processing, job.deadline, job.weight]


def job_from_payload(payload: Sequence[Any]) -> Job:
    """Inverse of :func:`job_to_payload` (job id reassigned on offer)."""
    if len(payload) not in (3, 4):
        raise ValueError(f"job payload must have 3 or 4 fields, got {payload!r}")
    weight = payload[3] if len(payload) == 4 else None
    return Job(
        float(payload[0]),
        float(payload[1]),
        float(payload[2]),
        weight=None if weight is None else float(weight),
    )


def decision_to_payload(decision: Decision) -> list[Any]:
    """Compact JSON-safe form ``[accepted, machine, start]`` (info dropped)."""
    return [bool(decision.accepted), decision.machine, decision.start]
