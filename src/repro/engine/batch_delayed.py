"""Flat batch kernels for the delayed and admission commitment models.

The delayed (:mod:`repro.engine.delayed`) and commitment-on-admission
(:mod:`repro.engine.admission`) engines run event loops whose state is a
*pending set* plus per-machine timelines — no cross-instance lockstep
exists (event times differ per instance), so unlike
:mod:`repro.engine.batch` these kernels vectorise *within* an instance:
each lane is an independent flat re-implementation that sheds the scalar
path's dominant overheads while replaying its float operations
operand-for-operand.

What the flat re-implementation removes, and why it stays bit-identical:

* **Machine clones** (delayed).  ``DelayedGreedyPolicy`` plans on
  ``MachineState.clone()`` copies and lets the engine re-apply the
  decisions — an O(commitments) copy of every machine at every event.
  But the planning clones receive exactly the commits that
  ``_apply`` later performs on the real timelines, in the same order, so
  a single authoritative state stepped *while deciding* goes through the
  identical sequence of float operations.
* **Object churn** (both).  ``Decision`` objects, ``KernelContext``
  dispatch and ``Job`` attribute walks are replaced by plain floats in
  local variables.  Comparisons keep the exact scalar forms
  (``fge(a, b)`` inlined as ``a >= b - TIME_EPS``; ``bisect_right`` as a
  monotone pointer — event time never decreases and commitments always
  append with ``end > t``).
* **Outstanding load** keeps ``MachineState.outstanding``'s operand
  order: ``snap((ends[j] - max(starts[j], t)) + (prefix[-1] -
  prefix[j+1]))``.

Counters match the scalar kernel exactly: ``steps`` is the number of
event-loop iterations (*not* the job count), ``decisions`` includes
expiries and end-of-stream unstartable rejections, and the schedules carry
the same ``meta`` keys (``delta`` for the delayed model, the model name
for admission).  The cross-backend suite (``tests/engine/test_backends.py``)
pins all of it, including golden traces.
"""

from __future__ import annotations

import time

from repro.engine.kernel import MAX_KERNEL_STEPS, RunStats, SimulationError
from repro.model.instance import Instance
from repro.model.schedule import Assignment, Schedule
from repro.utils.tolerances import TIME_EPS

#: Default ``slack_margin`` of :class:`AdmissionLazyPolicy`.
DEFAULT_SLACK_MARGIN = 10 * TIME_EPS

#: Admission-model algorithms this module covers.
ADMISSION_ALGORITHMS = ("admission-greedy", "admission-lazy")


class _FlatMachine:
    """Append-only committed timeline, operand-identical to MachineState.

    The delayed policy only ever appends (``start = max(max(t, r),
    frontier)`` is never below the last end), so the scalar machine's
    bisect/insert general case never triggers — plain list appends plus a
    monotone ``bisect_right`` pointer replay it exactly.
    """

    __slots__ = ("index", "starts", "ends", "prefix", "ptr")

    def __init__(self, index: int) -> None:
        self.index = index
        self.starts: list[float] = []
        self.ends: list[float] = []
        self.prefix: list[float] = [0.0]
        self.ptr = 0

    def advance(self, t: float) -> None:
        """Move the bisect_right(ends, t) pointer (t is non-decreasing)."""
        ends = self.ends
        j = self.ptr
        n = len(ends)
        while j < n and ends[j] <= t:
            j += 1
        self.ptr = j

    def outstanding(self, t: float) -> float:
        ends = self.ends
        n = len(ends)
        if n == 0:
            return 0.0
        j = self.ptr
        if j >= n:
            return 0.0
        sj = self.starts[j]
        mx = sj if sj > t else t
        load = (ends[j] - mx) + (self.prefix[n] - self.prefix[j + 1])
        return 0.0 if abs(load) <= TIME_EPS else load

    def frontier(self, t: float) -> float:
        ends = self.ends
        if ends:
            le = ends[-1]
            return le if le > t else t
        return t

    def append_start(self, t: float, release: float) -> float:
        base = t if t > release else release
        fr = self.frontier(t)
        return base if base > fr else fr

    def fits(self, t: float, release: float, proc: float, deadline: float) -> bool:
        return deadline >= self.append_start(t, release) + proc - TIME_EPS

    def commit(self, start: float, proc: float) -> None:
        self.starts.append(start)
        end = start + proc
        self.ends.append(end)
        self.prefix.append(self.prefix[-1] + proc)


def _steps_guard(steps: int, max_steps: int, model: str) -> None:
    if steps >= max_steps:
        raise SimulationError(
            f"kernel exceeded max_steps={max_steps} (non-terminating model?)",
            model=model,
        )


def _run_delayed_one(
    inst: Instance, delta: float, max_steps: int
) -> tuple[dict[int, Assignment], set[int], int, int]:
    """One delayed-greedy run; returns (assignments, rejected, jobs, steps)."""
    jobs = inst.jobs
    n = len(jobs)
    machines = [_FlatMachine(i) for i in range(inst.machines)]
    # pending: jid -> (release, proc, deadline, decision_deadline), in
    # insertion order (scalar iterates dict views the same way).
    pending: dict[int, tuple[float, float, float, float]] = {}
    assignments: dict[int, Assignment] = {}
    rejected: set[int] = set()
    fi = 0
    submitted = 0
    steps = 0

    while fi < n or pending:
        steps += 1
        _steps_guard(steps, max_steps, "delayed")
        # Next event: earlier of next release and earliest decision deadline.
        t = jobs[fi].release if fi < n else None
        if pending:
            dd_min = min(item[3] for item in pending.values())
            if t is None or dd_min < t:
                t = dd_min
        # Absorb all releases at or before t (JobFeed.take_released).
        while fi < n and jobs[fi].release <= t + TIME_EPS:
            job = jobs[fi]
            p = job.processing
            dd = job.release + delta * p
            ls = job.latest_start
            if ls < dd:
                dd = ls
            pending[job.job_id] = (job.release, p, job.deadline, dd)
            submitted += 1
            fi += 1

        due = [
            (jid, item)
            for jid, item in pending.items()
            if item[3] <= t + TIME_EPS
        ]
        if not due:
            continue

        for mach in machines:
            mach.advance(t)
        due_sorted = sorted(due, key=lambda pair: -pair[1][1])
        due_ids = {jid for jid, _ in due}
        others = [
            item for jid, item in pending.items() if jid not in due_ids
        ]
        for jid, (release, p, deadline, _dd) in due_sorted:
            candidates = [
                mach for mach in machines if mach.fits(t, release, p, deadline)
            ]
            if not candidates:
                del pending[jid]
                rejected.add(jid)
                continue
            chosen = max(
                candidates, key=lambda mach: (mach.outstanding(t), -mach.index)
            )
            if others:
                # One-step look-ahead: would this acceptance starve a
                # strictly bigger pending job of its last feasible slot?
                # Only the chosen machine's frontier changes in the trial.
                start = chosen.append_start(t, release)
                trial_end = start + p
                starved = False
                for o_release, o_p, o_deadline, _o_dd in others:
                    if o_p <= p:
                        continue
                    if not any(
                        mach.fits(t, o_release, o_p, o_deadline)
                        for mach in machines
                    ):
                        continue
                    # fits on the trial state?
                    trial_fits = False
                    for mach in machines:
                        if mach is chosen:
                            base = t if t > o_release else o_release
                            fr = trial_end if trial_end > t else t
                            st = base if base > fr else fr
                            if o_deadline >= st + o_p - TIME_EPS:
                                trial_fits = True
                                break
                        elif mach.fits(t, o_release, o_p, o_deadline):
                            trial_fits = True
                            break
                    if not trial_fits:
                        starved = True
                        break
                if starved:
                    del pending[jid]
                    rejected.add(jid)
                    continue
            start = chosen.append_start(t, release)
            assignments[jid] = Assignment(jid, chosen.index, start)
            chosen.commit(start, p)
            del pending[jid]

    return assignments, rejected, submitted, steps


def run_delayed_batch(
    instances: list[Instance],
    delta: float | None = None,
    max_steps: int = MAX_KERNEL_STEPS,
) -> list[Schedule]:
    """Batched ``delayed-greedy`` (look-ahead variant), bit-identical.

    ``delta=None`` resolves to each instance's slack, and an explicit
    value is clamped to it — the same normalisation
    :func:`repro.baselines.registry.run_algorithm` applies before calling
    ``simulate_delayed``.
    """
    schedules: list[Schedule] = []
    for inst in instances:
        eff_delta = inst.epsilon if delta is None else min(delta, inst.epsilon)
        if not 0.0 <= eff_delta <= inst.epsilon + TIME_EPS:
            # Same message as simulate_delayed's validation.
            raise ValueError(
                f"delta must lie in [0, epsilon={inst.epsilon}], got {eff_delta}"
            )
        t0 = time.perf_counter()
        assignments, rejected, submitted, steps = _run_delayed_one(
            inst, eff_delta, max_steps
        )
        sim_seconds = time.perf_counter() - t0
        schedule = Schedule(
            instance=inst,
            assignments=assignments,
            rejected=rejected,
            algorithm="delayed-greedy",
            meta={"delta": eff_delta, "model": "delayed", "backend": "batch"},
        )
        t1 = time.perf_counter()
        schedule.audit()
        audit_seconds = time.perf_counter() - t1
        schedule.meta["stats"] = RunStats(
            model="delayed",
            algorithm="delayed-greedy",
            jobs=submitted,
            decisions=len(assignments) + len(rejected),
            accepted=len(assignments),
            rejected=len(rejected),
            steps=steps,
            accepted_load=float(schedule.accepted_load),
            sim_seconds=sim_seconds,
            audit_seconds=audit_seconds,
        )
        schedules.append(schedule)
    return schedules


def _run_admission_one(
    inst: Instance,
    lazy: bool,
    slack_margin: float,
    max_steps: int,
) -> tuple[dict[int, Assignment], set[int], int, int]:
    """One admission run; returns (assignments, rejected, jobs, steps)."""
    jobs = inst.jobs
    n = len(jobs)
    machine_free = [0.0] * inst.machines
    # pending: jid -> (release, proc, latest_start), insertion-ordered.
    pending: dict[int, tuple[float, float, float]] = {}
    assignments: dict[int, Assignment] = {}
    rejected: set[int] = set()
    fi = 0
    submitted = 0
    steps = 0
    now = 0.0

    while fi < n or pending:
        steps += 1
        _steps_guard(steps, max_steps, "commitment-on-admission")

        # 1) absorb all releases at or before `now`.
        while fi < n and jobs[fi].release <= now + TIME_EPS:
            job = jobs[fi]
            pending[job.job_id] = (job.release, job.processing, job.latest_start)
            submitted += 1
            fi += 1

        # 2) decisive expiry against the earliest machine-free time.
        earliest_free = min(machine_free)
        horizon = now if now > earliest_free else earliest_free
        cutoff = horizon - TIME_EPS
        expired = [jid for jid, item in pending.items() if item[2] < cutoff]
        for jid in expired:
            rejected.add(jid)
            del pending[jid]

        # 3) start jobs on idle machines at the current instant (fixpoint).
        while pending:
            idle = -1
            for i, f in enumerate(machine_free):
                if f <= now + TIME_EPS:
                    idle = i
                    break
            if idle < 0:
                break
            floor = now - TIME_EPS
            best_jid = -1
            best_p = 0.0
            edge = 0.0
            have_edge = False
            for jid, (release, p, ls) in pending.items():
                if ls >= floor:  # fge(latest_start, now)
                    if not have_edge or ls < edge:
                        edge = ls
                        have_edge = True
                    # max(startable, key=(processing, -job_id)): strictly
                    # greater processing wins; ties keep the smaller id
                    # (insertion order is id order within an instance).
                    if best_jid < 0 or p > best_p or (p == best_p and jid < best_jid):
                        best_jid = jid
                        best_p = p
            if best_jid < 0:
                break
            if lazy and edge > now + slack_margin:
                break  # nothing is forced yet: keep waiting
            release = pending[best_jid][0]
            start = now if now > release else release
            assignments[best_jid] = Assignment(best_jid, idle, start)
            machine_free[idle] = start + best_p
            del pending[best_jid]

        # 4) advance to the next strictly-future event.
        nxt = None
        if fi < n:
            nxt = jobs[fi].release
            if nxt <= now + TIME_EPS:
                nxt = None
        for f in machine_free:
            if f > now + TIME_EPS and (nxt is None or f < nxt):
                nxt = f
        for _release, _p, ls in pending.values():
            if ls > now + TIME_EPS and (nxt is None or ls < nxt):
                nxt = ls
        if nxt is not None:
            now = nxt
        elif pending:
            # Nothing will ever change: remaining pending jobs are
            # un-startable — reject them and finish.
            for jid in list(pending):
                rejected.add(jid)
                del pending[jid]

    return assignments, rejected, submitted, steps


def run_admission_batch(
    instances: list[Instance],
    algorithm: str = "admission-greedy",
    slack_margin: float = DEFAULT_SLACK_MARGIN,
    max_steps: int = MAX_KERNEL_STEPS,
) -> list[Schedule]:
    """Batched commitment-on-admission runs, bit-identical to scalar.

    ``algorithm`` selects :class:`AdmissionGreedyPolicy`
    (``"admission-greedy"``) or :class:`AdmissionLazyPolicy`
    (``"admission-lazy"``, honouring ``slack_margin``).  Both policies pick
    ``max(startable, key=(processing, -job_id))``; lazy additionally waits
    until some startable job's latest start is within ``slack_margin`` of
    the clock.
    """
    if algorithm not in ADMISSION_ALGORITHMS:
        raise ValueError(
            f"unknown admission algorithm {algorithm!r}; "
            f"known: {list(ADMISSION_ALGORITHMS)}"
        )
    lazy = algorithm == "admission-lazy"
    schedules: list[Schedule] = []
    for inst in instances:
        t0 = time.perf_counter()
        assignments, rejected, submitted, steps = _run_admission_one(
            inst, lazy, slack_margin, max_steps
        )
        sim_seconds = time.perf_counter() - t0
        schedule = Schedule(
            instance=inst,
            assignments=assignments,
            rejected=rejected,
            algorithm=algorithm,
            meta={"model": "commitment-on-admission", "backend": "batch"},
        )
        t1 = time.perf_counter()
        schedule.audit()
        audit_seconds = time.perf_counter() - t1
        schedule.meta["stats"] = RunStats(
            model="commitment-on-admission",
            algorithm=algorithm,
            jobs=submitted,
            decisions=len(assignments) + len(rejected),
            accepted=len(assignments),
            rejected=len(rejected),
            steps=steps,
            accepted_load=float(schedule.accepted_load),
            sim_seconds=sim_seconds,
            audit_seconds=audit_seconds,
        )
        schedules.append(schedule)
    return schedules


__all__ = [
    "ADMISSION_ALGORITHMS",
    "DEFAULT_SLACK_MARGIN",
    "run_admission_batch",
    "run_delayed_batch",
]
