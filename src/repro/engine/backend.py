"""The kernel-backend seam: scalar golden path vs NumPy batch kernels.

Every simulation in this library can be expressed as a
:class:`SimulationRequest` (algorithm name + instance + kwargs) and routed
through :func:`run_simulations`, which dispatches to one of two
:class:`KernelBackend` implementations:

``scalar``
    Today's pure-Python event loop, completely untouched: requests are
    forwarded one-by-one to :func:`repro.baselines.registry.run_algorithm`
    and therefore through :func:`repro.engine.kernel.run_model`.  This is
    the golden reference every other backend is measured against.

``batch``
    Structure-of-arrays NumPy kernels (:mod:`repro.engine.batch` for the
    immediate model — including the randomized ``random-admission`` and
    ``classify-select`` via per-lane RNG-stream replay,
    :mod:`repro.engine.batch_delayed` for the delayed and
    commitment-on-admission models, :mod:`repro.engine.batch_penalties`
    for commitment with penalties) that step groups of compatible
    requests through vectorised decision rules.  The contract is
    *bit-identity*: schedules, ``RunStats`` counters and journal rows
    match the scalar backend exactly (asserted by
    ``tests/engine/test_backends.py``).  With ``REPRO_NUMBA=1`` and numba
    installed, the immediate-model inner loop runs jit-compiled
    (:mod:`repro.engine.jit`) — same contract, same bits.

``auto``
    Batch where it pays off, scalar everywhere else — see
    :data:`_AUTO_MIN_GROUP` and ``docs/engine_backends.md``.

Randomized algorithms carry their RNG seed inside the grouping key, so
two requests with different seeds can never share a lane row (they would
silently replay the wrong stream otherwise); live ``numpy.random.Generator``
objects are scalar-only because their mutable state cannot be replayed.

Unsupported algorithm/backend combinations never fail silently: under
``backend="batch"`` they fall back to scalar with a
:class:`BackendFallbackWarning`; under ``auto`` the fallback is the
expected behaviour and stays quiet.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

import numpy as np

from repro.engine.batch import DEFAULT_Q, DEFAULT_RANDOM_SEED, IMMEDIATE_RULES
from repro.engine.batch_delayed import ADMISSION_ALGORITHMS, DEFAULT_SLACK_MARGIN
from repro.engine.batch_penalties import DEFAULT_PHI
from repro.model.instance import Instance
from repro.utils.rng import DEFAULT_SEED

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.baselines.registry import RunResult

#: Valid values for every ``backend=`` argument in this library.
BACKEND_CHOICES = ("auto", "scalar", "batch")

#: Minimum compatible group size for ``auto`` to batch immediate-model
#: requests.  A single immediate run gains nothing from SoA layout (the
#: arrays hold one row), while the penalties/delayed/admission kernels win
#: *within* an instance and are worth batching even for a group of one.
_AUTO_MIN_GROUP = 2

#: Group-key kinds whose kernels vectorise *across* lanes and therefore
#: need at least :data:`_AUTO_MIN_GROUP` members under ``auto``.
_LANE_KINDS = ("immediate", "immediate-random", "classify")


def _seed_key(rng: Any) -> int | None:
    """Normalise an ``rng`` kwarg into a groupable seed, or ``None``.

    Mirrors :func:`repro.utils.rng.rng_from_any`: ``None`` means the
    library default seed, integers pass through.  Live ``Generator``
    objects (or anything else) return ``None`` — unsupported, because
    their mutable state cannot be replayed across lanes.
    """
    if rng is None:
        return DEFAULT_SEED
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        return int(rng)
    return None


class BackendFallbackWarning(UserWarning):
    """Emitted when an explicit ``backend="batch"`` request falls back."""


@dataclass(frozen=True)
class SimulationRequest:
    """One algorithm run: the unit of work the backend seam dispatches."""

    algorithm: str
    instance: Instance
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    record_events: bool = False


class KernelBackend:
    """Protocol for simulation backends.

    A backend advertises which requests it can serve (:meth:`supports`)
    and runs a sequence of them (:meth:`run_many`), returning
    :class:`~repro.baselines.registry.RunResult` objects in request order.
    """

    name: str = "backend"

    def supports(self, request: SimulationRequest) -> bool:
        raise NotImplementedError

    def run_many(self, requests: Sequence[SimulationRequest]) -> "list[RunResult]":
        raise NotImplementedError

    def run(self, request: SimulationRequest) -> "RunResult":
        return self.run_many([request])[0]


class ScalarBackend(KernelBackend):
    """The golden reference: per-request dispatch to the scalar kernel."""

    name = "scalar"

    def supports(self, request: SimulationRequest) -> bool:
        return True

    def run_many(self, requests: Sequence[SimulationRequest]) -> "list[RunResult]":
        from repro.baselines.registry import run_algorithm

        return [
            run_algorithm(
                r.algorithm,
                r.instance,
                record_events=r.record_events,
                **dict(r.kwargs),
            )
            for r in requests
        ]


class BatchBackend(KernelBackend):
    """Structure-of-arrays NumPy kernels for supported models."""

    name = "batch"

    def group_key(self, request: SimulationRequest) -> tuple | None:
        """Compatibility key, or ``None`` when the request is unsupported.

        Requests sharing a key can run through one batched kernel call.
        Immediate-model groups additionally share the (machines, jobs)
        shape so the SoA arrays stay rectangular, and randomized
        algorithms share the *seed* — mixed-seed requests must never share
        a pre-drawn lane row.  Penalties/delayed/admission groups share
        only their kwargs (those kernels loop per instance).  Event
        recording always falls back — the batch kernels do not replay
        per-decision event streams.
        """
        if request.record_events:
            return None
        kwargs = request.kwargs
        if request.algorithm in IMMEDIATE_RULES:
            if kwargs:
                return None
            rule = IMMEDIATE_RULES[request.algorithm]
            if rule.single_machine and request.instance.machines != 1:
                return None  # let the scalar registry raise its canonical error
            return (
                "immediate",
                request.algorithm,
                request.instance.machines,
                len(request.instance),
            )
        if request.algorithm == "random-admission":
            if set(kwargs) - {"q", "rng"}:
                return None
            seed = (
                _seed_key(kwargs["rng"]) if "rng" in kwargs else DEFAULT_RANDOM_SEED
            )
            if seed is None:
                return None
            return (
                "immediate-random",
                float(kwargs.get("q", DEFAULT_Q)),
                seed,
                request.instance.machines,
                len(request.instance),
            )
        if request.algorithm == "classify-select":
            if set(kwargs) - {"virtual_machines", "rng", "selected"}:
                return None
            if request.instance.machines != 1:
                return None  # scalar raises the canonical single-machine error
            seed = _seed_key(kwargs.get("rng"))
            if seed is None:
                return None
            selected = kwargs.get("selected")
            if selected is not None and not isinstance(selected, (int, np.integer)):
                return None
            virtual_m = kwargs.get("virtual_machines")
            if virtual_m is None:
                from repro.core.randomized import default_virtual_machines

                try:
                    virtual_m = default_virtual_machines(request.instance.epsilon)
                except ValueError:
                    return None
            return (
                "classify",
                int(virtual_m),
                None if selected is None else int(selected),
                seed,
                len(request.instance),
            )
        if request.algorithm == "delayed-greedy":
            if set(kwargs) - {"delta"}:
                return None
            delta = kwargs.get("delta")
            if delta is not None and not isinstance(delta, (int, float)):
                return None
            return ("delayed", None if delta is None else float(delta))
        if request.algorithm in ADMISSION_ALGORITHMS:
            allowed = {"slack_margin"} if request.algorithm == "admission-lazy" else set()
            if set(kwargs) - allowed:
                return None
            margin = kwargs.get("slack_margin", DEFAULT_SLACK_MARGIN)
            if not isinstance(margin, (int, float)):
                return None
            return ("admission", request.algorithm, float(margin))
        if request.algorithm == "revocable-greedy":
            if set(kwargs) - {"phi"}:
                return None
            return ("penalties", float(kwargs.get("phi", DEFAULT_PHI)))
        return None

    def supports(self, request: SimulationRequest) -> bool:
        return self.group_key(request) is not None

    def run_many(self, requests: Sequence[SimulationRequest]) -> "list[RunResult]":
        from repro.baselines.registry import RunResult
        from repro.engine.batch import (
            run_classify_select_batch,
            run_immediate_batch,
            run_random_admission_batch,
        )
        from repro.engine.batch_delayed import run_admission_batch, run_delayed_batch
        from repro.engine.batch_penalties import run_penalties_batch

        requests = list(requests)
        groups: dict[tuple, list[int]] = {}
        for i, request in enumerate(requests):
            key = self.group_key(request)
            if key is None:
                raise ValueError(
                    f"algorithm {request.algorithm!r} is not supported by the "
                    "batch backend; route through run_simulations() for "
                    "scalar fallback"
                )
            groups.setdefault(key, []).append(i)

        results: list[RunResult | None] = [None] * len(requests)
        for key, members in groups.items():
            kind = key[0]
            if kind == "penalties":
                outcomes = run_penalties_batch(
                    [requests[i].instance for i in members], phi=key[1]
                )
                for i, outcome in zip(members, outcomes):
                    results[i] = RunResult(
                        algorithm=requests[i].algorithm,
                        instance=outcome.instance,
                        accepted_load=outcome.completed_load,
                        accepted_count=len(outcome.completed),
                        detail=outcome,
                    )
                continue
            if kind == "immediate":
                rule = IMMEDIATE_RULES[key[1]]
                chunk = _chunk_size(key[2], key[3])
                runner = lambda insts, rule=rule: run_immediate_batch(rule, insts)
            elif kind == "immediate-random":
                chunk = _chunk_size(key[3], key[4])
                runner = lambda insts, k=key: run_random_admission_batch(
                    insts, q=k[1], rng=k[2]
                )
            elif kind == "classify":
                # Working set scales with the *virtual* machine count.
                chunk = _chunk_size(key[1], key[4])
                runner = lambda insts, k=key: run_classify_select_batch(
                    insts, virtual_machines=k[1], rng=k[3], selected=k[2]
                )
            elif kind == "delayed":
                chunk = len(members)  # per-instance loop: no SoA working set
                runner = lambda insts, k=key: run_delayed_batch(insts, delta=k[1])
            else:  # admission
                chunk = len(members)
                runner = lambda insts, k=key: run_admission_batch(
                    insts, algorithm=k[1], slack_margin=k[2]
                )
            for lo in range(0, len(members), chunk):
                sel = members[lo : lo + chunk]
                schedules = runner([requests[i].instance for i in sel])
                for i, schedule in zip(sel, schedules):
                    results[i] = RunResult(
                        algorithm=requests[i].algorithm,
                        instance=schedule.instance,
                        accepted_load=schedule.accepted_load,
                        accepted_count=schedule.accepted_count,
                        detail=schedule,
                    )
        return results  # type: ignore[return-value]


def _chunk_size(machines: int, jobs: int) -> int:
    """Bound SoA working-set memory: ~20M floats across the history slabs."""
    return max(1, min(512, 20_000_000 // max(1, machines * max(jobs, 1))))


_SCALAR = ScalarBackend()
_BATCH = BatchBackend()

#: Singleton backend instances by name (``auto`` is a dispatch policy, not
#: a backend, and is handled by :func:`run_simulations`).
BACKENDS: dict[str, KernelBackend] = {"scalar": _SCALAR, "batch": _BATCH}


def run_simulations(
    requests: Iterable[SimulationRequest], backend: str = "auto"
) -> "list[RunResult]":
    """Run *requests* through the selected backend; results in order.

    ``backend="scalar"`` forwards everything to the golden path.
    ``backend="batch"`` batches every supported request and falls back to
    scalar for the rest with a loud :class:`BackendFallbackWarning`.
    ``backend="auto"`` batches exactly where the batch kernel is expected
    to win (penalties/delayed/admission always — those kernels win within
    a single instance; immediate-model groups of at least
    ``_AUTO_MIN_GROUP`` compatible requests) and is silent about the rest.
    """
    if backend not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown backend {backend!r}: expected one of {BACKEND_CHOICES}"
        )
    requests = list(requests)
    if backend == "scalar" or not requests:
        return _SCALAR.run_many(requests)

    groups: dict[tuple, list[int]] = {}
    scalar_members: list[int] = []
    for i, request in enumerate(requests):
        key = _BATCH.group_key(request)
        if key is None:
            scalar_members.append(i)
        else:
            groups.setdefault(key, []).append(i)

    if backend == "batch" and scalar_members:
        names = sorted({requests[i].algorithm for i in scalar_members})
        warnings.warn(
            BackendFallbackWarning(
                f"{len(scalar_members)} request(s) not supported by the batch "
                f"backend (algorithms: {', '.join(names)}); falling back to "
                "the scalar kernel"
            ),
            stacklevel=2,
        )
    if backend == "auto":
        for key in list(groups):
            if key[0] in _LANE_KINDS and len(groups[key]) < _AUTO_MIN_GROUP:
                scalar_members.extend(groups.pop(key))

    results: list = [None] * len(requests)
    for key, members in groups.items():
        batch_results = _BATCH.run_many([requests[i] for i in members])
        for i, result in zip(members, batch_results):
            results[i] = result
    for i in sorted(scalar_members):
        results[i] = _SCALAR.run(requests[i])
    return results


def run_simulation(request: SimulationRequest, backend: str = "auto") -> "RunResult":
    """Single-request convenience wrapper over :func:`run_simulations`."""
    return run_simulations([request], backend=backend)[0]


__all__ = [
    "BACKEND_CHOICES",
    "BACKENDS",
    "BackendFallbackWarning",
    "BatchBackend",
    "KernelBackend",
    "ScalarBackend",
    "SimulationRequest",
    "run_simulation",
    "run_simulations",
]
