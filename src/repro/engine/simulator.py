"""The non-preemptive immediate-commitment engine, on the shared kernel.

In the paper's model nothing observable happens between submissions — the
committed timelines evolve deterministically — so the model is a strict
sequence of decision points, one per submitted job:

1. pull the next job from the source (adaptive sources may construct it
   from the decision history);
2. ask the policy for an irrevocable :class:`~repro.engine.policy.Decision`;
3. validate and apply the decision to the authoritative machine timelines
   (an invalid acceptance is a *policy bug* and raises
   :class:`~repro.engine.kernel.SimulationError` — the engine never
   silently repairs it);
4. feed the decision back to the source.

The event loop, validation, audit and observability live in
:mod:`repro.engine.kernel`; this module supplies the
:class:`ImmediateCommitmentModel` strategy and the historical
``simulate*`` entry points.  The returned
:class:`~repro.model.schedule.Schedule` is always audited before being
handed to the caller, so downstream analysis can trust Claim-1-style
invariants unconditionally.
"""

from __future__ import annotations

from typing import Iterable

from repro.engine.kernel import (
    CommitmentModel,
    KernelContext,
    SimulationError,
    commit_decision,
    run_model,
)
from repro.engine.policy import JobSource, OnlinePolicy, SequenceSource
from repro.engine.recorder import TraceRecorder
from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.machine import MachineState
from repro.model.schedule import Assignment, Schedule
from repro.utils.tolerances import TIME_EPS

__all__ = [
    "ImmediateCommitmentModel",
    "SimulationError",
    "simulate",
    "simulate_source",
    "simulate_many",
]


class ImmediateCommitmentModel(CommitmentModel):
    """Kernel strategy for the paper's immediate-commitment model.

    One kernel step per submission: the decision is final the moment it is
    returned, and accepted jobs are committed onto the authoritative
    :class:`~repro.model.machine.MachineState` timelines instantly (the
    ``O(m log n)`` fast path — per decision, one ``outstanding`` query per
    machine plus one bisection commit).
    """

    model = "immediate"

    def __init__(
        self,
        policy: OnlinePolicy,
        source: JobSource,
        recorder: TraceRecorder | None = None,
        max_jobs: int = 1_000_000,
    ) -> None:
        self.policy = policy
        self.source = source
        self.algorithm = policy.name
        self.recorder = recorder if recorder is not None else TraceRecorder()
        self.max_jobs = max_jobs
        self.machines: list[MachineState] = []
        self.emitted: list[Job] = []
        self.decisions: list[tuple[int, Assignment | None]] = []
        self.now = 0.0

    def begin(self, ctx: KernelContext) -> None:
        self.machines = [MachineState(i) for i in range(self.source.machines)]
        self.policy.reset(self.source.machines, self.source.epsilon)
        ctx.recorder = self.recorder

    def step(self, ctx: KernelContext) -> bool:
        # Hot path: one call per submission.  Attributes are hoisted to
        # locals; the loop itself lives in the kernel's ``run_model``.
        source = self.source
        raw = source.next_job()
        if raw is None:
            return False
        emitted = self.emitted
        if len(emitted) >= self.max_jobs:
            ctx.fail(f"source exceeded max_jobs={self.max_jobs}")
        job = raw.with_id(len(emitted))
        t = job.release
        if t < self.now - TIME_EPS:
            ctx.fail(
                f"job {job.job_id} released at {job.release} before current time {self.now}",
                job_id=job.job_id,
                time=self.now,
            )
        if t > self.now:
            self.now = t
        machines = self.machines
        loads_before = [ms.outstanding(t) for ms in machines]
        decision = self.policy.on_submission(job, t, machines)
        if decision.accepted:
            commit_decision(machines, job, t, decision.machine, decision.start, ctx)
            self.decisions.append(
                (job.job_id, Assignment(job.job_id, decision.machine, decision.start))
            )
        else:
            self.decisions.append((job.job_id, None))
        self.recorder.record(t, job, decision, loads_before)
        if ctx.events is not None:
            ctx.decided(t, job.job_id, decision.accepted, decision.machine, decision.start)
        emitted.append(job)
        source.observe(job, decision)
        return True

    def finish(self, ctx: KernelContext) -> None:
        self.source.finalize()
        stats = ctx.stats
        stats.jobs = len(self.emitted)
        if ctx.events is None:
            # Bulk accounting: the decision list already holds everything a
            # per-decision ``ctx.decided`` call would have counted.
            stats.decisions = len(self.decisions)
            stats.accepted = sum(1 for _, a in self.decisions if a is not None)
            stats.rejected = stats.decisions - stats.accepted

    def build(self, ctx: KernelContext) -> Schedule:
        instance = Instance(
            self.emitted,
            machines=self.source.machines,
            epsilon=self.source.epsilon,
            name=getattr(self.source, "name", ""),
        )
        return Schedule.from_decisions(
            instance, self.decisions, algorithm=self.policy.name, meta={"trace": self.recorder}
        )


def simulate_source(
    policy: OnlinePolicy,
    source: JobSource,
    recorder: TraceRecorder | None = None,
    max_jobs: int = 1_000_000,
    record_events: bool = False,
) -> Schedule:
    """Run *policy* against the (possibly adaptive) *source* on the kernel.

    Returns an audited schedule over the instance the source actually
    emitted, carrying ``meta["trace"]`` (per-submission decision records),
    ``meta["stats"]`` (kernel run statistics) and — with
    ``record_events=True`` — ``meta["events"]``.  ``max_jobs`` guards
    against non-terminating adaptive sources.
    """
    model = ImmediateCommitmentModel(policy, source, recorder=recorder, max_jobs=max_jobs)
    return run_model(model, record_events=record_events)


def simulate(
    policy: OnlinePolicy,
    instance: Instance,
    recorder: TraceRecorder | None = None,
    record_events: bool = False,
) -> Schedule:
    """Run *policy* over a fixed *instance* (non-adaptive convenience)."""
    schedule = simulate_source(
        policy, SequenceSource(instance), recorder=recorder, record_events=record_events
    )
    # Preserve the caller's instance object (ids match by construction).
    schedule.instance = instance
    return schedule


def simulate_many(
    policy: OnlinePolicy, instances: Iterable[Instance]
) -> list[Schedule]:
    """Run *policy* over several instances, resetting between runs."""
    return [simulate(policy, inst) for inst in instances]
