"""The non-preemptive online simulation loop.

In the paper's model nothing observable happens between submissions — the
committed timelines evolve deterministically — so the simulator is a strict
loop over jobs in submission order:

1. pull the next job from the source (adaptive sources may construct it
   from the decision history);
2. ask the policy for an irrevocable :class:`~repro.engine.policy.Decision`;
3. validate and apply the decision to the authoritative machine timelines
   (an invalid acceptance is a *policy bug* and raises
   :class:`SimulationError` — the engine never silently repairs it);
4. feed the decision back to the source.

The returned :class:`~repro.model.schedule.Schedule` is always audited
before being handed to the caller, so downstream analysis can trust
Claim-1-style invariants unconditionally.
"""

from __future__ import annotations

from typing import Iterable

from repro.engine.policy import Decision, JobSource, OnlinePolicy, SequenceSource
from repro.engine.recorder import TraceRecorder
from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.machine import MachineState
from repro.model.schedule import Assignment, Schedule
from repro.utils.tolerances import TIME_EPS, fge


class SimulationError(RuntimeError):
    """A policy produced an invalid decision (infeasible or out of range)."""


def _apply_decision(
    machines: list[MachineState], job: Job, t: float, decision: Decision
) -> None:
    """Validate and commit an acceptance onto the authoritative timelines."""
    m_idx = decision.machine
    start = decision.start
    assert m_idx is not None and start is not None  # guaranteed by Decision
    if not 0 <= m_idx < len(machines):
        raise SimulationError(
            f"job {job.job_id}: machine index {m_idx} out of range [0, {len(machines)})"
        )
    if not fge(start, t):
        raise SimulationError(
            f"job {job.job_id}: committed start {start} lies before decision time {t}"
        )
    try:
        machines[m_idx].commit(job, start)
    except ValueError as exc:
        raise SimulationError(str(exc)) from exc


def simulate_source(
    policy: OnlinePolicy,
    source: JobSource,
    recorder: TraceRecorder | None = None,
    max_jobs: int = 1_000_000,
) -> Schedule:
    """Run *policy* against the (possibly adaptive) *source*.

    Returns an audited schedule over the instance the source actually
    emitted.  ``max_jobs`` guards against non-terminating adaptive sources.
    """
    m = source.machines
    epsilon = source.epsilon
    machines = [MachineState(i) for i in range(m)]
    recorder = recorder if recorder is not None else TraceRecorder()
    policy.reset(m, epsilon)

    emitted: list[Job] = []
    decisions: list[tuple[int, Assignment | None]] = []
    now = 0.0
    while True:
        raw = source.next_job()
        if raw is None:
            break
        if len(emitted) >= max_jobs:
            raise SimulationError(f"source exceeded max_jobs={max_jobs}")
        job = raw.with_id(len(emitted))
        if job.release < now - TIME_EPS:
            raise SimulationError(
                f"job {job.job_id} released at {job.release} before current time {now}"
            )
        now = max(now, job.release)
        t = job.release
        loads_before = [ms.outstanding(t) for ms in machines]
        decision = policy.on_submission(job, t, machines)
        if decision.accepted:
            _apply_decision(machines, job, t, decision)
            decisions.append((job.job_id, Assignment(job.job_id, decision.machine, decision.start)))
        else:
            decisions.append((job.job_id, None))
        recorder.record(t, job, decision, loads_before)
        emitted.append(job)
        source.observe(job, decision)
    source.finalize()

    instance = Instance(emitted, machines=m, epsilon=epsilon, name=getattr(source, "name", ""))
    schedule = Schedule.from_decisions(
        instance, decisions, algorithm=policy.name, meta={"trace": recorder}
    )
    schedule.audit()
    return schedule


def simulate(
    policy: OnlinePolicy,
    instance: Instance,
    recorder: TraceRecorder | None = None,
) -> Schedule:
    """Run *policy* over a fixed *instance* (non-adaptive convenience)."""
    schedule = simulate_source(policy, SequenceSource(instance), recorder=recorder)
    # Preserve the caller's instance object (ids match by construction).
    schedule.instance = instance
    return schedule


def simulate_many(
    policy: OnlinePolicy, instances: Iterable[Instance]
) -> list[Schedule]:
    """Run *policy* over several instances, resetting between runs."""
    return [simulate(policy, inst) for inst in instances]
