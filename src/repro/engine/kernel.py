"""The shared simulation kernel behind every commitment-model engine.

The paper's §1 taxonomy spans five machine models — immediate commitment,
δ-delayed commitment, commitment on admission, commitment with penalties
and the preemptive immediate-notification model.  Their *policies* differ
radically, but the simulation machinery does not: every engine advances an
event clock, asks a strategy to process decision points, validates the
resulting commitments, audits the outcome, and should expose the same
observability surface.  This module owns that machinery once:

* :func:`run_model` — the single event loop.  Engines are
  :class:`CommitmentModel` strategy objects that process one decision point
  per :meth:`~CommitmentModel.step`; the kernel owns every ``while``.
* :class:`SimulationError` — the unified error taxonomy.  Every invalid
  *policy* decision, in every model, raises this one type with the same
  diagnostic shape (``model``, ``job_id``, ``time``).  It subclasses both
  ``RuntimeError`` (the immediate engine's historical contract) and
  ``ValueError`` (the historical contract of the delayed / admission /
  penalties engines) so existing handlers keep working.
* :class:`EventStream` / :class:`SimEvent` — a model-agnostic structured
  event log (submissions, decisions, revocations, expiries, completions).
  Opt-in per run (``record_events=True``) so the hot path pays nothing.
* :class:`RunStats` — per-run counters and timings (jobs, decisions,
  accepted load, decisions/s, audit time), attached to every outcome's
  ``meta["stats"]`` regardless of model.
* :func:`commit_decision` — the validated machine-timeline mutation shared
  by the timeline-committing models.
* :func:`replay_events` — rebuilds a :class:`~repro.model.schedule.Schedule`
  from a recorded event stream; the property suite asserts replay fidelity
  for every schedule-producing model.

Downstream layers (sweeps, the process-pool fan-out, adversary duels, the
baselines registry and the CLI) all reach simulation through the
``simulate_*`` entry points, so a schedule carries identical
instrumentation whether it came from a single run, a sweep cell or an
adversary search.
"""

from __future__ import annotations

import time as _time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.engine.recorder import TraceRecorder
from repro.model.job import Job
from repro.model.machine import MachineState
from repro.model.schedule import Assignment, Schedule
from repro.utils.tolerances import TIME_EPS, fge

#: Backstop on kernel steps for a single run — far above any real workload;
#: guards against non-terminating model/policy combinations.
MAX_KERNEL_STEPS = 50_000_000


class SimulationError(RuntimeError, ValueError):
    """A policy produced an invalid decision (infeasible or out of range).

    One error type for every commitment model.  The dual inheritance is
    deliberate backward compatibility: the immediate engine historically
    raised ``RuntimeError`` subclasses while the delayed / admission /
    penalties engines raised bare ``ValueError`` — code catching either
    keeps working.

    Attributes
    ----------
    model:
        Identifier of the commitment model that raised (e.g. ``"immediate"``).
    job_id:
        The job being decided when the violation occurred, if known.
    time:
        Simulation time of the violation, if known.
    """

    def __init__(
        self,
        message: str,
        *,
        model: str | None = None,
        job_id: int | None = None,
        time: float | None = None,
    ) -> None:
        super().__init__(message)
        self.model = model
        self.job_id = job_id
        self.time = time


# ----------------------------------------------------------------------
# Observability: structured events and per-run statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class SimEvent:
    """One structured kernel event.

    ``kind`` is one of ``"submission"``, ``"decision"``, ``"revoke"``,
    ``"expire"`` or ``"complete"``; ``data`` carries kind-specific payload
    (decision events always have ``accepted`` and, when accepted,
    ``machine`` — plus ``start`` in the timeline-committing models).
    """

    seq: int
    time: float
    kind: str
    job_id: int | None
    data: dict[str, Any]

    def summary(self) -> str:
        """Single-line rendering for logs and the CLI."""
        payload = ", ".join(f"{k}={v!r}" for k, v in sorted(self.data.items()))
        who = "-" if self.job_id is None else f"job {self.job_id}"
        return f"[{self.seq:5d}] t={self.time:g} {self.kind:<10s} {who} {payload}"


class EventStream:
    """Append-only, model-agnostic log of :class:`SimEvent` records."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[SimEvent] = []

    def emit(self, kind: str, time: float, job_id: int | None = None, **data: Any) -> SimEvent:
        """Append an event and return it."""
        ev = SimEvent(seq=len(self.events), time=time, kind=kind, job_id=job_id, data=data)
        self.events.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[SimEvent]:
        return iter(self.events)

    def of_kind(self, kind: str) -> list[SimEvent]:
        """All events of the given kind, in emission order."""
        return [e for e in self.events if e.kind == kind]

    def render(self) -> str:
        """Multi-line rendering of the whole stream."""
        return "\n".join(e.summary() for e in self.events)


@dataclass(slots=True)
class RunStats:
    """Per-run counters and timings, attached to every outcome's meta."""

    model: str
    algorithm: str
    jobs: int = 0
    decisions: int = 0
    accepted: int = 0
    rejected: int = 0
    revoked: int = 0
    steps: int = 0
    events: int = 0
    accepted_load: float = 0.0
    sim_seconds: float = 0.0
    audit_seconds: float = 0.0

    @property
    def decisions_per_second(self) -> float:
        """Decision throughput of the simulation phase (excl. audit)."""
        return self.decisions / self.sim_seconds if self.sim_seconds > 0 else float("inf")

    @property
    def jobs_per_second(self) -> float:
        """Submission throughput of the simulation phase (excl. audit)."""
        return self.jobs / self.sim_seconds if self.sim_seconds > 0 else float("inf")

    def as_dict(self) -> dict[str, Any]:
        """Flat dict form (JSON-friendly)."""
        return {
            "model": self.model,
            "algorithm": self.algorithm,
            "jobs": self.jobs,
            "decisions": self.decisions,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "revoked": self.revoked,
            "steps": self.steps,
            "events": self.events,
            "accepted_load": self.accepted_load,
            "sim_seconds": self.sim_seconds,
            "audit_seconds": self.audit_seconds,
            "decisions_per_second": self.decisions_per_second,
            "jobs_per_second": self.jobs_per_second,
        }


# ----------------------------------------------------------------------
# Kernel context: what a model sees while running
# ----------------------------------------------------------------------
class KernelContext:
    """Per-run services the kernel hands to the executing model.

    The context centralises error raising (:meth:`fail`), decision
    accounting (:meth:`decided`), optional structured events
    (:meth:`emit`) and the optional per-submission
    :class:`~repro.engine.recorder.TraceRecorder`.
    """

    __slots__ = ("model", "stats", "events", "recorder")

    def __init__(
        self,
        model: str,
        stats: RunStats,
        events: EventStream | None = None,
        recorder: TraceRecorder | None = None,
    ) -> None:
        self.model = model
        self.stats = stats
        self.events = events
        self.recorder = recorder

    def fail(
        self, message: str, *, job_id: int | None = None, time: float | None = None
    ) -> None:
        """Raise a :class:`SimulationError` with the unified diagnostic shape."""
        raise SimulationError(message, model=self.model, job_id=job_id, time=time)

    def emit(self, kind: str, time: float, job_id: int | None = None, **data: Any) -> None:
        """Emit a structured event when event recording is enabled."""
        if self.events is not None:
            self.events.emit(kind, time, job_id=job_id, **data)
            self.stats.events += 1

    def submitted(self, job: Job, t: float) -> None:
        """Account one job submission."""
        self.stats.jobs += 1
        if self.events is not None:
            self.events.emit(
                "submission",
                t,
                job_id=job.job_id,
                processing=job.processing,
                deadline=job.deadline,
            )
            self.stats.events += 1

    def decided(
        self,
        t: float,
        job_id: int,
        accepted: bool,
        machine: int | None = None,
        start: float | None = None,
        reason: str | None = None,
    ) -> None:
        """Account one final accept/reject decision (any model).

        The signature is deliberately concrete (no ``**kwargs``) — this is
        the hottest kernel call, one per submission in every model.
        """
        stats = self.stats
        stats.decisions += 1
        if accepted:
            stats.accepted += 1
        else:
            stats.rejected += 1
        if self.events is not None:
            payload: dict[str, Any] = {"accepted": accepted}
            if machine is not None:
                payload["machine"] = machine
            if start is not None:
                payload["start"] = start
            if reason is not None:
                payload["reason"] = reason
            self.events.emit("decision", t, job_id=job_id, **payload)
            stats.events += 1

    def revoked(self, t: float, job_id: int, **data: Any) -> None:
        """Account the revocation of a previously planned job."""
        self.stats.revoked += 1
        self.emit("revoke", t, job_id=job_id, **data)


# ----------------------------------------------------------------------
# The strategy interface and the one event loop
# ----------------------------------------------------------------------
class CommitmentModel(ABC):
    """Strategy object for one commitment model's simulation semantics.

    The kernel drives the lifecycle: :meth:`begin` once, then
    :meth:`step` until it returns ``False`` (each call processes exactly
    one decision point — a submission or an event time), then
    :meth:`finish`, then :meth:`build` to produce the outcome.  The
    outcome must expose ``audit()`` and a ``meta`` mapping; the kernel
    audits it and attaches the run's stats (and event stream, when
    recorded) before returning.
    """

    #: Model identifier recorded in errors, stats and ``meta["model"]``.
    model: str = "model"

    #: Human-readable label of the policy driving the run.
    algorithm: str = "policy"

    @abstractmethod
    def begin(self, ctx: KernelContext) -> None:
        """Initialise run state (machines, pending sets, policy reset)."""

    @abstractmethod
    def step(self, ctx: KernelContext) -> bool:
        """Process one decision point; return ``False`` when exhausted."""

    def finish(self, ctx: KernelContext) -> None:
        """End-of-stream hook (drain machines, flush pending work)."""

    @abstractmethod
    def build(self, ctx: KernelContext) -> Any:
        """Construct the model-native outcome (``Schedule``/outcome object)."""


def run_model(
    model: CommitmentModel,
    *,
    record_events: bool = False,
    recorder: TraceRecorder | None = None,
    max_steps: int = MAX_KERNEL_STEPS,
) -> Any:
    """Execute *model* under the shared kernel and return its audited outcome.

    Every outcome leaves with ``meta["model"]`` (the model identifier),
    ``meta["stats"]`` (a :class:`RunStats`) and — when *record_events* —
    ``meta["events"]`` (an :class:`EventStream`).
    """
    stats = RunStats(model=model.model, algorithm=model.algorithm)
    ctx = KernelContext(
        model=model.model,
        stats=stats,
        events=EventStream() if record_events else None,
        recorder=recorder,
    )
    t0 = _time.perf_counter()
    model.begin(ctx)
    steps = 0
    step = model.step  # bound once: the loop below is the hottest line in the repo
    while step(ctx):
        steps += 1
        if steps >= max_steps:
            ctx.fail(f"kernel exceeded max_steps={max_steps} (non-terminating model?)")
    model.finish(ctx)
    outcome = model.build(ctx)
    stats.sim_seconds = _time.perf_counter() - t0
    t1 = _time.perf_counter()
    outcome.audit()
    stats.audit_seconds = _time.perf_counter() - t1
    stats.steps = steps
    stats.accepted_load = float(
        getattr(outcome, "accepted_load", getattr(outcome, "completed_load", 0.0))
    )
    meta = outcome.meta
    meta.setdefault("model", model.model)
    meta["stats"] = stats
    if ctx.events is not None:
        meta["events"] = ctx.events
    return outcome


def exhaust(step: Callable[[], bool], *, limit: int = MAX_KERNEL_STEPS) -> int:
    """Run *step* until it returns falsy; returns the iteration count.

    The kernel-owned fixpoint loop used by models that perform several
    actions at one decision point (e.g. starting jobs while machines are
    idle).  Raises :class:`SimulationError` past *limit*.
    """
    count = 0
    while step():
        count += 1
        if count >= limit:
            raise SimulationError(f"fixpoint iteration exceeded limit={limit}")
    return count


# ----------------------------------------------------------------------
# Shared building blocks for the concrete models
# ----------------------------------------------------------------------
class JobFeed:
    """Peekable stream of jobs in submission order with release draining."""

    __slots__ = ("_iter", "_head")

    def __init__(self, jobs: Iterable[Job]) -> None:
        self._iter = iter(jobs)
        self._head: Job | None = next(self._iter, None)

    def peek(self) -> Job | None:
        """The next job without consuming it (``None`` when exhausted)."""
        return self._head

    def pop(self) -> Job | None:
        """Consume and return the next job (``None`` when exhausted)."""
        head = self._head
        if head is not None:
            self._head = next(self._iter, None)
        return head

    def take_released(self, t: float, eps: float = TIME_EPS) -> list[Job]:
        """Consume every job released at or before ``t + eps``."""
        out: list[Job] = []
        while self._head is not None and self._head.release <= t + eps:
            out.append(self._head)
            self._head = next(self._iter, None)
        return out

    @property
    def exhausted(self) -> bool:
        """Whether the stream has ended."""
        return self._head is None


def commit_decision(
    machines: Sequence[MachineState],
    job: Job,
    t: float,
    machine: int,
    start: float,
    ctx: KernelContext,
) -> None:
    """Validate and commit an acceptance onto the authoritative timelines.

    The kernel — not the model — owns the mutation: machine range, start
    monotonicity and the timeline's own feasibility/overlap invariants are
    checked here, and every violation raises :class:`SimulationError`.
    """
    if not 0 <= machine < len(machines):
        ctx.fail(
            f"job {job.job_id}: machine index {machine} out of range [0, {len(machines)})",
            job_id=job.job_id,
            time=t,
        )
    if not fge(start, t):
        ctx.fail(
            f"job {job.job_id}: committed start {start} lies before decision time {t}",
            job_id=job.job_id,
            time=t,
        )
    try:
        machines[machine].commit(job, start)
    except ValueError as exc:
        raise SimulationError(
            str(exc), model=ctx.model, job_id=job.job_id, time=t
        ) from exc


def replay_events(instance: Any, events: EventStream | Iterable[SimEvent]) -> Schedule:
    """Rebuild a :class:`Schedule` from a kernel event stream.

    Only terminal ``"decision"`` events matter; later decisions for the
    same job override earlier ones (the penalties model revokes by
    emitting ``"revoke"`` — replay honours those too).  The result is
    re-audited, so a stream that does not encode a valid schedule fails
    loudly.
    """
    schedule = Schedule(instance=instance, algorithm="replay")
    for ev in events:
        if ev.kind == "decision":
            jid = ev.job_id
            assert jid is not None
            if ev.data.get("accepted"):
                schedule.assignments[jid] = Assignment(
                    jid, ev.data["machine"], ev.data["start"]
                )
                schedule.rejected.discard(jid)
            else:
                schedule.rejected.add(jid)
                schedule.assignments.pop(jid, None)
        elif ev.kind == "revoke":
            jid = ev.job_id
            assert jid is not None
            schedule.assignments.pop(jid, None)
            schedule.rejected.add(jid)
    schedule.audit()
    return schedule
