"""Online policy and job-source interfaces.

The *immediate commitment* contract of the paper is encoded in the shape of
the interface: a policy sees one job at a time, must answer with a final
:class:`Decision` (reject, or accept with machine *and* start time), and is
never consulted about that job again.  The engine — not the policy — owns
the authoritative machine timelines; policies receive a read-only view and
may keep whatever private state they like.

Adaptive adversaries are modelled by the :class:`JobSource` interface: the
engine pulls the next job only after delivering the previous decision, so a
source can construct worst-case continuations exactly like the adversary of
Section 3.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.machine import MachineState


@dataclass(frozen=True, slots=True)
class Decision:
    """A final, irrevocable admission decision for one job.

    Attributes
    ----------
    accepted:
        Whether the job is admitted.
    machine:
        Target machine index (required when accepted).
    start:
        Committed start time (required when accepted).  The engine verifies
        ``start >= release`` and on-time completion.
    info:
        Free-form diagnostics (e.g. the threshold value ``d_lim`` that the
        decision compared against); recorded in traces, ignored by the
        engine.
    """

    accepted: bool
    machine: int | None = None
    start: float | None = None
    info: dict[str, Any] = field(default_factory=dict, compare=False)

    @classmethod
    def reject(cls, **info: Any) -> "Decision":
        """A rejection decision."""
        return cls(accepted=False, info=info)

    @classmethod
    def accept(cls, machine: int, start: float, **info: Any) -> "Decision":
        """An acceptance decision committing *machine* and *start*."""
        return cls(accepted=True, machine=machine, start=start, info=info)

    def __post_init__(self) -> None:
        if self.accepted and (self.machine is None or self.start is None):
            raise ValueError("accepted decisions must fix machine and start")


class OnlinePolicy(ABC):
    """Base class for deterministic online admission policies.

    Lifecycle: the engine calls :meth:`reset` once per run, then
    :meth:`on_submission` once per job in submission order.  The engine
    commits accepted jobs onto its machine states *immediately after* the
    call returns, so the ``machines`` view passed to the next submission
    already reflects the decision.
    """

    #: Human-readable identifier used in reports and registries.
    name: str = "policy"

    #: Whether the policy supports immediate commitment (all policies in
    #: this module do; preemptive baselines advertise ``False`` and run on
    #: the preemptive engine instead).
    immediate_commitment: bool = True

    def reset(self, machines: int, epsilon: float) -> None:
        """Prepare for a fresh run on ``machines`` machines with slack ``epsilon``."""

    @abstractmethod
    def on_submission(
        self, job: Job, t: float, machines: Sequence[MachineState]
    ) -> Decision:
        """Decide the fate of *job* submitted at time ``t`` (= ``job.release``).

        ``machines`` is the engine's authoritative, read-only machine view
        (index ``i`` is physical machine ``i``; policies that need the
        paper's load-sorted indexing sort a projection themselves).
        """

    def describe(self) -> dict[str, Any]:
        """Parameter dictionary for reports."""
        return {"name": self.name}


class JobSource(ABC):
    """A pull-based, possibly adaptive stream of jobs.

    The engine alternates ``next_job() -> decision delivery -> observe()``
    so that adversarial sources can adapt each submission to the full
    decision history, matching the adaptive-adversary model of the lower
    bound.
    """

    @property
    @abstractmethod
    def machines(self) -> int:
        """Machine count of the generated instance."""

    @property
    @abstractmethod
    def epsilon(self) -> float:
        """Declared slack of the generated instance."""

    @abstractmethod
    def next_job(self) -> Job | None:
        """Produce the next job, or ``None`` when the stream ends."""

    @abstractmethod
    def observe(self, job: Job, decision: Decision) -> None:
        """Receive the policy's decision on the previously produced *job*."""

    def finalize(self) -> None:
        """Hook called once after the stream ends (optional)."""


class SequenceSource(JobSource):
    """A non-adaptive :class:`JobSource` wrapping a fixed instance."""

    def __init__(self, instance: Instance) -> None:
        self._instance = instance
        self._iter = iter(instance.jobs)

    @property
    def machines(self) -> int:
        return self._instance.machines

    @property
    def epsilon(self) -> float:
        return self._instance.epsilon

    @property
    def instance(self) -> Instance:
        """The wrapped instance."""
        return self._instance

    def next_job(self) -> Job | None:
        return next(self._iter, None)

    def observe(self, job: Job, decision: Decision) -> None:
        pass


def as_source(stream: Instance | JobSource | Iterable[Job], machines: int | None = None,
              epsilon: float | None = None) -> JobSource:
    """Normalise *stream* into a :class:`JobSource`.

    Iterables of jobs need explicit ``machines`` and ``epsilon``.
    """
    if isinstance(stream, JobSource):
        return stream
    if isinstance(stream, Instance):
        return SequenceSource(stream)
    if machines is None or epsilon is None:
        raise ValueError("raw job iterables need explicit machines and epsilon")
    return SequenceSource(Instance(list(stream), machines=machines, epsilon=epsilon))
