"""Structure-of-arrays batch kernel for the immediate-commitment model.

This module is the NumPy half of the kernel-backend seam
(:mod:`repro.engine.backend`).  It steps a *batch* of instances through the
paper's immediate-commitment decision rules at once, holding the entire
simulation state as dense arrays:

* job data as ``(B, N)`` arrays (release / processing / deadline),
* per-machine commitment history as ``(B*M, N)`` start/end/prefix slabs,
* a monotone per-machine pointer that replays ``bisect_right(ends, t)``
  exactly (releases are non-decreasing, so the pointer never moves back).

The contract with the scalar kernel is **bit-identity**, not approximate
agreement: every float is produced by the same IEEE-754 operations in the
same order as :class:`repro.engine.simulator.ImmediateCommitmentModel`
driving the pure-Python policies, and every comparison goes through
:mod:`repro.utils.tolerances` (``fge``/``vsnap`` with ``TIME_EPS``).  The
cross-backend equivalence suite (``tests/engine/test_backends.py``) asserts
identical schedules, ``RunStats`` counters and journal rows.

Key correspondences with the scalar path:

* outstanding load: ``snap((ends[j] - max(starts[j], t)) + (prefix[n] -
  prefix[j+1]))`` with ``j = bisect_right(ends, t)`` — replicated with the
  same operand order via :func:`repro.utils.tolerances.vsnap`;
* threshold: ``d_lim = t + max(sorted_desc_loads[k-1:] * f)`` using the
  same ``np.sort``/``np.max`` calls as ``ThresholdPolicy.threshold_at``;
* tie-breaking: Python's ``max(..., key=(load, -index))`` picks the first
  maximal element, which is exactly ``np.argmax``'s first-occurrence rule
  (and ``min``/``np.argmin`` for worst-fit / least-loaded);
* commitments always append (``start = max(t, last_end)`` is never below a
  previous end), so the scalar machine's O(1) prefix extension is the only
  code path that needs replaying;
* randomized policies replay the scalar RNG stream operand-for-operand:
  ``Generator.random(n)`` is bit-identical to ``n`` sequential scalar
  ``.random()`` calls, so the kernel pre-draws the whole stream once and
  consumes it through a per-lane pointer that advances exactly when the
  scalar policy would have drawn (see :func:`run_random_admission_batch`).

Every stateful variant reduces to one of four admission modes over the
same step loop (``threshold``, ``greedy``, ``lee`` size classes, ``random``
coin flips), so adding a rule is a registry entry plus, at most, a new
admission branch — see ``docs/kernel_authoring.md`` for the full recipe.
The delayed/admission commitment models live in
:mod:`repro.engine.batch_delayed`; everything else falls back to the
scalar kernel via the dispatch layer.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.core.params import clamp_epsilon, threshold_parameters
from repro.engine.kernel import MAX_KERNEL_STEPS, RunStats, SimulationError
from repro.model.instance import Instance
from repro.model.schedule import Assignment, Schedule
from repro.utils.rng import rng_from_any
from repro.utils.tolerances import TIME_EPS, fge, vsnap

#: Default acceptance probability of ``random-admission`` (mirrors
#: :class:`repro.baselines.reference.RandomAdmissionPolicy`).
DEFAULT_Q = 0.5

#: Default RNG seed of ``random-admission`` (the policy's ``rng=0``).
DEFAULT_RANDOM_SEED = 0


@dataclass(frozen=True)
class ImmediateRule:
    """A batch-supported immediate-model decision rule.

    ``admission`` is ``"threshold"`` (Algorithm 1's deadline test),
    ``"greedy"`` (accept iff some machine fits) or ``"lee"`` (accept iff
    the job's static size-class machine fits); ``allocation`` is the
    candidate-selection rule among fitting machines (``"class"`` pins the
    job to its size-class machine).  ``single_machine`` mirrors the
    registry's ``single_machine_only`` flag.
    """

    algorithm: str
    admission: str
    allocation: str
    single_machine: bool = False


#: Registry algorithm name -> batch rule, for every *deterministic*
#: immediate-model policy the batch kernel reproduces bit-identically.
#: The randomized immediate policies (``random-admission``,
#: ``classify-select``) have dedicated entry points below because they
#: carry kwargs (q / seed / virtual machines) that participate in the
#: dispatch layer's grouping key.
IMMEDIATE_RULES: dict[str, ImmediateRule] = {
    "threshold": ImmediateRule("threshold", "threshold", "best-fit"),
    "threshold[worst-fit]": ImmediateRule(
        "threshold[worst-fit]", "threshold", "worst-fit"
    ),
    "threshold[first-fit]": ImmediateRule(
        "threshold[first-fit]", "threshold", "first-fit"
    ),
    "greedy": ImmediateRule("greedy", "greedy", "best-fit"),
    "greedy[least-loaded]": ImmediateRule(
        "greedy[least-loaded]", "greedy", "least-loaded"
    ),
    "goldwasser-kerbikov": ImmediateRule(
        "goldwasser-kerbikov", "threshold", "best-fit", single_machine=True
    ),
    "lee-style": ImmediateRule("lee-style", "lee", "class"),
}


def _job_arrays(instances: list[Instance], n: int) -> tuple[np.ndarray, ...]:
    rel = np.empty((len(instances), n))
    proc = np.empty((len(instances), n))
    dl = np.empty((len(instances), n))
    for b, inst in enumerate(instances):
        for j, job in enumerate(inst.jobs):
            rel[b, j] = job.release
            proc[b, j] = job.processing
            dl[b, j] = job.deadline
    return rel, proc, dl


def _check_uniform(instances: list[Instance]) -> tuple[int, int]:
    m = instances[0].machines
    n = len(instances[0])
    for inst in instances:
        if inst.machines != m or len(inst) != n:
            raise ValueError(
                "batch requires uniform shape: expected "
                f"(machines={m}, jobs={n}), got ({inst.machines}, {len(inst)})"
            )
    return m, n


def _check_steps(n: int, max_steps: int) -> None:
    if n >= max_steps:
        # Same condition and message as run_model's step-count guard.
        raise SimulationError(
            f"kernel exceeded max_steps={max_steps} (non-terminating model?)",
            model="immediate",
        )


def _threshold_tables(
    instances: list[Instance], m: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-instance Algorithm 1 parameters, padded into one (B, M) factor
    table: position ``k-1+i`` holds ``f[i]``; ranks < k-1 are masked out."""
    b = len(instances)
    f_pad = np.zeros((b, m))
    kvec = np.empty(b, dtype=np.int64)
    for i, inst in enumerate(instances):
        params = threshold_parameters(clamp_epsilon(inst.epsilon), m)
        kvec[i] = params.k
        f_pad[i, params.k - 1 :] = params.f
    rank_ok = np.arange(m)[None, :] >= (kvec[:, None] - 1)
    return f_pad, kvec, rank_ok


def _lee_targets(instances: list[Instance], m: int, n: int) -> np.ndarray:
    """Per-job size-class machine of :class:`LeeStylePolicy`, precomputed.

    The classification is static (anchored at the first job's processing
    time), so the whole target table is known upfront.  The per-element
    ``math.log``/``math.floor`` arithmetic is deliberately *scalar Python*:
    NumPy's vectorised ``log`` may differ from libm by one ulp on some
    builds, which would break bit-identity on class boundaries.
    """
    targets = np.zeros((len(instances), n), dtype=np.int64)
    for i, inst in enumerate(instances):
        if n == 0:
            continue
        eps_c = min(max(inst.epsilon, 1e-12), 1.0)
        ratio = eps_c ** (-1.0 / m)
        if ratio <= 1.0:
            continue  # single degenerate class: every job targets machine 0
        anchor = inst.jobs[0].processing
        targets[i] = [
            math.floor(math.log(job.processing / anchor, ratio) + 1e-12) % m
            for job in inst.jobs
        ]
    return targets


def _simulate(
    rel: np.ndarray,
    proc: np.ndarray,
    dl: np.ndarray,
    m: int,
    admission: str,
    allocation: str,
    *,
    f_pad: np.ndarray | None = None,
    kvec: np.ndarray | None = None,
    rank_ok: np.ndarray | None = None,
    targets: np.ndarray | None = None,
    q: float = 0.0,
    draws: np.ndarray | None = None,
) -> tuple[np.ndarray, ...]:
    """The SoA step loop shared by every immediate-model batch entry point.

    Returns ``(acc, mach, startv, starts, ends, cnt)``.  When the numba
    seam is active (:mod:`repro.engine.jit`) the identical loop runs
    jit-compiled; both paths execute the same IEEE-754 operations in the
    same order, so their outputs are interchangeable bit-for-bit.
    """
    from repro.engine import jit

    b, n = rel.shape
    if n and jit.jit_active():
        return jit.simulate_jit(
            rel, proc, dl, m, admission, allocation,
            f_pad=f_pad, kvec=kvec, targets=targets, q=q, draws=draws,
        )
    bm = b * m
    rows = np.arange(bm)
    starts = np.zeros((bm, n)) if n else np.zeros((bm, 1))
    ends = np.zeros_like(starts)
    prefix = np.zeros((bm, starts.shape[1] + 1))
    cnt = np.zeros(bm, dtype=np.int64)
    ptr = np.zeros(bm, dtype=np.int64)
    dptr = np.zeros(b, dtype=np.int64)

    acc = np.zeros((b, n), dtype=bool)
    mach = np.zeros((b, n), dtype=np.int64)
    startv = np.zeros((b, n))

    lanes = np.arange(b)
    threshold = admission == "threshold"
    # The lee rule never inspects outstanding loads (its admission test and
    # allocation are both pinned to the size-class machine's frontier), so
    # the bisect pointer and the load reduction can be skipped entirely.
    need_loads = not (admission == "lee" and allocation == "class")

    for s in range(n):
        t = rel[:, s]
        p = proc[:, s]
        d = dl[:, s]
        tbm = np.repeat(t, m)

        if need_loads:
            # Advance the bisect_right(ends, t) pointer.  Releases are
            # non-decreasing (Instance validates this), so the pointer only
            # moves forward; bisect_right uses the exact `ends[j] <= t` test.
            while True:
                has = ptr < cnt
                idx = np.where(has, ptr, 0)
                adv = has & (ends[rows, idx] <= tbm)
                if not adv.any():
                    break
                ptr += adv

            # Outstanding load, operand-for-operand as
            # MachineState.outstanding.
            has = ptr < cnt
            idx = np.where(has, ptr, 0)
            partial = ends[rows, idx] - np.maximum(starts[rows, idx], tbm)
            rest = prefix[rows, cnt] - prefix[rows, idx + 1]
            load = np.where(has, vsnap(partial + rest), 0.0)
            loads = load.reshape(b, m)

        # Feasibility per machine: start would be the completion frontier.
        last_idx = np.where(cnt > 0, cnt - 1, 0)
        frontier = np.maximum(tbm, np.where(cnt > 0, ends[rows, last_idx], 0.0))
        fits = fge(np.repeat(d, m), frontier + np.repeat(p, m)).reshape(b, m)
        anyfit = fits.any(axis=1)

        if threshold:
            sorted_desc = np.sort(loads, axis=1)[:, ::-1]
            d_lim = t + np.max(np.where(rank_ok, sorted_desc * f_pad, -np.inf), axis=1)
            ok = fge(d, d_lim)
            bad = ok & ~anyfit
            if bad.any():
                raise AssertionError(
                    f"job {s}: accepted by threshold but no machine can "
                    "complete it — Claim 1 invariant broken"
                )
        elif admission == "lee":
            ok = fits[lanes, targets[:, s]]
        elif admission == "random":
            # The scalar policy short-circuits (`not candidates or
            # rng.random() >= q`): a draw is consumed exactly when some
            # machine fits.  Replay that with a per-lane stream pointer
            # over the pre-drawn row.
            ok = anyfit & (draws[dptr] < q)
            dptr += anyfit
        else:  # greedy
            ok = anyfit

        if allocation == "class":
            choice = targets[:, s]
        elif allocation == "best-fit":
            choice = np.argmax(np.where(fits, loads, -np.inf), axis=1)
        elif allocation in ("worst-fit", "least-loaded"):
            choice = np.argmin(np.where(fits, loads, np.inf), axis=1)
        else:  # first-fit
            choice = np.argmax(fits, axis=1)

        sel = np.flatnonzero(ok)
        if sel.size:
            rsel = sel * m + choice[sel]
            c = cnt[rsel]
            st = frontier[rsel]
            starts[rsel, c] = st
            ends[rsel, c] = st + p[sel]
            prefix[rsel, c + 1] = prefix[rsel, c] + p[sel]
            cnt[rsel] = c + 1
            acc[sel, s] = True
            mach[sel, s] = choice[sel]
            startv[sel, s] = st

    return acc, mach, startv, starts, ends, cnt


def _build_schedules(
    instances: list[Instance],
    algorithm: str,
    acc: np.ndarray,
    mach: np.ndarray,
    startv: np.ndarray,
    sim_seconds: float,
    audit_seconds: float,
    *,
    real_machine: np.ndarray | None = None,
    meta_extra: dict | None = None,
) -> list[Schedule]:
    """Materialise per-instance Schedules + RunStats from the SoA outputs.

    ``real_machine`` overrides the assignment machine per (lane, job)
    (classify-select executes virtual machine ``selected`` on the one real
    machine 0).
    """
    n = acc.shape[1]
    schedules: list[Schedule] = []
    for i, inst in enumerate(instances):
        accepted_ids = np.flatnonzero(acc[i])
        machines_row = mach[i] if real_machine is None else real_machine[i]
        assignments = {
            int(j): Assignment(int(j), int(machines_row[j]), float(startv[i, j]))
            for j in accepted_ids
        }
        rejected = {int(j) for j in np.flatnonzero(~acc[i])}
        meta = {"model": "immediate", "backend": "batch"}
        if meta_extra:
            meta.update(meta_extra)
        schedule = Schedule(
            instance=inst,
            assignments=assignments,
            rejected=rejected,
            algorithm=algorithm,
            meta=meta,
        )
        schedule.meta["stats"] = RunStats(
            model="immediate",
            algorithm=algorithm,
            jobs=n,
            decisions=n,
            accepted=len(assignments),
            rejected=n - len(assignments),
            steps=n,
            accepted_load=float(schedule.accepted_load),
            sim_seconds=sim_seconds,
            audit_seconds=audit_seconds,
        )
        schedules.append(schedule)
    return schedules


def run_immediate_batch(
    rule: ImmediateRule,
    instances: list[Instance],
    max_steps: int = MAX_KERNEL_STEPS,
) -> list[Schedule]:
    """Run *rule* over a batch of same-shape instances; one Schedule each.

    All instances must share the machine count and job count (the dispatch
    layer groups by that key), which keeps every array rectangular — no
    masking or padding anywhere in the step loop.
    """
    if not instances:
        return []
    m, n = _check_uniform(instances)
    if rule.single_machine and m != 1:
        # Same message as the registry's single_machine_only guard.
        raise ValueError(f"{rule.algorithm} only runs on single-machine instances")
    _check_steps(n, max_steps)

    t0 = time.perf_counter()
    b = len(instances)
    f_pad = kvec = rank_ok = targets = None
    if rule.admission == "threshold":
        f_pad, kvec, rank_ok = _threshold_tables(instances, m)
    elif rule.admission == "lee":
        targets = _lee_targets(instances, m, n)

    rel, proc, dl = _job_arrays(instances, n)
    acc, mach, startv, starts, ends, cnt = _simulate(
        rel, proc, dl, m, rule.admission, rule.allocation,
        f_pad=f_pad, kvec=kvec, rank_ok=rank_ok, targets=targets,
    )
    sim_seconds = (time.perf_counter() - t0) / b

    t1 = time.perf_counter()
    _audit_batch(rel, proc, dl, acc, startv, starts, ends, cnt, m)
    audit_seconds = (time.perf_counter() - t1) / b

    return _build_schedules(
        instances, rule.algorithm, acc, mach, startv, sim_seconds, audit_seconds
    )


def run_random_admission_batch(
    instances: list[Instance],
    q: float = DEFAULT_Q,
    rng: int | None = DEFAULT_RANDOM_SEED,
    max_steps: int = MAX_KERNEL_STEPS,
) -> list[Schedule]:
    """Batched :class:`RandomAdmissionPolicy`, bit-identical RNG replay.

    Every scalar run constructs a *fresh* generator from the same seed, so
    all lanes share one pre-drawn uniform row; each lane walks it with its
    own pointer that advances exactly when the scalar policy would have
    consumed a draw (some machine fits — the short-circuit in
    ``not candidates or rng.random() >= q``).  ``rng`` must be an integer
    seed (or ``None`` for the library default): live ``Generator`` objects
    carry mutable cross-run state the batch kernel cannot replay, and the
    dispatch layer never routes them here.
    """
    if not 0.0 <= q <= 1.0:
        # Same message as RandomAdmissionPolicy.__init__.
        raise ValueError(f"acceptance probability must lie in [0, 1], got {q}")
    if isinstance(rng, np.random.Generator):
        raise ValueError(
            "batch random-admission requires an integer seed (or None); "
            "live Generator objects are scalar-only"
        )
    if not instances:
        return []
    m, n = _check_uniform(instances)
    _check_steps(n, max_steps)

    t0 = time.perf_counter()
    b = len(instances)
    rel, proc, dl = _job_arrays(instances, n)
    # Generator.random(n) is bit-identical to n sequential .random() calls.
    draws = rng_from_any(rng).random(n)
    acc, mach, startv, starts, ends, cnt = _simulate(
        rel, proc, dl, m, "random", "least-loaded", q=q, draws=draws
    )
    sim_seconds = (time.perf_counter() - t0) / b

    t1 = time.perf_counter()
    _audit_batch(rel, proc, dl, acc, startv, starts, ends, cnt, m)
    audit_seconds = (time.perf_counter() - t1) / b

    # The scalar policy renames itself with the acceptance probability.
    return _build_schedules(
        instances, f"random-admission[q={q:g}]", acc, mach, startv,
        sim_seconds, audit_seconds,
    )


def run_classify_select_batch(
    instances: list[Instance],
    virtual_machines: int | None = None,
    rng: int | None = None,
    selected: int | None = None,
    max_steps: int = MAX_KERNEL_STEPS,
) -> list[Schedule]:
    """Batched :class:`ClassifyAndSelect` (Corollary 1), bit-identical.

    Runs the threshold step loop on ``virtual_machines`` virtual machines
    and keeps only the jobs the virtual run assigns to the selected one,
    executed on the single real machine at their virtual start times.  The
    selection replays the scalar draw exactly: a fresh generator per run,
    one ``integers(virtual_m)`` call at reset (skipped when ``selected``
    is fixed).  All lanes must resolve to the same virtual machine count —
    the dispatch layer groups on it.
    """
    from repro.core.randomized import default_virtual_machines

    if isinstance(rng, np.random.Generator):
        raise ValueError(
            "batch classify-select requires an integer seed (or None); "
            "live Generator objects are scalar-only"
        )
    if not instances:
        return []
    m, n = _check_uniform(instances)
    if m != 1:
        # Same message as ClassifyAndSelect.reset.
        raise ValueError(
            f"classify-and-select is a single-machine algorithm; got m={m}"
        )
    _check_steps(n, max_steps)

    vms = {
        virtual_machines
        if virtual_machines is not None
        else default_virtual_machines(inst.epsilon)
        for inst in instances
    }
    if len(vms) != 1:
        raise ValueError(
            f"batch requires a uniform virtual machine count, got {sorted(vms)}"
        )
    virtual_m = vms.pop()
    if selected is not None:
        if not 0 <= selected < virtual_m:
            # Same message as ClassifyAndSelect.reset.
            raise ValueError(
                f"selected machine {selected} out of range [0, {virtual_m})"
            )
        chosen = selected
    else:
        # One draw per scalar run, from a fresh generator — identical for
        # every lane of the group (the grouping key carries the seed).
        chosen = int(rng_from_any(rng).integers(virtual_m))

    t0 = time.perf_counter()
    b = len(instances)
    f_pad, kvec, rank_ok = _threshold_tables(instances, virtual_m)
    rel, proc, dl = _job_arrays(instances, n)
    vacc, vmach, startv, starts, ends, cnt = _simulate(
        rel, proc, dl, virtual_m, "threshold", "best-fit",
        f_pad=f_pad, kvec=kvec, rank_ok=rank_ok,
    )
    # Real acceptance: virtual acceptance on the selected machine, executed
    # verbatim on the one real machine.
    acc = vacc & (vmach == chosen)
    real_machine = np.zeros_like(vmach)
    sim_seconds = (time.perf_counter() - t0) / b

    t1 = time.perf_counter()
    # The real timeline is the selected virtual machine's timeline, a
    # subset of the virtual slabs — auditing the full virtual schedule is
    # strictly stronger than auditing the real one.
    _audit_batch(rel, proc, dl, vacc, startv, starts, ends, cnt, virtual_m)
    audit_seconds = (time.perf_counter() - t1) / b

    return _build_schedules(
        instances, "classify-select", acc, vmach, startv,
        sim_seconds, audit_seconds, real_machine=real_machine,
    )


def _audit_batch(rel, proc, dl, acc, startv, starts, ends, cnt, m) -> None:
    """Vectorised replica of ``Schedule.audit`` over the whole batch.

    Checks the same invariants (start after release, completion by the
    deadline, no overlap on any machine; coverage and machine range hold by
    construction).  On the never-expected failure it delegates to the
    scalar ``Schedule.audit`` path via an assertion so the violation is not
    silently swallowed — the equivalence suite exercises this against the
    scalar kernel's audit.
    """
    early = acc & ~fge(startv, rel)
    late = acc & ~fge(dl, startv + proc)
    cap = starts.shape[1]
    span = np.arange(max(cap - 1, 1))[None, : cap - 1]
    mask = span < (cnt[:, None] - 1)
    overlap = mask & (starts[:, 1:cap] < ends[:, : cap - 1] - TIME_EPS)
    if early.any() or late.any() or overlap.any():
        raise AssertionError(
            "batch audit failed: schedule invariant violated "
            f"(early={int(early.sum())}, late={int(late.sum())}, "
            f"overlap={int(overlap.sum())})"
        )


__all__ = [
    "DEFAULT_Q",
    "DEFAULT_RANDOM_SEED",
    "ImmediateRule",
    "IMMEDIATE_RULES",
    "run_classify_select_batch",
    "run_immediate_batch",
    "run_random_admission_batch",
]
