"""Structure-of-arrays batch kernel for the immediate-commitment model.

This module is the NumPy half of the kernel-backend seam
(:mod:`repro.engine.backend`).  It steps a *batch* of instances through the
paper's immediate-commitment decision rules at once, holding the entire
simulation state as dense arrays:

* job data as ``(B, N)`` arrays (release / processing / deadline),
* per-machine commitment history as ``(B*M, N)`` start/end/prefix slabs,
* a monotone per-machine pointer that replays ``bisect_right(ends, t)``
  exactly (releases are non-decreasing, so the pointer never moves back).

The contract with the scalar kernel is **bit-identity**, not approximate
agreement: every float is produced by the same IEEE-754 operations in the
same order as :class:`repro.engine.simulator.ImmediateCommitmentModel`
driving the pure-Python policies, and every comparison goes through
:mod:`repro.utils.tolerances` (``fge``/``vsnap`` with ``TIME_EPS``).  The
cross-backend equivalence suite (``tests/engine/test_backends.py``) asserts
identical schedules, ``RunStats`` counters and journal rows.

Key correspondences with the scalar path:

* outstanding load: ``snap((ends[j] - max(starts[j], t)) + (prefix[n] -
  prefix[j+1]))`` with ``j = bisect_right(ends, t)`` — replicated with the
  same operand order via :func:`repro.utils.tolerances.vsnap`;
* threshold: ``d_lim = t + max(sorted_desc_loads[k-1:] * f)`` using the
  same ``np.sort``/``np.max`` calls as ``ThresholdPolicy.threshold_at``;
* tie-breaking: Python's ``max(..., key=(load, -index))`` picks the first
  maximal element, which is exactly ``np.argmax``'s first-occurrence rule
  (and ``min``/``np.argmin`` for worst-fit / least-loaded);
* commitments always append (``start = max(t, last_end)`` is never below a
  previous end), so the scalar machine's O(1) prefix extension is the only
  code path that needs replaying.

Only deterministic immediate-model policies are supported; everything else
falls back to the scalar kernel via the dispatch layer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.params import clamp_epsilon, threshold_parameters
from repro.engine.kernel import MAX_KERNEL_STEPS, RunStats, SimulationError
from repro.model.instance import Instance
from repro.model.schedule import Assignment, Schedule
from repro.utils.tolerances import TIME_EPS, fge, vsnap


@dataclass(frozen=True)
class ImmediateRule:
    """A batch-supported immediate-model decision rule.

    ``admission`` is ``"threshold"`` (Algorithm 1's deadline test) or
    ``"greedy"`` (accept iff some machine fits); ``allocation`` is the
    candidate-selection rule among fitting machines.
    """

    algorithm: str
    admission: str
    allocation: str


#: Registry algorithm name -> batch rule, for every immediate-model policy
#: the batch kernel reproduces bit-identically.
IMMEDIATE_RULES: dict[str, ImmediateRule] = {
    "threshold": ImmediateRule("threshold", "threshold", "best-fit"),
    "threshold[worst-fit]": ImmediateRule(
        "threshold[worst-fit]", "threshold", "worst-fit"
    ),
    "threshold[first-fit]": ImmediateRule(
        "threshold[first-fit]", "threshold", "first-fit"
    ),
    "greedy": ImmediateRule("greedy", "greedy", "best-fit"),
    "greedy[least-loaded]": ImmediateRule(
        "greedy[least-loaded]", "greedy", "least-loaded"
    ),
}


def _job_arrays(instances: list[Instance], n: int) -> tuple[np.ndarray, ...]:
    rel = np.empty((len(instances), n))
    proc = np.empty((len(instances), n))
    dl = np.empty((len(instances), n))
    for b, inst in enumerate(instances):
        for j, job in enumerate(inst.jobs):
            rel[b, j] = job.release
            proc[b, j] = job.processing
            dl[b, j] = job.deadline
    return rel, proc, dl


def run_immediate_batch(
    rule: ImmediateRule,
    instances: list[Instance],
    max_steps: int = MAX_KERNEL_STEPS,
) -> list[Schedule]:
    """Run *rule* over a batch of same-shape instances; one Schedule each.

    All instances must share the machine count and job count (the dispatch
    layer groups by that key), which keeps every array rectangular — no
    masking or padding anywhere in the step loop.
    """
    if not instances:
        return []
    m = instances[0].machines
    n = len(instances[0])
    for inst in instances:
        if inst.machines != m or len(inst) != n:
            raise ValueError(
                "batch requires uniform shape: expected "
                f"(machines={m}, jobs={n}), got ({inst.machines}, {len(inst)})"
            )
    if n >= max_steps:
        # Same condition and message as run_model's step-count guard.
        raise SimulationError(
            f"kernel exceeded max_steps={max_steps} (non-terminating model?)",
            model="immediate",
        )

    t0 = time.perf_counter()
    b = len(instances)
    threshold = rule.admission == "threshold"

    if threshold:
        # Per-instance Algorithm 1 parameters, padded into one (B, M) factor
        # table: position k-1+i holds f[i]; ranks < k-1 are masked out.
        f_pad = np.zeros((b, m))
        kvec = np.empty(b, dtype=np.int64)
        for i, inst in enumerate(instances):
            params = threshold_parameters(clamp_epsilon(inst.epsilon), m)
            kvec[i] = params.k
            f_pad[i, params.k - 1 :] = params.f
        rank_ok = np.arange(m)[None, :] >= (kvec[:, None] - 1)

    rel, proc, dl = _job_arrays(instances, n)

    # Per-(instance, machine) commitment history, flattened to B*M rows.
    bm = b * m
    rows = np.arange(bm)
    starts = np.zeros((bm, n)) if n else np.zeros((bm, 1))
    ends = np.zeros_like(starts)
    prefix = np.zeros((bm, starts.shape[1] + 1))
    cnt = np.zeros(bm, dtype=np.int64)
    ptr = np.zeros(bm, dtype=np.int64)

    acc = np.zeros((b, n), dtype=bool)
    mach = np.zeros((b, n), dtype=np.int64)
    startv = np.zeros((b, n))

    for s in range(n):
        t = rel[:, s]
        p = proc[:, s]
        d = dl[:, s]
        tbm = np.repeat(t, m)

        # Advance the bisect_right(ends, t) pointer.  Releases are
        # non-decreasing (Instance validates this), so the pointer only
        # moves forward; bisect_right uses the exact `ends[j] <= t` test.
        while True:
            has = ptr < cnt
            idx = np.where(has, ptr, 0)
            adv = has & (ends[rows, idx] <= tbm)
            if not adv.any():
                break
            ptr += adv

        # Outstanding load, operand-for-operand as MachineState.outstanding.
        has = ptr < cnt
        idx = np.where(has, ptr, 0)
        partial = ends[rows, idx] - np.maximum(starts[rows, idx], tbm)
        rest = prefix[rows, cnt] - prefix[rows, idx + 1]
        load = np.where(has, vsnap(partial + rest), 0.0)
        loads = load.reshape(b, m)

        # Feasibility per machine: start would be the completion frontier.
        last_idx = np.where(cnt > 0, cnt - 1, 0)
        frontier = np.maximum(tbm, np.where(cnt > 0, ends[rows, last_idx], 0.0))
        fits = fge(np.repeat(d, m), frontier + np.repeat(p, m)).reshape(b, m)
        anyfit = fits.any(axis=1)

        if threshold:
            sorted_desc = np.sort(loads, axis=1)[:, ::-1]
            d_lim = t + np.max(np.where(rank_ok, sorted_desc * f_pad, -np.inf), axis=1)
            ok = fge(d, d_lim)
            bad = ok & ~anyfit
            if bad.any():
                raise AssertionError(
                    f"job {s}: accepted by threshold but no machine can "
                    "complete it — Claim 1 invariant broken"
                )
        else:
            ok = anyfit

        if rule.allocation == "best-fit":
            choice = np.argmax(np.where(fits, loads, -np.inf), axis=1)
        elif rule.allocation in ("worst-fit", "least-loaded"):
            choice = np.argmin(np.where(fits, loads, np.inf), axis=1)
        else:  # first-fit
            choice = np.argmax(fits, axis=1)

        sel = np.flatnonzero(ok)
        if sel.size:
            rsel = sel * m + choice[sel]
            c = cnt[rsel]
            st = frontier[rsel]
            starts[rsel, c] = st
            ends[rsel, c] = st + p[sel]
            prefix[rsel, c + 1] = prefix[rsel, c] + p[sel]
            cnt[rsel] = c + 1
            acc[sel, s] = True
            mach[sel, s] = choice[sel]
            startv[sel, s] = st

    sim_seconds = (time.perf_counter() - t0) / b

    t1 = time.perf_counter()
    _audit_batch(rel, proc, dl, acc, startv, starts, ends, cnt, m)
    audit_seconds = (time.perf_counter() - t1) / b

    schedules: list[Schedule] = []
    for i, inst in enumerate(instances):
        accepted_ids = np.flatnonzero(acc[i])
        assignments = {
            int(j): Assignment(int(j), int(mach[i, j]), float(startv[i, j]))
            for j in accepted_ids
        }
        rejected = {int(j) for j in np.flatnonzero(~acc[i])}
        schedule = Schedule(
            instance=inst,
            assignments=assignments,
            rejected=rejected,
            algorithm=rule.algorithm,
            meta={"model": "immediate", "backend": "batch"},
        )
        schedule.meta["stats"] = RunStats(
            model="immediate",
            algorithm=rule.algorithm,
            jobs=n,
            decisions=n,
            accepted=len(assignments),
            rejected=n - len(assignments),
            steps=n,
            accepted_load=float(schedule.accepted_load),
            sim_seconds=sim_seconds,
            audit_seconds=audit_seconds,
        )
        schedules.append(schedule)
    return schedules


def _audit_batch(rel, proc, dl, acc, startv, starts, ends, cnt, m) -> None:
    """Vectorised replica of ``Schedule.audit`` over the whole batch.

    Checks the same invariants (start after release, completion by the
    deadline, no overlap on any machine; coverage and machine range hold by
    construction).  On the never-expected failure it delegates to the
    scalar ``Schedule.audit`` path via an assertion so the violation is not
    silently swallowed — the equivalence suite exercises this against the
    scalar kernel's audit.
    """
    early = acc & ~fge(startv, rel)
    late = acc & ~fge(dl, startv + proc)
    cap = starts.shape[1]
    span = np.arange(max(cap - 1, 1))[None, : cap - 1]
    mask = span < (cnt[:, None] - 1)
    overlap = mask & (starts[:, 1:cap] < ends[:, : cap - 1] - TIME_EPS)
    if early.any() or late.any() or overlap.any():
        raise AssertionError(
            "batch audit failed: schedule invariant violated "
            f"(early={int(early.sum())}, late={int(late.sum())}, "
            f"overlap={int(overlap.sum())})"
        )


__all__ = ["ImmediateRule", "IMMEDIATE_RULES", "run_immediate_batch"]
