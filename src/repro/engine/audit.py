"""Commitment audit: cross-checks a schedule against its decision trace.

:meth:`Schedule.audit` already proves machine-level feasibility (Claim 1 as
an invariant).  This module adds the *commitment* checks that need the
trace:

* every decision in the trace corresponds to exactly one job of the
  instance, in submission order;
* accepted decisions match the schedule's assignments bit-for-bit — i.e.
  nothing was revised after the fact;
* decisions were made at the job's release date (immediate commitment, not
  delayed commitment);
* accepted start times never precede the decision time (no retroactive
  scheduling).
"""

from __future__ import annotations

from repro.engine.recorder import TraceRecorder
from repro.model.schedule import Schedule
from repro.utils.tolerances import TIME_EPS, feq, fge


class CommitmentAuditError(AssertionError):
    """The trace and schedule disagree, or a commitment rule was broken."""


def audit_run(schedule: Schedule, trace: TraceRecorder | None = None) -> None:
    """Full audit of a simulation run (schedule + commitment discipline).

    When *trace* is ``None`` the schedule's own ``meta['trace']`` is used;
    runs produced by :func:`repro.engine.simulator.simulate` always carry
    one.
    """
    schedule.audit()
    if trace is None:
        trace = schedule.meta.get("trace")
    if trace is None:
        raise CommitmentAuditError("no decision trace available for commitment audit")

    instance = schedule.instance
    if len(trace) != len(instance):
        raise CommitmentAuditError(
            f"trace has {len(trace)} decisions for {len(instance)} jobs"
        )
    for expected_seq, record in enumerate(trace):
        if record.seq != expected_seq:
            raise CommitmentAuditError(
                f"trace out of order: seq {record.seq} at position {expected_seq}"
            )
        job = instance[record.job.job_id]
        if not feq(record.time, job.release):
            raise CommitmentAuditError(
                f"job {job.job_id}: decision at t={record.time}, release is "
                f"{job.release} — immediate commitment requires deciding on arrival"
            )
        if record.accepted:
            assignment = schedule.assignments.get(job.job_id)
            if assignment is None:
                raise CommitmentAuditError(
                    f"job {job.job_id}: trace says accepted, schedule says rejected "
                    "— the decision was revised"
                )
            if assignment.machine != record.decision.machine or not feq(
                assignment.start, record.decision.start
            ):
                raise CommitmentAuditError(
                    f"job {job.job_id}: committed (m{record.decision.machine}, "
                    f"{record.decision.start}) but scheduled (m{assignment.machine}, "
                    f"{assignment.start}) — allocation was revised"
                )
            if not fge(assignment.start, record.time - TIME_EPS):
                raise CommitmentAuditError(
                    f"job {job.job_id}: start {assignment.start} precedes decision "
                    f"time {record.time}"
                )
        else:
            if job.job_id in schedule.assignments:
                raise CommitmentAuditError(
                    f"job {job.job_id}: trace says rejected, schedule says accepted "
                    "— the decision was revised"
                )
