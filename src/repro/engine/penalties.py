"""Commitment with penalties: revocable admission at a price (§1).

The paper's taxonomy lists *commitment with penalties* (Fung [15],
Thibault–Laforest [31]): the algorithm must answer immediately, but may
later revoke an accepted-but-not-yet-started job, losing a penalty
proportional to the revoked job's value.  The objective becomes

.. math:: \\sum_{\\text{completed}} p_j \\;-\\; \\phi \\sum_{\\text{revoked}} p_j

for a penalty factor :math:`\\phi \\ge 0`.

Mechanics
---------

* admission works exactly as in the immediate-commitment engine, except
  commitments are held in a *tentative* plan;
* a planned job may be revoked at any time strictly before its planned
  start; once execution begins the commitment is final;
* at the end of the run, every non-revoked planned job must have met its
  deadline (audited).

The event loop, validation and observability run on
:mod:`repro.engine.kernel` via :class:`PenaltiesCommitmentModel`; policy
bugs raise :class:`~repro.engine.kernel.SimulationError`.

The bundled :class:`RevocableGreedyPolicy` admits greedily and revokes a
planned job whenever a newly arrived job is worth more than the displaced
plan segment plus the penalty — the canonical profitable-swap rule.  At
:math:`\\phi = 0` it approaches the power of delayed commitment; as
:math:`\\phi \\to \\infty` it degenerates to plain greedy (benchmarked as
E13).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.engine.kernel import CommitmentModel, JobFeed, KernelContext, run_model
from repro.model.instance import Instance
from repro.model.job import Job
from repro.utils.tolerances import TIME_EPS, fge


@dataclass
class PlannedJob:
    """A tentatively committed job (machine + start), revocable pre-start."""

    job: Job
    machine: int
    start: float

    @property
    def end(self) -> float:
        """Planned completion time."""
        return self.start + self.job.processing

    def started(self, t: float) -> bool:
        """Whether execution has begun by time *t* (then irrevocable)."""
        return t >= self.start - TIME_EPS


@dataclass
class PenaltyOutcome:
    """Result of a penalties-model run."""

    instance: Instance
    algorithm: str
    phi: float
    completed: dict[int, PlannedJob] = field(default_factory=dict)
    revoked: set[int] = field(default_factory=set)
    rejected: set[int] = field(default_factory=set)
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def completed_load(self) -> float:
        """Load of jobs actually executed to completion."""
        return float(sum(p.job.processing for p in self.completed.values()))

    @property
    def penalty_paid(self) -> float:
        """Total penalty :math:`\\phi \\sum_{revoked} p_j`."""
        return float(
            self.phi * sum(self.instance[j].processing for j in self.revoked)
        )

    @property
    def net_value(self) -> float:
        """The model's objective: completed load minus penalties."""
        return self.completed_load - self.penalty_paid

    def audit(self) -> None:
        """Verify coverage, feasibility and non-overlap of completed jobs."""
        ids = {j.job_id for j in self.instance}
        decided = set(self.completed) | self.revoked | self.rejected
        if decided != ids:
            raise AssertionError(
                f"coverage broken: missing={sorted(ids - decided)} "
                f"extra={sorted(decided - ids)}"
            )
        per_machine: dict[int, list[tuple[float, float, int]]] = {}
        for jid, plan in self.completed.items():
            job = plan.job
            if not fge(plan.start, job.release):
                raise AssertionError(f"job {jid} starts before release")
            if not fge(job.deadline, plan.end):
                raise AssertionError(f"job {jid} misses its deadline")
            per_machine.setdefault(plan.machine, []).append((plan.start, plan.end, jid))
        for spans in per_machine.values():
            spans.sort()
            for (s1, e1, j1), (s2, e2, j2) in zip(spans, spans[1:]):
                if s2 < e1 - TIME_EPS:
                    raise AssertionError(f"jobs {j1} and {j2} overlap")


class PenaltyPolicy(ABC):
    """Policy interface for the penalties model."""

    name: str = "penalty-policy"

    def reset(self, machines: int, epsilon: float, phi: float) -> None:
        """Prepare for a fresh run."""

    @abstractmethod
    def on_submission(
        self, job: Job, t: float, plans: Sequence[PlannedJob]
    ) -> tuple[PlannedJob | None, list[int]]:
        """Decide *job* at time *t* given the current revocable *plans*.

        Returns ``(plan_or_None, revoked_ids)``: a tentative plan for the
        new job (or ``None`` to reject) plus ids of existing plans to
        revoke.  Revoked plans must not have started; the new plan must
        not overlap surviving plans on its machine.  The engine validates.
        """


class PenaltiesCommitmentModel(CommitmentModel):
    """Kernel strategy for the commitment-with-penalties model.

    One kernel step per submission; the revocable plan set is the model
    state and every mutation (revocation, new plan) is validated here
    before it lands.
    """

    model = "commitment-with-penalties"

    def __init__(self, policy: PenaltyPolicy, instance: Instance, phi: float) -> None:
        self.policy = policy
        self.instance = instance
        self.phi = phi
        self.algorithm = policy.name
        self.feed = JobFeed(instance.jobs)
        self.plans: dict[int, PlannedJob] = {}
        self.outcome: PenaltyOutcome | None = None

    def begin(self, ctx: KernelContext) -> None:
        self.policy.reset(self.instance.machines, self.instance.epsilon, self.phi)
        self.outcome = PenaltyOutcome(
            instance=self.instance, algorithm=self.policy.name, phi=self.phi
        )

    def _revoke(self, ctx: KernelContext, rid: int, t: float) -> None:
        victim = self.plans.get(rid)
        if victim is None:
            ctx.fail(f"policy revoked unknown plan {rid}", job_id=rid, time=t)
        if victim.started(t):
            ctx.fail(
                f"plan {rid} already started at {victim.start} <= {t}: "
                "post-start revocation is forbidden",
                job_id=rid,
                time=t,
            )
        del self.plans[rid]
        self.outcome.revoked.add(rid)
        ctx.revoked(t, rid, machine=victim.machine, start=victim.start)

    def _validate_plan(self, ctx: KernelContext, plan: PlannedJob, job: Job, t: float) -> None:
        if plan.job.job_id != job.job_id:
            ctx.fail("returned plan must be for the submitted job", job_id=job.job_id, time=t)
        if not 0 <= plan.machine < self.instance.machines:
            ctx.fail(f"machine {plan.machine} out of range", job_id=job.job_id, time=t)
        if not fge(plan.start, t):
            ctx.fail(
                f"plan start {plan.start} precedes decision time {t}",
                job_id=job.job_id,
                time=t,
            )
        if not plan.job.feasible_start(plan.start):
            ctx.fail(f"plan for job {job.job_id} infeasible", job_id=job.job_id, time=t)
        for other in self.plans.values():
            if other.machine == plan.machine and (
                plan.start < other.end - TIME_EPS and other.start < plan.end - TIME_EPS
            ):
                ctx.fail(
                    f"plan for job {job.job_id} overlaps surviving plan "
                    f"{other.job.job_id}",
                    job_id=job.job_id,
                    time=t,
                )

    def step(self, ctx: KernelContext) -> bool:
        job = self.feed.pop()
        if job is None:
            return False
        t = job.release
        ctx.submitted(job, t)
        plan, revoked_ids = self.policy.on_submission(job, t, list(self.plans.values()))
        for rid in revoked_ids:
            self._revoke(ctx, rid, t)
        if plan is None:
            self.outcome.rejected.add(job.job_id)
            ctx.decided(t, job.job_id, False)
            return True
        self._validate_plan(ctx, plan, job, t)
        self.plans[job.job_id] = plan
        ctx.decided(t, job.job_id, True, plan.machine, plan.start)
        return True

    def finish(self, ctx: KernelContext) -> None:
        self.outcome.completed = dict(self.plans)

    def build(self, ctx: KernelContext) -> PenaltyOutcome:
        return self.outcome


def simulate_with_penalties(
    policy: PenaltyPolicy, instance: Instance, phi: float, record_events: bool = False
) -> PenaltyOutcome:
    """Run *policy* on *instance* with penalty factor *phi* and audit."""
    if phi < 0:
        raise ValueError(f"penalty factor must be non-negative, got {phi}")
    return run_model(
        PenaltiesCommitmentModel(policy, instance, phi), record_events=record_events
    )


class RevocableGreedyPolicy(PenaltyPolicy):
    """Greedy with as-late-as-possible placement and profitable swaps.

    Placement is *latest-feasible-start*: a plan stays revocable until its
    start, so deferring starts maximises the option value of revocation
    (a plan that starts immediately can never be taken back).  When a new
    job fits nowhere, the policy considers dropping all not-yet-started
    plans of one machine: the swap executes iff the newcomer's value
    exceeds the victims' value plus the penalty,
    :math:`p_{new} > (1 + \\phi) \\sum p_{victims}`.
    """

    name = "revocable-greedy"

    def __init__(self) -> None:
        self._m = 0
        self._phi = 0.0

    def reset(self, machines: int, epsilon: float, phi: float) -> None:
        self._m = machines
        self._phi = phi

    # -- helpers --------------------------------------------------------
    def _machine_plans(self, plans: Sequence[PlannedJob], machine: int) -> list[PlannedJob]:
        return sorted(
            (p for p in plans if p.machine == machine), key=lambda p: p.start
        )

    def _latest_start(
        self, job: Job, t: float, busy: list[PlannedJob]
    ) -> float | None:
        """Latest feasible start on a machine with the given plan set."""
        earliest = max(t, job.release)
        # Gaps between consecutive plans, scanned from the back.
        edges = [earliest] + [p.end for p in busy]
        uppers = [p.start for p in busy] + [float("inf")]
        best = None
        for lo, hi in zip(edges, uppers):
            lo = max(lo, earliest)
            start = min(job.deadline, hi) - job.processing
            if start >= lo - TIME_EPS and fge(job.deadline, start + job.processing):
                if best is None or start > best:
                    best = max(start, lo)
        return best

    def on_submission(self, job, t, plans):
        # 1) plain placement: pick the machine offering the latest start.
        best: tuple[float, int] | None = None
        for machine in range(self._m):
            busy = self._machine_plans(plans, machine)
            start = self._latest_start(job, t, busy)
            if start is not None and (best is None or start > best[0]):
                best = (start, machine)
        if best is not None:
            return PlannedJob(job, best[1], best[0]), []

        # 2) profitable swap: drop all not-yet-started plans on the machine
        #    with the cheapest removable load, if the newcomer pays for it.
        options = []
        for machine in range(self._m):
            busy = self._machine_plans(plans, machine)
            removable = [p for p in busy if not p.started(t)]
            if not removable:
                continue
            keep = [p for p in busy if p.started(t)]
            start = self._latest_start(job, t, keep)
            if start is None:
                continue
            cost = sum(p.job.processing for p in removable)
            options.append((cost, machine, start, removable))
        if options:
            cost, machine, start, removable = min(options, key=lambda o: o[0])
            if job.processing > (1.0 + self._phi) * cost + TIME_EPS:
                return (
                    PlannedJob(job, machine, start),
                    [p.job.job_id for p in removable],
                )
        return None, []
