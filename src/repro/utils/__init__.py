"""Shared low-level utilities: tolerances, RNG helpers, interval arithmetic.

These helpers concentrate all floating-point comparison policy and random
number handling in one place so that the rest of the library can stay
deterministic and auditable.
"""

from repro.utils.tolerances import (
    TIME_EPS,
    RATIO_EPS,
    feq,
    fge,
    fgt,
    fle,
    flt,
    is_close,
    snap,
    vsnap,
)
from repro.utils.rng import make_rng, spawn_rngs, rng_from_any
from repro.utils.intervals import (
    Interval,
    intersect,
    overlap_length,
    merge_intervals,
    total_length,
    subtract_intervals,
    covering_gaps,
)

__all__ = [
    "TIME_EPS",
    "RATIO_EPS",
    "feq",
    "fge",
    "fgt",
    "fle",
    "flt",
    "is_close",
    "snap",
    "vsnap",
    "make_rng",
    "spawn_rngs",
    "rng_from_any",
    "Interval",
    "intersect",
    "overlap_length",
    "merge_intervals",
    "total_length",
    "subtract_intervals",
    "covering_gaps",
]
