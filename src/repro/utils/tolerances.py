"""Floating-point comparison policy for the scheduling simulator.

All simulated quantities (release dates, processing times, deadlines,
machine loads) are non-negative floats.  Competitive-analysis constructions
frequently place a job's deadline *exactly* on an admission threshold, so
the comparison direction at equality matters.  Every module in this library
routes time comparisons through the helpers below so the policy lives in a
single place:

* ``TIME_EPS`` — absolute tolerance for time-valued comparisons.  Simulated
  horizons in this library stay far below 1e9, so an absolute tolerance of
  1e-9 keeps at least six significant digits of head-room for adversarial
  constructions that separate events by ``beta``-sized gaps.
* ``RATIO_EPS`` — tolerance used when comparing measured competitive ratios
  against theoretical bounds (looser, since the ratios stack several
  divisions).

The predicate names follow Fortran-style two-letter mnemonics: ``feq``
(equal), ``fle`` (less-or-equal), ``flt`` (strictly less), ``fge``, ``fgt``.
"""

from __future__ import annotations

import math

#: Absolute tolerance for comparisons between simulated time values.
TIME_EPS: float = 1e-9

#: Absolute tolerance for comparisons between competitive ratios.
RATIO_EPS: float = 1e-6


def feq(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return ``True`` when *a* and *b* are equal up to tolerance *eps*."""
    return abs(a - b) <= eps


def fle(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return ``True`` when ``a <= b`` holds up to tolerance *eps*."""
    return a <= b + eps


def flt(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return ``True`` when ``a < b`` holds by more than tolerance *eps*."""
    return a < b - eps


def fge(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return ``True`` when ``a >= b`` holds up to tolerance *eps*."""
    return a >= b - eps


def fgt(a: float, b: float, eps: float = TIME_EPS) -> bool:
    """Return ``True`` when ``a > b`` holds by more than tolerance *eps*."""
    return a > b + eps


def is_close(a: float, b: float, rel: float = 1e-9, abs_: float = TIME_EPS) -> bool:
    """Relative-or-absolute closeness, mirroring :func:`math.isclose`."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_)


def snap(x: float, eps: float = TIME_EPS) -> float:
    """Snap *x* to zero when it is within *eps* of zero.

    Machine loads are repeatedly decremented as simulated time advances;
    snapping prevents ``-1e-17`` style residues from flipping
    ``load > 0`` tests.
    """
    return 0.0 if abs(x) <= eps else x


def vsnap(x, eps: float = TIME_EPS):
    """Vectorised :func:`snap` for NumPy arrays (used by the batch kernel).

    ``snap`` relies on Python's ``bool(abs(x) <= eps)`` and therefore cannot
    take arrays.  This variant applies the identical elementwise rule — any
    entry within *eps* of zero becomes exactly ``0.0`` — so scalar and batch
    backends agree bit-for-bit on snapped loads.  The comparison predicates
    (:func:`fge`, :func:`fle`, …) are already elementwise-safe and are shared
    verbatim by both backends.
    """
    import numpy as np

    x = np.asarray(x, dtype=float)
    return np.where(np.abs(x) <= eps, 0.0, x)
