"""Seeded random-number-generator helpers.

Every stochastic component of the library (workload generators, the
randomized classify-and-select algorithm, property-test data) takes either
an integer seed or an existing :class:`numpy.random.Generator`.  These
helpers normalise that convention and provide deterministic *independent*
child streams via NumPy's ``SeedSequence.spawn`` so that parallel sweeps
stay reproducible regardless of evaluation order — the standard
best-practice for HPC-style parameter sweeps.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Default seed used when callers pass ``None`` explicitly but want
#: reproducibility across runs anyway.
DEFAULT_SEED: int = 0x5EED_C0DE


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed.

    ``None`` yields the fixed :data:`DEFAULT_SEED` — this library prefers
    reproducible-by-default behaviour over OS entropy because nearly every
    caller is a benchmark or a test.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def rng_from_any(source: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise *source* into a Generator.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (default seed).
    """
    if isinstance(source, np.random.Generator):
        return source
    return make_rng(source)


def spawn_rngs(seed: int | None, n: int) -> list[np.random.Generator]:
    """Derive *n* statistically independent child generators from *seed*.

    Uses ``SeedSequence.spawn`` so child streams do not overlap even for
    adjacent seeds; suited for embarrassingly parallel sweeps where each
    grid point needs its own stream.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    ss = np.random.SeedSequence(DEFAULT_SEED if seed is None else seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def sample_indices(
    rng: np.random.Generator, n: int, k: int, replace: bool = False
) -> np.ndarray:
    """Sample *k* indices from ``range(n)`` (thin, typed wrapper)."""
    return rng.choice(n, size=k, replace=replace)


def shuffled(rng: np.random.Generator, items: Sequence) -> list:
    """Return a new list with *items* in a random order."""
    order = rng.permutation(len(items))
    return [items[i] for i in order]


def interleave_seeds(seeds: Iterable[int]) -> int:
    """Fold an iterable of seeds into a single deterministic seed.

    Used by sweep descriptors to derive one seed per (grid point,
    repetition) pair without collisions between neighbouring cells.
    """
    acc = 0x9E3779B97F4A7C15
    for s in seeds:
        acc ^= (s + 0x9E3779B97F4A7C15 + ((acc << 6) & 0xFFFFFFFFFFFFFFFF) + (acc >> 2))
        acc &= 0xFFFFFFFFFFFFFFFF
    return acc
