"""Half-open interval arithmetic on the simulated time axis.

Machine busy periods, covered intervals (Definition 1/2 of the paper) and
adversarial overlap windows (Lemma 1) are all half-open intervals
``[start, end)``.  This module provides the small set of exact operations
the rest of the library needs; everything returns plain tuples / lists so
call sites stay allocation-light.
"""

from __future__ import annotations

from typing import NamedTuple, Sequence

from repro.utils.tolerances import TIME_EPS


class Interval(NamedTuple):
    """A half-open interval ``[start, end)`` on the time axis."""

    start: float
    end: float

    @property
    def length(self) -> float:
        """Non-negative length of the interval (0 for empty/degenerate)."""
        return max(0.0, self.end - self.start)

    @property
    def midpoint(self) -> float:
        """Arithmetic midpoint of the interval."""
        return 0.5 * (self.start + self.end)

    def contains(self, t: float, eps: float = TIME_EPS) -> bool:
        """Whether time *t* lies in ``[start, end)`` up to tolerance."""
        return self.start - eps <= t < self.end + eps

    def is_empty(self, eps: float = TIME_EPS) -> bool:
        """Whether the interval has (numerically) no interior."""
        return self.end - self.start <= eps


def intersect(a: Interval, b: Interval) -> Interval:
    """Intersection of two intervals (possibly empty, never negative)."""
    lo = max(a.start, b.start)
    hi = min(a.end, b.end)
    return Interval(lo, max(lo, hi))


def overlap_length(a: Interval, b: Interval) -> float:
    """Length of the intersection of *a* and *b*."""
    return intersect(a, b).length


def merge_intervals(intervals: Sequence[Interval], eps: float = TIME_EPS) -> list[Interval]:
    """Merge overlapping or eps-adjacent intervals into a sorted disjoint list."""
    nonempty = [iv for iv in intervals if iv.length > eps]
    if not nonempty:
        return []
    nonempty.sort(key=lambda iv: (iv.start, iv.end))
    merged = [nonempty[0]]
    for iv in nonempty[1:]:
        last = merged[-1]
        if iv.start <= last.end + eps:
            if iv.end > last.end:
                merged[-1] = Interval(last.start, iv.end)
        else:
            merged.append(iv)
    return merged


def total_length(intervals: Sequence[Interval], eps: float = TIME_EPS) -> float:
    """Total length of the union of *intervals*."""
    return sum(iv.length for iv in merge_intervals(intervals, eps))


def subtract_intervals(
    base: Interval, holes: Sequence[Interval], eps: float = TIME_EPS
) -> list[Interval]:
    """Return ``base`` minus the union of *holes*, as a disjoint sorted list."""
    remaining: list[Interval] = []
    cursor = base.start
    for hole in merge_intervals(holes, eps):
        clipped = intersect(base, hole)
        if clipped.is_empty(eps):
            continue
        if clipped.start > cursor + eps:
            remaining.append(Interval(cursor, clipped.start))
        cursor = max(cursor, clipped.end)
    if base.end > cursor + eps:
        remaining.append(Interval(cursor, base.end))
    return remaining


def covering_gaps(
    span: Interval, busy: Sequence[Interval], eps: float = TIME_EPS
) -> list[Interval]:
    """Gaps of *span* not covered by *busy* — alias of :func:`subtract_intervals`.

    Named separately because call sites in the covered-interval analysis of
    the paper read better with this vocabulary (Definition 1: an interval is
    *uncovered* when it intersects no rejected job's ``[r, d)`` window).
    """
    return subtract_intervals(span, busy, eps)
