"""Live admission service: the Threshold algorithm as a request loop.

``repro serve`` productionizes the paper's admission controller: a
long-running asyncio service that accepts job submissions over HTTP and a
line-delimited-JSON socket, answers each with an immediate, irrevocable
commit/reject decision made against live per-machine load state, streams
decisions and load metrics to subscribers, and journals every decision
through the sealed append-only machinery so a crashed server resumes
bit-identically (``repro serve --resume``).

The decision engine is :mod:`repro.engine.controller` — the same
``CommitmentModel`` strategy the batch ``simulate`` path runs, driven one
step per request — so a served decision log replays byte-identically
through the offline engine (CI enforces this).  See ``docs/serving.md``.
"""

from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decision_message,
    decode_line,
    encode_line,
    job_from_message,
)
from repro.serve.snapshotter import (
    DecisionJournal,
    DecisionJournalError,
    DecisionLogState,
    load_decision_journal,
    replay_decision_log,
    verify_decision_log,
)
from repro.serve.server import AdmissionServer, ServeConfig, run_server
from repro.serve.loadgen import LoadReport, drive_instance, run_bench, run_load

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_line",
    "encode_line",
    "decision_message",
    "job_from_message",
    "DecisionJournal",
    "DecisionJournalError",
    "DecisionLogState",
    "load_decision_journal",
    "replay_decision_log",
    "verify_decision_log",
    "AdmissionServer",
    "ServeConfig",
    "run_server",
    "LoadReport",
    "drive_instance",
    "run_bench",
    "run_load",
]
