"""Bundled load generator: drive an admission server with workload jobs.

``repro serve-bench`` uses this module to push the jobs of any
:class:`~repro.model.instance.Instance` — typically an MMPP burst from
:func:`repro.workloads.arrivals.mmpp_instance` or a trace replay — over
the NDJSON socket in a pipelined window, measuring per-offer decision
latency (p50/p99/p999), sustained decisions/sec, and (when self-hosting
the server in-process) the graceful-shutdown drain time.

Offers carry the client's ``tag`` so latency is measured per request even
under pipelining; the server decides in arrival order on one connection,
which also keeps the served decision log replayable offline.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

from repro.model.instance import Instance
from repro.serve.protocol import decode_line, encode_line
from repro.serve.server import AdmissionServer, ServeConfig


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]); 0.0 on empty input."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[min(len(ordered), int(rank)) - 1]


@dataclass
class LoadReport:
    """What one load-generation run measured."""

    jobs: int = 0
    accepted: int = 0
    rejected: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    decisions_per_second: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_p999_ms: float = 0.0
    latency_max_ms: float = 0.0
    #: Graceful-shutdown drain time (self-hosted runs only).
    drain_seconds: float | None = None
    final_loads: list[float] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        return {
            "jobs": self.jobs,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "errors": self.errors,
            "wall_seconds": self.wall_seconds,
            "decisions_per_second": self.decisions_per_second,
            "latency_ms": {
                "p50": self.latency_p50_ms,
                "p99": self.latency_p99_ms,
                "p999": self.latency_p999_ms,
                "max": self.latency_max_ms,
            },
            "drain_seconds": self.drain_seconds,
            "final_loads": self.final_loads,
        }


async def drive_instance(
    host: str,
    port: int,
    instance: Instance,
    *,
    window: int = 64,
) -> LoadReport:
    """Pipeline the instance's jobs over the socket; measure latencies.

    Keeps up to *window* offers in flight on one connection (the server
    still decides strictly in submission order), records wall-clock
    round-trip latency per offer, and finishes with a ``stats`` request so
    the report carries the server's final per-machine loads.
    """
    reader, writer = await asyncio.open_connection(host, port)
    report = LoadReport(jobs=len(instance.jobs))
    send_times: dict[int, float] = {}
    latencies: list[float] = []
    gate = asyncio.Semaphore(window)

    async def pump() -> None:
        for i, job in enumerate(instance.jobs):
            await gate.acquire()
            message = {
                "op": "offer",
                "tag": i,
                "job": {
                    "release": job.release,
                    "processing": job.processing,
                    "deadline": job.deadline,
                },
            }
            if job.weight is not None:
                message["job"]["weight"] = job.weight
            send_times[i] = time.perf_counter()
            writer.write(encode_line(message))
            await writer.drain()

    t0 = time.perf_counter()
    pump_task = asyncio.create_task(pump())
    try:
        for _ in range(len(instance.jobs)):
            raw = await reader.readline()
            if not raw:
                raise ConnectionError("server closed the connection mid-run")
            now = time.perf_counter()
            reply = decode_reply(raw)
            tag = reply.get("tag")
            if tag in send_times:
                latencies.append(now - send_times.pop(tag))
            if reply.get("ok") and reply.get("kind") == "decision":
                if reply.get("accepted"):
                    report.accepted += 1
                else:
                    report.rejected += 1
            else:
                report.errors += 1
            gate.release()
        await pump_task
        writer.write(encode_line({"op": "stats"}))
        await writer.drain()
        stats_raw = await reader.readline()
        if stats_raw:
            report.final_loads = list(decode_reply(stats_raw).get("loads", []))
    finally:
        pump_task.cancel()
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
    report.wall_seconds = time.perf_counter() - t0
    decided = report.accepted + report.rejected
    if report.wall_seconds > 0:
        report.decisions_per_second = decided / report.wall_seconds
    millis = [1000.0 * s for s in latencies]
    report.latency_p50_ms = percentile(millis, 50)
    report.latency_p99_ms = percentile(millis, 99)
    report.latency_p999_ms = percentile(millis, 99.9)
    report.latency_max_ms = max(millis) if millis else 0.0
    return report


def decode_reply(raw: bytes) -> dict[str, Any]:
    """Parse one reply line (replies have no ``op``, so not decode_line)."""
    import json

    reply = json.loads(raw.decode("utf-8"))
    if not isinstance(reply, dict):
        raise ValueError("reply must be a JSON object")
    return reply


def run_load(
    host: str, port: int, instance: Instance, *, window: int = 64
) -> LoadReport:
    """Synchronous wrapper: drive an already-running server."""
    return asyncio.run(drive_instance(host, port, instance, window=window))


def run_bench(
    config: ServeConfig, instance: Instance, *, window: int = 64
) -> tuple[LoadReport, AdmissionServer]:
    """Self-hosted benchmark: start, drive, drain — all in one process.

    Brings the server up on ephemeral ports inside a private event loop,
    drives the instance through the socket, then performs a full graceful
    shutdown so the report includes the measured drain time (and, if the
    config names a decision log, the sealed journal is left behind for
    :func:`repro.serve.snapshotter.verify_decision_log`).
    """

    async def main() -> tuple[LoadReport, AdmissionServer]:
        server = AdmissionServer(config)
        await server.start()
        assert server.socket_port is not None
        try:
            report = await drive_instance(
                config.host, server.socket_port, instance, window=window
            )
        finally:
            server.request_shutdown()
            await server.serve_until_shutdown()
        report.drain_seconds = server.drain_seconds
        return report, server

    return asyncio.run(main())


__all__ = [
    "LoadReport",
    "drive_instance",
    "percentile",
    "run_bench",
    "run_load",
]
