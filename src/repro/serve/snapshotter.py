"""Durable decision log: crash recovery through the sealed-journal machinery.

Every decision the server makes is appended to an append-only JSONL
journal *before* the reply leaves the process, using the same primitives
as the sweep checkpoint journal (:mod:`repro.workloads.journal`): one
self-contained record per line with a content CRC, flushed+fsync'd per
append, a fingerprinted header binding the log to its service
configuration, and a SHA-256 seal record on clean shutdown.  The log is
simultaneously:

* the **snapshot** — deterministic policies rebuild their exact state by
  replaying the logged jobs (``repro serve --resume``), and resume
  *verifies* every replayed decision against the record, so a recovered
  server cannot silently fork its history;
* the **served request log** — :func:`verify_decision_log` replays it
  through the offline batch engine (:func:`repro.engine.simulator.simulate`)
  and asserts bit-identical decisions, the contract CI enforces.

Record shapes::

    {"kind": "header", "version": 1, "service": {...}}
    {"kind": "decision", "seq": 0, "job": [r, p, d, w],
     "dec": [accepted, machine, start], "crc": "9a0b1c2d"}
    {"kind": "seal", ...}                      # workloads.journal.make_seal
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import IO, Any

from repro.engine.controller import (
    AdmissionController,
    decision_to_payload,
    job_from_payload,
    job_to_payload,
    open_session,
)
from repro.model.instance import Instance
from repro.model.job import Job
from repro.workloads.journal import _split_lines, fingerprint_sha256, make_seal

#: Decision-log format version; bumped on incompatible record changes.
DECISION_LOG_VERSION = 1


class DecisionJournalError(RuntimeError):
    """A decision log is unreadable, corrupt or belongs to another service."""


def service_fingerprint(
    algorithm: str,
    machines: int,
    epsilon: float,
    kwargs: dict[str, Any] | None = None,
    name: str = "",
) -> dict[str, Any]:
    """Structural identity of a service (what the log's header binds to)."""
    return {
        "algorithm": algorithm,
        "machines": int(machines),
        "epsilon": float(epsilon),
        "kwargs": dict(kwargs or {}),
        "name": name,
    }


def decision_crc(seq: int, job: list[Any], dec: list[Any]) -> str:
    """8-hex-digit content CRC of one decision record."""
    blob = json.dumps([int(seq), job, dec], allow_nan=False, separators=(",", ":"))
    return format(zlib.crc32(blob.encode("utf-8")) & 0xFFFFFFFF, "08x")


@dataclass
class DecisionLogState:
    """Everything :func:`load_decision_journal` recovers from disk."""

    service: dict[str, Any]
    #: job payloads in submission order (see ``job_to_payload``).
    jobs: list[list[Any]] = field(default_factory=list)
    #: decision payloads, aligned with ``jobs``.
    decisions: list[list[Any]] = field(default_factory=list)
    truncated_tail: bool = False
    valid_bytes: int = 0
    sealed: bool = False

    def instance(self) -> Instance:
        """The served request log as an offline :class:`Instance`."""
        return Instance(
            [job_from_payload(p) for p in self.jobs],
            machines=int(self.service["machines"]),
            epsilon=float(self.service["epsilon"]),
            name=self.service.get("name", ""),
        )

    def restore_session(self, *, verify: bool = True) -> AdmissionController:
        """Rebuild the live session by deterministic replay of the log."""
        snapshot = {
            "version": 1,
            "algorithm": self.service["algorithm"],
            "kwargs": dict(self.service.get("kwargs", {})),
            "machines": int(self.service["machines"]),
            "epsilon": float(self.service["epsilon"]),
            "name": self.service.get("name", ""),
            "jobs": self.jobs,
            "decisions": self.decisions,
        }
        return AdmissionController.restore(snapshot, verify=verify)


def load_decision_journal(path: str | os.PathLike[str]) -> DecisionLogState:
    """Read a decision log back; tolerates one truncated trailing line.

    A mid-file corruption (CRC mismatch, undecodable record) raises
    :class:`DecisionJournalError` — unlike sweep cells, decisions are an
    *ordered* history, so a hole cannot simply be recomputed around.
    """
    path = os.fspath(path)
    with open(path, "rb") as fh:
        data = fh.read()
    lines = _split_lines(data)
    if not lines:
        raise DecisionJournalError(f"{path}: decision log is empty")
    state: DecisionLogState | None = None
    truncated = False
    valid_bytes = 0
    sealed = False
    import hashlib

    hasher = hashlib.sha256()
    for i, (raw, end) in enumerate(lines):
        try:
            record = json.loads(raw.decode("utf-8"))
            if not isinstance(record, dict):
                raise ValueError("record is not a JSON object")
        except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
            if i == len(lines) - 1:
                truncated = True  # hard kill mid-append; decision re-served
                break
            raise DecisionJournalError(
                f"{path}: corrupt decision record on line {i + 1}: {exc}"
            ) from exc
        kind = record.get("kind")
        if kind == "header":
            if record.get("version") != DECISION_LOG_VERSION:
                raise DecisionJournalError(
                    f"{path}: decision-log version {record.get('version')!r} "
                    f"is not supported (expected {DECISION_LOG_VERSION})"
                )
            state = DecisionLogState(service=record["service"])
        elif kind == "decision":
            if state is None:
                raise DecisionJournalError(f"{path}: decision before header")
            try:
                seq = int(record["seq"])
                job = list(record["job"])
                dec = list(record["dec"])
                crc = record["crc"]
            except (KeyError, TypeError, ValueError) as exc:
                raise DecisionJournalError(
                    f"{path}: malformed decision record on line {i + 1}: {exc}"
                ) from exc
            if seq != len(state.jobs):
                raise DecisionJournalError(
                    f"{path}: decision sequence broken on line {i + 1}: "
                    f"got seq {seq}, expected {len(state.jobs)}"
                )
            if crc != decision_crc(seq, job, dec):
                raise DecisionJournalError(
                    f"{path}: decision CRC mismatch on line {i + 1} (seq {seq}) "
                    "— the log's bytes were altered after writing"
                )
            state.jobs.append(job)
            state.decisions.append(dec)
            sealed = False
        elif kind == "seal":
            if state is None:
                raise DecisionJournalError(f"{path}: seal precedes the header")
            problems = []
            if record.get("stream_sha256") != hasher.hexdigest():
                problems.append("stream hash mismatch")
            if record.get("fingerprint_sha256") != fingerprint_sha256(
                state.service
            ):
                problems.append("fingerprint digest mismatch")
            if problems:
                raise DecisionJournalError(
                    f"{path}: seal verification failed on line {i + 1}: "
                    + "; ".join(problems)
                )
            sealed = i == len(lines) - 1
        else:
            raise DecisionJournalError(
                f"{path}: unknown decision-log record kind {kind!r}"
            )
        hasher.update(raw)
        valid_bytes = end
    if state is None:
        raise DecisionJournalError(f"{path}: decision log has no header record")
    state.truncated_tail = truncated
    state.valid_bytes = valid_bytes
    state.sealed = sealed
    return state


class DecisionJournal:
    """Writer handle for the append-only decision log.

    One :meth:`record_decision` per served request, flushed and fsync'd
    before the reply is sent — once the client hears "committed", the
    decision survives a crash.  :meth:`seal` closes a clean shutdown with
    a verifiable SHA-256 seal (same shape as sweep-journal seals).
    """

    def __init__(self, path: str, fh: IO[str], service: dict[str, Any]) -> None:
        self.path = path
        self._fh = fh
        self.service = service
        import hashlib

        self._hasher = hashlib.sha256()
        self._records = 0
        self.decisions = 0

    @classmethod
    def create(
        cls, path: str | os.PathLike[str], service: dict[str, Any]
    ) -> "DecisionJournal":
        """Start a fresh log; refuses to clobber an existing non-empty one."""
        try:
            fh = open(path, "x", encoding="utf-8")
        except FileExistsError:
            if os.path.getsize(path) > 0:
                raise DecisionJournalError(
                    f"{os.fspath(path)}: decision log already exists; resume "
                    "from it (repro serve --resume) or delete it explicitly"
                ) from None
            fh = open(path, "w", encoding="utf-8")
        journal = cls(os.fspath(path), fh, service)
        journal._append(
            {"kind": "header", "version": DECISION_LOG_VERSION, "service": service}
        )
        return journal

    @classmethod
    def resume(
        cls, path: str | os.PathLike[str], service: dict[str, Any]
    ) -> tuple["DecisionJournal", DecisionLogState]:
        """Reopen *path* for append, returning the recovered state.

        The service fingerprint must match the header (a log from a
        different algorithm/fleet must not be extended), and a truncated
        trailing line (hard kill mid-append) is chopped off before the
        file is reopened, exactly like the sweep journal's resume.
        """
        state = load_decision_journal(path)
        if state.service != service:
            diffs = [
                key
                for key in sorted(set(state.service) | set(service))
                if state.service.get(key) != service.get(key)
            ]
            raise DecisionJournalError(
                f"{os.fspath(path)}: decision log was written by a different "
                f"service (mismatched fields: {', '.join(diffs)})"
            )
        if state.truncated_tail:
            with open(path, "r+b") as trunc:
                trunc.truncate(state.valid_bytes)
        fh = open(path, "a", encoding="utf-8")
        journal = cls(os.fspath(path), fh, service)
        journal._prime_from_disk()
        return journal, state

    def _prime_from_disk(self) -> None:
        with open(self.path, "rb") as fh:
            data = fh.read()
        for raw, _ in _split_lines(data):
            self._hasher.update(raw)
            self._records += 1
            try:
                if json.loads(raw.decode("utf-8")).get("kind") == "decision":
                    self.decisions += 1
            except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
                pass

    def record_decision(self, seq: int, job: Job, decision: Any) -> None:
        """Append one served decision (durable once this returns)."""
        job_payload = job_to_payload(job)
        dec_payload = decision_to_payload(decision)
        self._append(
            {
                "kind": "decision",
                "seq": int(seq),
                "job": job_payload,
                "dec": dec_payload,
                "crc": decision_crc(int(seq), job_payload, dec_payload),
            }
        )
        self.decisions += 1

    def seal(self) -> None:
        """Close a clean shutdown with a covering seal (stays resumable)."""
        self._append(
            make_seal(
                stream_sha256=self._hasher.hexdigest(),
                records=self._records,
                cells=self.decisions,
                fingerprint=self.service,
            )
        )

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def _append(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, allow_nan=False) + "\n"
        self._fh.write(line)
        self._fh.flush()
        self._hasher.update(line.encode("utf-8"))
        self._records += 1
        try:
            os.fsync(self._fh.fileno())
        except (OSError, ValueError):  # pragma: no cover - mock sinks
            pass


# ---------------------------------------------------------------------------
# offline replay: the bit-identity contract
# ---------------------------------------------------------------------------


def replay_decision_log(path: str | os.PathLike[str]) -> Any:
    """Replay a served log through the *batch* engine, returning the schedule.

    Builds the offline :class:`Instance` from the logged jobs and runs the
    logged algorithm through :func:`repro.engine.simulator.simulate` — the
    run-to-completion path every sweep and benchmark uses.
    """
    from repro.baselines.registry import make_algorithm
    from repro.engine.simulator import simulate

    state = load_decision_journal(path)
    policy = make_algorithm(
        state.service["algorithm"], **state.service.get("kwargs", {})
    )
    return simulate(policy, state.instance())


def verify_decision_log(path: str | os.PathLike[str]) -> tuple[bool, str]:
    """Check that the served log replays bit-identical through ``simulate``.

    Returns ``(ok, detail)``: every served decision must equal — as exact
    floats — the decision the offline batch engine makes for the same job
    sequence.  This is the acceptance gate CI runs against the serve smoke
    log.
    """
    state = load_decision_journal(path)
    schedule = replay_decision_log(path)
    offline = [
        decision_to_payload(record.decision)
        for record in schedule.meta["trace"]
    ]
    if len(offline) != len(state.decisions):
        return False, (
            f"decision count mismatch: served {len(state.decisions)}, "
            f"offline replay {len(offline)}"
        )
    for i, (served, replayed) in enumerate(zip(state.decisions, offline)):
        if served != replayed:
            return False, (
                f"decision {i} diverged: served {served}, offline {replayed}"
            )
    return True, (
        f"{len(offline)} served decision(s) replay bit-identical through "
        "the batch engine"
    )
