"""Wire protocol of the admission service.

Both transports speak the same JSON message shapes: the socket listener
frames them as line-delimited JSON (one request line in, one reply line
out, plus pushed events for ``watch`` subscribers), the HTTP listener
maps them onto ``POST /offer``, ``GET /stats``, ``GET /healthz`` and
``POST /shutdown``.  Full request/reply schemas are documented in
``docs/serving.md``; this module owns encode/decode and the
job-normalisation rules so the server, the load generator and the tests
cannot drift apart.

Requests (socket form)::

    {"op": "offer", "job": {"release": 1.5, "processing": 2.0,
                            "deadline": 6.0}, "tag": "req-17"}
    {"op": "offer", "job": {"processing": 2.0, "slack": 0.25}}   # stamped
    {"op": "stats"}
    {"op": "watch"}
    {"op": "ping"}
    {"op": "shutdown"}

A job may be *absolute* (``release``/``processing``/``deadline``) or
*relative* (``processing`` plus ``slack``): relative jobs are stamped
with the server's monotonic arrival clock and given the tight deadline
``release + (1 + slack) * processing``.  Either way the stamped job is
what enters the decision log, so replay is deterministic.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.engine.policy import Decision
from repro.model.job import Job

#: Protocol version announced in ``hello``/``stats`` replies.
PROTOCOL_VERSION = 1

#: Operations a client may request.
OPS = ("offer", "stats", "watch", "ping", "shutdown")


class ProtocolError(ValueError):
    """A request line or message violates the protocol."""


def encode_line(message: Mapping[str, Any]) -> bytes:
    """Serialise one message as a newline-terminated JSON line."""
    return (json.dumps(message, allow_nan=False) + "\n").encode("utf-8")


def decode_line(raw: bytes | str) -> dict[str, Any]:
    """Parse one request line; raises :class:`ProtocolError` on garbage."""
    if isinstance(raw, bytes):
        try:
            raw = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not UTF-8: {exc}") from exc
    try:
        message = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {list(OPS)}")
    return message


def job_from_message(
    payload: Any, *, clock: float, epsilon: float
) -> Job:
    """Normalise an ``offer`` job payload into a :class:`Job`.

    Absolute jobs pass through unchanged; relative jobs (``processing``
    plus optional ``slack``, default the service's ``epsilon``) are
    released at ``clock`` with the tight deadline.  Validation errors
    surface as :class:`ProtocolError` so the server can reply instead of
    dying.
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError("offer needs a 'job' object")
    try:
        processing = float(payload["processing"])
    except (KeyError, TypeError, ValueError):
        raise ProtocolError("job needs a numeric 'processing' field") from None
    weight = payload.get("weight")
    try:
        if "deadline" in payload or "release" in payload:
            release = float(payload.get("release", clock))
            deadline = float(payload["deadline"])
        else:
            release = clock
            slack = float(payload.get("slack", epsilon))
            deadline = release + (1.0 + slack) * processing
        return Job(
            release,
            processing,
            deadline,
            weight=None if weight is None else float(weight),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"invalid job: {exc}") from exc


def decision_message(
    seq: int,
    job: Job,
    decision: Decision,
    loads: list[float],
    tag: Any = None,
) -> dict[str, Any]:
    """The reply/event message for one decision (includes load metrics)."""
    message: dict[str, Any] = {
        "ok": True,
        "kind": "decision",
        "seq": seq,
        "job_id": job.job_id,
        "t": job.release,
        "accepted": bool(decision.accepted),
        "machine": decision.machine,
        "start": decision.start,
        "loads": loads,
    }
    if tag is not None:
        message["tag"] = tag
    return message


def error_message(detail: str, tag: Any = None) -> dict[str, Any]:
    """An error reply (the connection survives; the request is dropped)."""
    message: dict[str, Any] = {"ok": False, "kind": "error", "error": detail}
    if tag is not None:
        message["tag"] = tag
    return message
