"""The asyncio admission server behind ``repro serve``.

One process, one event loop, one :class:`~repro.engine.controller.
AdmissionController` session.  Two listeners share the session:

* a **socket** listener speaking line-delimited JSON (one request line in,
  one reply line out; ``watch`` upgrades the connection to a decision
  stream) — the fast path the load generator drives;
* an **HTTP/1.1** listener mapping the same messages onto ``POST /offer``,
  ``GET /stats``, ``GET /healthz`` and ``POST /shutdown`` — hand-rolled
  over asyncio streams so the service needs nothing beyond the standard
  library.

Decisions are made *synchronously inside one event-loop tick*: decode →
``session.offer`` → journal append (flush + fsync) → reply, with no
``await`` between deciding and journalling, so the single-threaded loop
serialises all offers and a crash can never acknowledge a decision it did
not persist.  On SIGINT/SIGTERM the server stops accepting, drains open
connections, seals the decision log and reports the drain time.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Any, IO

from repro.engine.controller import AdmissionController, open_session
from repro.engine.kernel import SimulationError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decision_message,
    decode_line,
    encode_line,
    error_message,
    job_from_message,
)
from repro.serve.snapshotter import (
    DecisionJournal,
    DecisionJournalError,
    service_fingerprint,
)

#: Cap on one request line (1 MiB is far beyond any legal offer).
MAX_LINE_BYTES = 1 << 20


@dataclass
class ServeConfig:
    """Everything needed to bring up (or resume) an admission service."""

    algorithm: str = "threshold"
    machines: int = 4
    epsilon: float = 0.5
    kwargs: dict[str, Any] = field(default_factory=dict)
    name: str = ""
    host: str = "127.0.0.1"
    #: Port 0 binds an ephemeral port (reported by :attr:`AdmissionServer.
    #: socket_port` / ``http_port`` and the ``listening`` announcement).
    socket_port: int = 0
    http_port: int = 0
    #: Decision-log path; ``None`` disables persistence (bench-only mode).
    decision_log: str | None = None
    #: Resume from an existing decision log instead of refusing to clobber.
    resume: bool = False
    max_jobs: int = 1_000_000
    #: Grace period (seconds) open connections get to finish their last
    #: reply during shutdown before they are cancelled.
    drain_grace: float = 5.0
    #: Hard bound (seconds) on the post-cancel settle: a client that
    #: stops *reading* leaves its handler stuck flushing a write buffer
    #: that can never empty, and cancellation alone cannot unstick it.
    #: When the bound expires the stalled transports are aborted
    #: (buffered bytes dropped — every acknowledged decision is already
    #: journaled), :attr:`AdmissionServer.drain_timed_out` is set, and
    #: shutdown still seals the journal and exits cleanly.  ``None``
    #: (the default) waits forever, preserving the old behaviour.
    drain_timeout: float | None = None
    #: Stream to announce ``{"kind": "listening", ...}`` on once bound
    #: (the CLI passes stdout so callers can discover ephemeral ports).
    announce: IO[str] | None = None

    def service(self) -> dict[str, Any]:
        return service_fingerprint(
            self.algorithm, self.machines, self.epsilon, self.kwargs, self.name
        )


class AdmissionServer:
    """Lifecycle owner: session + journal + the two asyncio listeners."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.session: AdmissionController | None = None
        self.journal: DecisionJournal | None = None
        self.resumed_decisions = 0
        self.socket_port: int | None = None
        self.http_port: int | None = None
        self.started_at = 0.0
        self.drain_seconds: float | None = None
        self.drain_timed_out = False
        self._servers: list[asyncio.base_events.Server] = []
        self._watchers: set[asyncio.Queue] = set()
        self._connections: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._stopping = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Build/resume the session, open the journal, bind both listeners."""
        config = self.config
        service = config.service()
        if config.decision_log and config.resume:
            self.journal, state = DecisionJournal.resume(
                config.decision_log, service
            )
            self.session = state.restore_session(verify=True)
            self.resumed_decisions = len(state.decisions)
        else:
            self.session = open_session(
                config.algorithm,
                machines=config.machines,
                epsilon=config.epsilon,
                name=config.name,
                max_jobs=config.max_jobs,
                **config.kwargs,
            )
            if config.decision_log:
                self.journal = DecisionJournal.create(
                    config.decision_log, service
                )
        socket_server = await asyncio.start_server(
            self._serve_socket, config.host, config.socket_port
        )
        http_server = await asyncio.start_server(
            self._serve_http, config.host, config.http_port
        )
        self._servers = [socket_server, http_server]
        self.socket_port = socket_server.sockets[0].getsockname()[1]
        self.http_port = http_server.sockets[0].getsockname()[1]
        self.started_at = time.monotonic()
        if config.announce is not None:
            config.announce.write(
                json.dumps(
                    {
                        "kind": "listening",
                        "host": config.host,
                        "socket_port": self.socket_port,
                        "http_port": self.http_port,
                        "algorithm": config.algorithm,
                        "machines": config.machines,
                        "epsilon": config.epsilon,
                        "resumed_decisions": self.resumed_decisions,
                        "pid": __import__("os").getpid(),
                    }
                )
                + "\n"
            )
            config.announce.flush()

    def request_shutdown(self) -> None:
        """Flag graceful shutdown (idempotent; safe from signal handlers)."""
        self._stopping.set()

    async def serve_until_shutdown(self) -> None:
        """Block until shutdown is requested, then drain and seal."""
        await self._stopping.wait()
        t0 = time.monotonic()
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        # Wake watch streams so their connections can unwind, then give
        # every open connection a bounded chance to finish its last reply.
        for queue in list(self._watchers):
            queue.put_nowait(None)
        pending = [task for task in self._connections if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=self.config.drain_grace)
            for task in pending:
                if not task.done():
                    task.cancel()
            # Consume the cancellations so no handler exception escapes
            # to the loop's exception handler during teardown.
            settle = asyncio.gather(*pending, return_exceptions=True)
            if self.config.drain_timeout is None:
                await settle
            else:
                try:
                    await asyncio.wait_for(
                        asyncio.shield(settle), self.config.drain_timeout
                    )
                except asyncio.TimeoutError:
                    # A stalled client: its handler is pinned flushing a
                    # write buffer the peer will never read.  Abort the
                    # transports (drops the buffered bytes; the journal
                    # already holds every acknowledged decision) so
                    # ``wait_closed`` resolves and the handlers finish.
                    self.drain_timed_out = True
                    for writer in list(self._writers):
                        transport = writer.transport
                        if transport is not None:
                            transport.abort()
                    await settle
        if self.journal is not None:
            self.journal.seal()
            self.journal.close()
        self.drain_seconds = time.monotonic() - t0

    async def run(self) -> None:
        """``start()`` + serve until shutdown (the CLI's main coroutine)."""
        await self.start()
        await self.serve_until_shutdown()

    # ------------------------------------------------------------------
    # The decision hot path (synchronous within one event-loop tick)
    # ------------------------------------------------------------------
    def offer_payload(self, payload: Any, tag: Any = None) -> dict[str, Any]:
        """Decide one offer and journal it; returns the reply message."""
        session = self.session
        assert session is not None, "server not started"
        try:
            job = job_from_message(
                payload, clock=session.now, epsilon=session.epsilon
            )
        except ProtocolError as exc:
            return error_message(str(exc), tag)
        seq = len(session.jobs)
        try:
            decision = session.offer(job)
        except SimulationError as exc:
            return error_message(str(exc), tag)
        stamped = session.jobs[seq]
        if self.journal is not None:
            self.journal.record_decision(seq, stamped, decision)
        message = decision_message(seq, stamped, decision, session.loads(), tag)
        event = dict(message)
        event.pop("tag", None)
        for queue in self._watchers:
            queue.put_nowait(event)
        return message

    def stats_payload(self) -> dict[str, Any]:
        session = self.session
        assert session is not None, "server not started"
        stats = session.stats()
        return {
            "ok": True,
            "kind": "stats",
            "protocol": PROTOCOL_VERSION,
            "algorithm": session.algorithm,
            "machines": session.machines,
            "epsilon": session.epsilon,
            "now": session.now,
            "jobs": stats.jobs,
            "accepted": stats.accepted,
            "rejected": stats.rejected,
            "accepted_load": stats.accepted_load,
            "loads": session.loads(),
            "resumed_decisions": self.resumed_decisions,
            "watchers": len(self._watchers),
            "uptime_seconds": (
                time.monotonic() - self.started_at if self.started_at else 0.0
            ),
        }

    # ------------------------------------------------------------------
    # Socket listener (NDJSON)
    # ------------------------------------------------------------------
    async def _serve_socket(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        self._writers.add(writer)
        try:
            while not self._stopping.is_set():
                try:
                    raw = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ConnectionResetError,
                ):  # pragma: no cover - client misbehaviour
                    break
                if not raw:
                    break
                if len(raw) > MAX_LINE_BYTES:
                    writer.write(encode_line(error_message("request too large")))
                    await writer.drain()
                    break
                try:
                    message = decode_line(raw)
                except ProtocolError as exc:
                    writer.write(encode_line(error_message(str(exc))))
                    await writer.drain()
                    continue
                tag = message.get("tag")
                op = message["op"]
                if op == "offer":
                    reply = self.offer_payload(message.get("job"), tag)
                    writer.write(encode_line(reply))
                    await writer.drain()
                elif op == "stats":
                    writer.write(encode_line(self.stats_payload()))
                    await writer.drain()
                elif op == "ping":
                    writer.write(
                        encode_line(
                            {"ok": True, "kind": "pong", "protocol": PROTOCOL_VERSION}
                        )
                    )
                    await writer.drain()
                elif op == "watch":
                    await self._stream_watch(writer)
                    break
                elif op == "shutdown":
                    writer.write(
                        encode_line({"ok": True, "kind": "shutdown"})
                    )
                    await writer.drain()
                    self.request_shutdown()
                    break
        except asyncio.CancelledError:
            # Drain deadline expired on a still-open connection.  Absorb
            # the cancel and finish normally: every acknowledged decision
            # is already journaled, and a task left in the cancelled
            # state would trip asyncio's stream done-callback
            # (task.exception() raising) during teardown.
            task.uncancel()
        finally:
            self._connections.discard(task)
            writer.close()
            # The drain deadline cancels lingering handlers mid-read; the
            # close must not re-raise that cancellation out of the task.
            try:
                await asyncio.shield(writer.wait_closed())
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # pragma: no cover - client gone / drain-deadline cancel
                pass
            self._writers.discard(writer)

    async def _stream_watch(self, writer: asyncio.StreamWriter) -> None:
        """Turn the connection into a push stream of decision events."""
        queue: asyncio.Queue = asyncio.Queue()
        self._watchers.add(queue)
        writer.write(
            encode_line({"ok": True, "kind": "watch", "protocol": PROTOCOL_VERSION})
        )
        try:
            await writer.drain()
            while True:
                event = await queue.get()
                if event is None:  # shutdown sentinel
                    break
                writer.write(encode_line(event))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            self._watchers.discard(queue)

    # ------------------------------------------------------------------
    # HTTP listener (minimal HTTP/1.1, connection: close)
    # ------------------------------------------------------------------
    async def _serve_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        self._writers.add(writer)
        try:
            status, body = await self._handle_http(reader)
            payload = json.dumps(body).encode("utf-8")
            head = (
                f"HTTP/1.1 {status}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii")
            writer.write(head + payload)
            await writer.drain()
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):  # pragma: no cover - client went away mid-request
            pass
        except asyncio.CancelledError:
            # See _serve_socket: absorb the drain-deadline cancel.
            task.uncancel()
        finally:
            self._connections.discard(task)
            writer.close()
            # The drain deadline cancels lingering handlers mid-read; the
            # close must not re-raise that cancellation out of the task.
            try:
                await asyncio.shield(writer.wait_closed())
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # pragma: no cover - client gone / drain-deadline cancel
                pass
            self._writers.discard(writer)

    async def _handle_http(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, dict[str, Any]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            return "400 Bad Request", error_message("malformed request line")
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            header = (await reader.readline()).decode("latin-1").strip()
            if not header:
                break
            key, _, value = header.partition(":")
            if key.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return "400 Bad Request", error_message(
                        "bad content-length"
                    )
        if content_length > MAX_LINE_BYTES:
            return "413 Payload Too Large", error_message("request too large")
        body = await reader.readexactly(content_length) if content_length else b""
        if method == "GET" and path == "/healthz":
            return "200 OK", {"ok": True, "kind": "health"}
        if method == "GET" and path == "/stats":
            return "200 OK", self.stats_payload()
        if method == "POST" and path == "/offer":
            try:
                message = json.loads(body.decode("utf-8")) if body else {}
                if not isinstance(message, dict):
                    raise ValueError("body must be a JSON object")
            except (ValueError, UnicodeDecodeError) as exc:
                return "400 Bad Request", error_message(f"bad body: {exc}")
            payload = message.get("job", message if message else None)
            reply = self.offer_payload(payload, message.get("tag"))
            return ("200 OK" if reply["ok"] else "400 Bad Request"), reply
        if method == "POST" and path == "/shutdown":
            self.request_shutdown()
            return "200 OK", {"ok": True, "kind": "shutdown"}
        return "404 Not Found", error_message(f"no route {method} {path}")


def run_server(config: ServeConfig) -> AdmissionServer:
    """Run an admission server to completion (the ``repro serve`` body).

    Installs SIGINT/SIGTERM handlers for graceful drain, serves until a
    shutdown is requested, and returns the server (drain timing included)
    for the caller to report on.  Raises :class:`DecisionJournalError` /
    ``OSError`` before serving if the journal or sockets cannot be opened.
    """
    server = AdmissionServer(config)

    async def main() -> None:
        import signal

        await server.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, server.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await server.serve_until_shutdown()

    asyncio.run(main())
    return server


__all__ = [
    "AdmissionServer",
    "DecisionJournalError",
    "MAX_LINE_BYTES",
    "ServeConfig",
    "run_server",
]
