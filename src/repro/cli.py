"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``bound``    print the bound c(eps, m), the phase index and the f ladder
``fig1``     render the Fig. 1 curves as ASCII (optionally export CSV)
``duel``     play the Theorem-1 adversary against an algorithm
``tree``     enumerate the Fig. 2 decision tree
``compare``  run the algorithm registry on a generated workload
``simulate`` run one algorithm through the kernel and print its run stats
``serve``    run the live admission service (HTTP + NDJSON socket)
``serve-bench`` drive a server with MMPP load and report latency stats
``sweep``    run a sweep grid (serial, parallel, resilient, or one shard)
``collect``  pull shard journals into a verified inbox (retry/salvage)
``verify``   check journal seals and row checksums end to end
``merge``    merge shard journals into one dataset with a coverage report
``cache``    inspect or clear the content-addressed offline bracket cache

All output is plain text; commands are deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np


def _cmd_bound(args: argparse.Namespace) -> int:
    from repro.core.params import corner_values, threshold_parameters

    params = threshold_parameters(args.eps, args.m)
    print(f"c(eps={args.eps}, m={args.m}) = {params.c:.6f}")
    corners = [round(float(c), 6) for c in corner_values(args.m)]
    print(f"phase k = {params.k} (corners: {corners})")
    ladder = ", ".join(f"f_{params.k + i}={v:.4f}" for i, v in enumerate(params.f))
    print(f"multipliers: {ladder}")
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.analysis.phase import fig1_series, log_grid
    from repro.analysis.plotting import ascii_plot, series_to_csv

    machines = tuple(int(x) for x in args.machines.split(","))
    grid = log_grid(args.eps_min, 1.0, args.points)
    series = fig1_series(machines, epsilons=grid)
    print(
        ascii_plot(
            {f"m={s.m}": (s.epsilons, np.minimum(s.values, args.clip)) for s in series},
            logx=True,
            markers={f"m={s.m}": s.transitions for s in series},
            title=f"c(eps, m) for m in {machines} (clipped at {args.clip})",
        )
    )
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(
                series_to_csv(
                    {f"m={s.m}": (s.epsilons, s.values) for s in series},
                    x_name="epsilon",
                )
            )
        print(f"wrote {args.csv}")
    if args.svg:
        from repro.analysis.svg import fig1_svg

        with open(args.svg, "w") as fh:
            fh.write(fig1_svg(machine_counts=machines, clip=args.clip))
        print(f"wrote {args.svg}")
    return 0


def _cmd_duel(args: argparse.Namespace) -> int:
    from repro.adversary.base import duel
    from repro.baselines.registry import ALGORITHMS, make_algorithm
    from repro.core.params import c_bound

    spec = ALGORITHMS.get(args.algorithm)
    if spec is None or spec.model != "nonpreemptive":
        print(
            f"error: duels need a non-preemptive registry algorithm, got "
            f"{args.algorithm!r}",
            file=sys.stderr,
        )
        return 2
    result = duel(make_algorithm(args.algorithm), m=args.m, epsilon=args.eps)
    print(f"algorithm      : {result.policy_name}")
    print(f"forced ratio   : {result.forced_ratio:.6f}")
    print(f"c(eps, m)      : {c_bound(args.eps, args.m):.6f}")
    print(f"algorithm load : {result.algorithm_load:.6f}")
    print(f"adversary OPT  : {result.constructive_opt:.6f}")
    print(f"game           : u={result.summary['u']}, h={result.summary['final_h']}")
    if args.trace:
        print()
        print(result.schedule.meta["trace"].render())
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    from repro.adversary.analysis import enumerate_decision_tree, render_decision_tree

    outcomes = enumerate_decision_tree(args.m, args.eps)
    print(render_decision_tree(outcomes))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.ratio import compare_algorithms
    from repro.analysis.tables import render_rows
    from repro.workloads import alternating_instance, cloud_instance, random_instance

    if args.workload == "random":
        inst = random_instance(args.n, args.m, args.eps, seed=args.seed)
    elif args.workload == "cloud":
        inst = cloud_instance(args.n, args.m, args.eps, seed=args.seed)
    else:
        inst = alternating_instance(max(1, args.n // (2 * args.m)), args.m, args.eps)
    algorithms = args.algorithms.split(",")
    reports = compare_algorithms(algorithms, inst)
    print(
        render_rows(
            [r.as_dict() for r in reports],
            columns=["algorithm", "load", "ratio_lower", "ratio_upper", "guarantee", "within"],
            title=f"{inst.name}: n={len(inst)}, m={args.m}, eps={args.eps}",
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.baselines.registry import ALGORITHMS
    from repro.engine.backend import SimulationRequest, run_simulation
    from repro.workloads import alternating_instance, cloud_instance, random_instance

    if args.algorithm not in ALGORITHMS:
        print(
            f"error: unknown algorithm {args.algorithm!r}; known: "
            f"{', '.join(sorted(ALGORITHMS))}",
            file=sys.stderr,
        )
        return 2
    if args.workload == "random":
        inst = random_instance(args.n, args.m, args.eps, seed=args.seed)
    elif args.workload == "cloud":
        inst = cloud_instance(args.n, args.m, args.eps, seed=args.seed)
    else:
        inst = alternating_instance(max(1, args.n // (2 * args.m)), args.m, args.eps)
    if args.jit:
        import os

        from repro.engine.jit import JIT_ENV

        os.environ[JIT_ENV] = "1"
    result = run_simulation(
        SimulationRequest(args.algorithm, inst, record_events=args.events),
        backend=args.backend,
    )
    meta = getattr(result.detail, "meta", None)
    used = meta.get("backend", "scalar") if meta is not None else "scalar"
    stats = result.stats
    # Human-readable lines go to stdout normally, but to stderr under
    # --json so stdout stays a single machine-parseable document.  The
    # wall-clock throughput summary is diagnostics either way and always
    # goes to stderr, keeping stdout stable for output-diffing pipelines.
    out = sys.stderr if args.json else sys.stdout
    print(f"instance       : {inst.name} (n={len(inst)}, m={args.m}, eps={args.eps})",
          file=out)
    print(f"backend        : {used} (requested: {args.backend})", file=out)
    print(f"accepted load  : {result.accepted_load:.6f}", file=out)
    print(f"accepted jobs  : {result.accepted_count}/{len(inst)}", file=out)
    if stats is None:
        print("stats          : unavailable (engine not kernel-backed)", file=out)
    else:
        print(f"model          : {stats.model}", file=out)
        print(f"decisions      : {stats.decisions} ({stats.rejected} rejected, "
              f"{stats.revoked} revoked)", file=out)
        print(f"kernel steps   : {stats.steps}", file=out)
        print(f"sim time       : {stats.sim_seconds * 1e3:.2f} ms "
              f"({stats.decisions_per_second / 1e3:.1f} kdec/s)", file=out)
        print(f"audit time     : {stats.audit_seconds * 1e3:.2f} ms", file=out)
        print(f"throughput     : {stats.jobs_per_second:,.0f} jobs/s, "
              f"{stats.decisions_per_second:,.0f} decisions/s", file=sys.stderr)
    if args.events:
        events = result.events
        print(file=out)
        print(events.render() if events is not None else "no event stream recorded",
              file=out)
    if args.json:
        import json

        stats_dict = None
        if stats is not None:
            stats_dict = {
                k: (None if isinstance(v, float) and not np.isfinite(v) else v)
                for k, v in stats.as_dict().items()
            }
        print(json.dumps({
            "instance": inst.name,
            "n": len(inst),
            "machines": args.m,
            "epsilon": args.eps,
            "backend": used,
            "backend_requested": args.backend,
            "accepted_load": result.accepted_load,
            "accepted_jobs": result.accepted_count,
            "stats": stats_dict,
        }, indent=2))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import ServeConfig, run_server
    from repro.serve.snapshotter import DecisionJournalError

    kwargs: dict = {}
    if args.seed is not None:
        kwargs["rng"] = args.seed
    config = ServeConfig(
        algorithm=args.algorithm,
        machines=args.m,
        epsilon=args.eps,
        kwargs=kwargs,
        name=args.name,
        host=args.host,
        socket_port=args.socket_port,
        http_port=args.http_port,
        decision_log=args.decision_log,
        resume=args.resume,
        drain_timeout=args.drain_timeout,
        announce=sys.stdout,
    )
    try:
        server = run_server(config)
    except (DecisionJournalError, KeyError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = server.session.stats() if server.session is not None else None
    if stats is not None:
        drain = f"drained in {server.drain_seconds:.3f}s"
        if server.drain_timed_out:
            drain += (
                f" (drain_timeout: aborted stalled connection(s) after "
                f"{config.drain_timeout:g}s; journal sealed)"
            )
        print(
            f"served {stats.decisions} decision(s) "
            f"({stats.accepted} accepted, {stats.rejected} rejected), "
            f"{drain}",
            file=sys.stderr,
        )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json

    from repro.serve.loadgen import run_bench, run_load
    from repro.serve.server import ServeConfig
    from repro.serve.snapshotter import DecisionJournalError, verify_decision_log
    from repro.workloads.arrivals import mmpp_instance

    inst = mmpp_instance(args.n, machines=args.m, epsilon=args.eps, seed=args.seed)
    if args.connect:
        host, _, port = args.connect.rpartition(":")
        try:
            report = run_load(host or "127.0.0.1", int(port), inst,
                              window=args.window)
        except (OSError, ValueError, ConnectionError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        config = ServeConfig(
            algorithm=args.algorithm,
            machines=args.m,
            epsilon=args.eps,
            name=inst.name,
            decision_log=args.decision_log,
        )
        try:
            report, _ = run_bench(config, inst, window=args.window)
        except (DecisionJournalError, KeyError, ValueError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    print(f"workload       : {inst.name} (n={len(inst)}, m={args.m}, eps={args.eps})",
          file=sys.stderr)
    print(f"decisions      : {report.accepted + report.rejected} "
          f"({report.accepted} accepted, {report.rejected} rejected, "
          f"{report.errors} errors)", file=sys.stderr)
    print(f"throughput     : {report.decisions_per_second:,.0f} decisions/s "
          f"over {report.wall_seconds:.3f}s", file=sys.stderr)
    print(f"latency        : p50 {report.latency_p50_ms:.3f} ms, "
          f"p99 {report.latency_p99_ms:.3f} ms, "
          f"p99.9 {report.latency_p999_ms:.3f} ms", file=sys.stderr)
    if report.drain_seconds is not None:
        print(f"drain          : {report.drain_seconds:.3f}s graceful shutdown",
              file=sys.stderr)
    bench = {"workload": inst.name, "n": len(inst), "machines": args.m,
             "epsilon": args.eps, "algorithm": args.algorithm,
             "window": args.window, **report.to_json()}
    if args.verify:
        if not args.decision_log or args.connect:
            print("error: --verify needs a self-hosted run with --decision-log",
                  file=sys.stderr)
            return 2
        ok, detail = verify_decision_log(args.decision_log)
        bench["bit_identical"] = ok
        print(f"verify         : {detail}", file=sys.stderr)
        if not ok:
            print("error: served decision log does NOT replay bit-identical "
                  "through the batch engine", file=sys.stderr)
            if args.json:
                with open(args.json, "w") as fh:
                    json.dump(bench, fh, indent=2)
            return 1
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(bench, fh, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    if report.errors:
        return EXIT_SWEEP_DEGRADED
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.analysis.capacity import machines_for_target, slack_for_target
    from repro.core.guarantees import theorem2_bound

    if (args.eps is None) == (args.m is None):
        print("error: pass exactly one of --eps or --m", file=sys.stderr)
        return 2
    if args.eps is not None:
        m = machines_for_target(args.eps, args.target)
        if m is None:
            print(
                f"unachievable: with eps={args.eps} the guarantee never reaches "
                f"{args.target} (floor ~ 2 + ln(1/eps))"
            )
            return 1
        print(
            f"fleet size m = {m} suffices: guarantee = "
            f"{theorem2_bound(args.eps, m):.4f} <= {args.target}"
        )
    else:
        eps = slack_for_target(args.m, args.target)
        if eps is None:
            print(
                f"unachievable: with m={args.m} the guarantee never reaches "
                f"{args.target} even at eps = 1 (floor {theorem2_bound(1.0, args.m):.4f})"
            )
            return 1
        print(
            f"slack eps = {eps:.6f} suffices: guarantee = "
            f"{theorem2_bound(eps, args.m):.4f} <= {args.target}"
        )
    return 0


#: Distinct exit codes for the ``sweep`` command's degraded outcomes.
EXIT_SWEEP_DEGRADED = 4  # finished, but some cells were quarantined
EXIT_SWEEP_INTERRUPTED = 130  # SIGINT; completed rows were flushed


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json
    from functools import partial

    from repro.analysis.tables import render_rows
    from repro.offline.cache import BracketCache
    from repro.workloads.cloud import cloud_instance
    from repro.workloads.execute import ExecutionPolicy, execute_sweep
    from repro.workloads.journal import JournalError, JournalMismatchError
    from repro.workloads.random_instances import random_instance
    from repro.workloads.resilient import SweepInterrupted
    from repro.workloads.sweep import SweepSpec, aggregate_rows, rows_to_csv

    cache = (
        BracketCache(args.cache_dir) if args.cache or args.cache_dir else None
    )

    def _cache_summary(stats: dict | None) -> None:
        if stats is None:
            return
        print(
            f"bracket cache: {stats['hits']} hits / {stats['misses']} misses "
            f"({100.0 * stats['hit_rate']:.0f}% hit rate), "
            f"{stats['writes']} written, {stats['evictions']} evicted"
            + (
                f", {stats['corrupt']} corrupt entries dropped"
                if stats["corrupt"]
                else ""
            )
        )

    factory = random_instance if args.workload == "random" else cloud_instance
    spec = SweepSpec(
        epsilons=[float(e) for e in args.epsilons.split(",")],
        machine_counts=[int(m) for m in args.machines.split(",")],
        algorithms=args.algorithms.split(","),
        workload=partial(factory, args.n),
        repetitions=args.repetitions,
        base_seed=args.seed,
        label=f"cli-{args.workload}",
    )

    def _flush(rows, label):
        print(render_rows(aggregate_rows(rows), title=label))
        if args.csv:
            with open(args.csv, "w") as fh:
                fh.write(rows_to_csv(rows))
            print(f"wrote {args.csv}")

    if (
        args.journal
        and args.resume
        and os.path.abspath(args.journal) != os.path.abspath(args.resume)
    ):
        print(
            "error: --journal and --resume point at different files; pass just "
            "--resume to continue an existing journal",
            file=sys.stderr,
        )
        return 2
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.shards > 1 and args.shard_index is None:
        print(
            f"error: --shards {args.shards} requires --shard-index "
            f"(0..{args.shards - 1}) naming the shard this host executes",
            file=sys.stderr,
        )
        return 2
    if args.shard_index is not None and not 0 <= args.shard_index < args.shards:
        print(
            f"error: --shard-index {args.shard_index} out of range "
            f"[0, {args.shards})",
            file=sys.stderr,
        )
        return 2
    if args.salvage and args.resume is None:
        print(
            "error: --salvage repairs the journal being resumed; pass it "
            "together with --resume",
            file=sys.stderr,
        )
        return 2
    journal_path = args.resume or args.journal
    resilient = (
        args.parallel > 0
        or journal_path is not None
        or args.timeout is not None
        or args.manifest is not None
        or args.shards > 1
        or args.elastic
        or args.hosts is not None
    )
    if args.adaptive_reps and not args.elastic:
        print("error: --adaptive-reps requires --elastic", file=sys.stderr)
        return 2
    hosts = None
    if args.hosts is not None:
        from repro.workloads.remote import load_hosts

        try:
            hosts = load_hosts(args.hosts)
        except (OSError, ValueError) as exc:
            print(f"error: --hosts {args.hosts}: {exc}", file=sys.stderr)
            return 2
    if not resilient:
        # Serial fast path; still exit gracefully on ^C (no partial rows to
        # save — run with --journal to make interrupted work resumable).
        try:
            result = execute_sweep(
                spec,
                ExecutionPolicy(cache=cache, backend=args.backend, jit=args.jit),
            )
        except KeyboardInterrupt:
            print("\ninterrupted: serial sweep discarded; re-run with --journal "
                  "PATH to checkpoint completed cells", file=sys.stderr)
            return EXIT_SWEEP_INTERRUPTED
        _flush(result.rows, f"sweep[{args.workload}]")
        _cache_summary(result.cache_stats)
        return 0

    try:
        policy = ExecutionPolicy(
            parallel=True,
            workers=args.parallel or None,
            timeout=args.timeout,
            retries=args.retries,
            backoff=args.backoff,
            journal=journal_path,
            resume=args.resume is not None,
            salvage=args.salvage,
            cache=cache,
            shards=args.shards,
            shard_index=args.shard_index,
            backend=args.backend,
            jit=args.jit,
            elastic=args.elastic,
            speculate=args.speculate,
            adaptive_reps=args.adaptive_reps,
            heartbeat_interval=args.heartbeat_interval,
            lease_timeout=args.lease_timeout,
            hosts=hosts,
            host_max_failures=args.host_max_failures,
            local_fallback=not args.no_local_fallback,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        result = execute_sweep(spec, policy)
    except JournalMismatchError:
        raise
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SweepInterrupted as interrupted:
        partial_result = interrupted.result
        print(f"\ninterrupted: {partial_result.manifest.summary()}", file=sys.stderr)
        if partial_result.rows:
            _flush(partial_result.rows, f"sweep[{args.workload}] (partial)")
        if journal_path:
            print(
                f"resume with: repro sweep ... --resume {journal_path}",
                file=sys.stderr,
            )
        return EXIT_SWEEP_INTERRUPTED

    manifest = result.manifest
    label = f"sweep[{args.workload}]"
    if args.shards > 1:
        label += f" shard {args.shard_index}/{args.shards}"
    _flush(result.rows, label)
    print(manifest.summary())
    if args.shards > 1 and journal_path:
        print(
            f"shard {args.shard_index}/{args.shards} journaled to {journal_path}; "
            "combine the shard journals with: repro merge <journal...>"
        )
    _cache_summary(result.cache_stats)
    if args.manifest:
        with open(args.manifest, "w") as fh:
            json.dump(manifest.as_dict(), fh, indent=2)
        print(f"wrote {args.manifest}")
    for worker in manifest.worker_failures:
        # Worker quarantine is recovery, not failure: the pool shrank but
        # every cell still completed elsewhere — report it, exit clean.
        print(
            f"quarantined worker slot {worker.slot} after "
            f"{worker.failures} failure(s): {worker.detail}",
            file=sys.stderr,
        )
    for host in manifest.host_failures:
        # Same contract one domain up: a quarantined host is recovery.
        print(
            f"quarantined host {host.host!r} after "
            f"{host.failures} failure(s): {host.detail}",
            file=sys.stderr,
        )
    if manifest.degraded_to_local:
        print(
            "every remote host quarantined; sweep finished on the local "
            "fallback pool",
            file=sys.stderr,
        )
    if manifest.failures:
        for failure in manifest.failures:
            print(
                f"quarantined cell (eps={failure.epsilon}, m={failure.machines}, "
                f"rep={failure.repetition}) after {failure.attempts} attempt(s): "
                f"[{failure.kind}] {failure.detail}",
                file=sys.stderr,
            )
        return EXIT_SWEEP_DEGRADED
    return 0


#: ``repro verify`` exit code when a journal is intact but unsealed.
EXIT_VERIFY_UNSEALED = 3


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.workloads.journal import verify_journal

    # A directory argument expands to every journal inside it (sorted),
    # so multi-shard inboxes verify in one command.  Quarantined copies
    # under ``<dir>/quarantine/`` are damage already accounted for by
    # collect — only the top-level journals are checked.
    paths: list[str] = []
    for path in args.journals:
        if os.path.isdir(path):
            inside = sorted(
                os.path.join(path, name)
                for name in os.listdir(path)
                if name.endswith(".jsonl")
                and os.path.isfile(os.path.join(path, name))
            )
            if not inside:
                print(f"error: {path}: no .jsonl journals in directory",
                      file=sys.stderr)
                return 2
            paths.extend(inside)
        else:
            paths.append(path)
    worst = 0
    for path in paths:
        verification = verify_journal(path)
        print(verification.summary())
        if verification.corruption:
            for event in verification.corruption.events:
                print(f"  line {event.line}: [{event.kind}] {event.detail}")
        if verification.status == "corrupt":
            worst = max(worst, 2)
        elif verification.status == "unsealed":
            worst = max(worst, 1)
    if worst == 2:
        print(
            "corrupt journal(s): re-transfer with repro collect, or repair "
            "with repro sweep --resume <journal> --salvage",
            file=sys.stderr,
        )
        return 1
    return EXIT_VERIFY_UNSEALED if worst == 1 else 0


def _cmd_collect(args: argparse.Namespace) -> int:
    from repro.workloads.transport import TransferPolicy, collect_journals

    try:
        policy = TransferPolicy(
            retries=args.retries, backoff=args.backoff, timeout=args.timeout
        )
        result = collect_journals(
            args.sources,
            args.inbox,
            command=args.command,
            policy=policy,
            verify=args.verify,
            salvage=args.salvage,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.summary())
    if result.collected:
        print(
            "merge the inbox with: repro merge "
            + " ".join(result.collected)
            + (" --verify" if result.ok else "")
        )
    if any(r.status in ("failed", "quarantined") for r in result.records):
        return 2
    if result.degraded:
        return EXIT_SWEEP_DEGRADED
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_rows
    from repro.workloads.journal import JournalError
    from repro.workloads.sharding import merge_journals
    from repro.workloads.sweep import aggregate_rows, rows_to_csv

    try:
        result = merge_journals(
            args.journals,
            out=args.out,
            salvage=not args.strict,
            require_verified=args.verify,
        )
    except JournalError as exc:  # includes JournalMismatch/IntegrityError
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.coverage_report())
    if args.table and result.rows:
        print(render_rows(aggregate_rows(result.rows), title="merged sweep"))
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(rows_to_csv(result.rows))
        print(f"wrote {args.csv}")
    if result.out_path:
        print(f"wrote {result.out_path}")
    if not result.complete:
        print(
            "merge is incomplete; resume the merged journal to fill the "
            "holes: repro sweep ... --resume "
            + (result.out_path or "<merged journal>"),
            file=sys.stderr,
        )
        return EXIT_SWEEP_DEGRADED
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.offline.cache import BracketCache

    cache = BracketCache(args.cache_dir)
    if args.action == "stats":
        report = cache.scan()
        print(f"cache directory : {report.directory}")
        print(f"entries         : {report.entries}")
        print(f"shards          : {report.shards}")
        print(f"size on disk    : {report.total_bytes} bytes")
        print(f"schema version  : {report.as_dict()['version']}")
    else:  # clear
        removed = cache.clear()
        print(f"removed {removed} cached bracket(s) from {cache.cache_dir}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    sections = args.sections.split(",") if args.sections else None
    text = generate_report(sections)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Commitment and Slack for Online Load Maximization — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("bound", help="print c(eps, m) and the parameter ladder")
    p.add_argument("--m", type=int, required=True)
    p.add_argument("--eps", type=float, required=True)
    p.set_defaults(fn=_cmd_bound)

    p = sub.add_parser("fig1", help="render the Fig. 1 curves")
    p.add_argument("--machines", default="1,2,3,4")
    p.add_argument("--points", type=int, default=200)
    p.add_argument("--eps-min", type=float, default=0.02)
    p.add_argument("--clip", type=float, default=25.0)
    p.add_argument("--csv")
    p.add_argument("--svg", help="also render a publication-grade SVG figure")
    p.set_defaults(fn=_cmd_fig1)

    p = sub.add_parser("duel", help="play the Theorem-1 adversary")
    p.add_argument("--m", type=int, required=True)
    p.add_argument("--eps", type=float, required=True)
    p.add_argument("--algorithm", default="threshold")
    p.add_argument("--trace", action="store_true", help="print the decision trace")
    p.set_defaults(fn=_cmd_duel)

    p = sub.add_parser("tree", help="enumerate the Fig. 2 decision tree")
    p.add_argument("--m", type=int, required=True)
    p.add_argument("--eps", type=float, required=True)
    p.set_defaults(fn=_cmd_tree)

    p = sub.add_parser(
        "simulate", help="run one algorithm through the simulation kernel"
    )
    p.add_argument("--algorithm", default="threshold")
    p.add_argument("--workload", choices=["random", "cloud", "bait-and-whale"], default="random")
    p.add_argument("--m", type=int, default=3)
    p.add_argument("--eps", type=float, default=0.2)
    p.add_argument("--n", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--events", action="store_true", help="record and print the kernel event stream"
    )
    p.add_argument(
        "--backend", choices=["auto", "scalar", "batch"], default="auto",
        help="simulation kernel backend (see docs/engine_backends.md); "
             "batch falls back to scalar with a warning when unsupported",
    )
    p.add_argument(
        "--jit", action="store_true",
        help="run batch kernels through the optional numba-jitted inner "
             "loop (REPRO_NUMBA=1); warns and falls back to NumPy when "
             "numba is not installed — results are identical either way",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print a machine-readable JSON document on stdout and route "
             "all human-readable lines to stderr",
    )
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser(
        "serve",
        help="run the live admission service (HTTP + NDJSON socket)",
    )
    p.add_argument("--algorithm", default="threshold",
                   help="registry algorithm (immediate-commitment only)")
    p.add_argument("--m", type=int, default=4, help="machine count")
    p.add_argument("--eps", type=float, default=0.5, help="declared slack")
    p.add_argument("--seed", type=int, default=None,
                   help="seed forwarded to randomized algorithms")
    p.add_argument("--name", default="", help="instance name stamped on the log")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--socket-port", type=int, default=0,
                   help="NDJSON socket port (0 = ephemeral, announced on stdout)")
    p.add_argument("--http-port", type=int, default=0,
                   help="HTTP port (0 = ephemeral, announced on stdout)")
    p.add_argument("--decision-log",
                   help="journal every decision to this sealed JSONL log "
                        "(enables crash recovery via --resume)")
    p.add_argument("--resume", action="store_true",
                   help="resume from an existing --decision-log: replay it to "
                        "rebuild the session state, verify, and keep appending")
    p.add_argument("--drain-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="hard bound on graceful drain: abort connections "
                        "stalled on clients that stopped reading, seal the "
                        "journal, and exit 0 instead of hanging forever")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "serve-bench",
        help="drive an admission server with MMPP load; report latency stats",
    )
    p.add_argument("--algorithm", default="threshold")
    p.add_argument("--m", type=int, default=4)
    p.add_argument("--eps", type=float, default=0.5)
    p.add_argument("--n", type=int, default=2000, help="MMPP jobs to submit")
    p.add_argument("--seed", type=int, default=2020)
    p.add_argument("--window", type=int, default=64,
                   help="max offers in flight on the socket (default 64)")
    p.add_argument("--connect", metavar="HOST:PORT",
                   help="drive an already-running server instead of "
                        "self-hosting one in-process")
    p.add_argument("--decision-log",
                   help="self-hosted runs: journal served decisions here "
                        "(required by --verify)")
    p.add_argument("--verify", action="store_true",
                   help="after the run, replay the decision log through the "
                        "offline batch engine and fail unless bit-identical")
    p.add_argument("--json", metavar="PATH",
                   help="write the benchmark report (BENCH_serve schema) here")
    p.set_defaults(fn=_cmd_serve_bench)

    p = sub.add_parser("plan", help="capacity planning: invert the bound function")
    p.add_argument("--target", type=float, required=True, help="target worst-case ratio")
    p.add_argument("--eps", type=float, help="slack: solve for the fleet size")
    p.add_argument("--m", type=int, help="fleet size: solve for the slack")
    p.set_defaults(fn=_cmd_plan)

    p = sub.add_parser("sweep", help="run a sweep grid and export CSV")
    p.add_argument("--epsilons", default="0.1,0.3")
    p.add_argument("--machines", default="2,3")
    p.add_argument(
        "--algorithms", default="threshold,greedy"
    )
    p.add_argument("--workload", choices=["random", "cloud"], default="random")
    p.add_argument("--n", type=int, default=15)
    p.add_argument("--repetitions", type=int, default=3)
    p.add_argument("--seed", type=int, default=2020)
    p.add_argument(
        "--parallel", type=int, default=0,
        help="worker count; 0 = serial, unless --timeout/--journal/--resume/"
             "--manifest is given (each implies the fault-tolerant "
             "multiprocess runner)",
    )
    p.add_argument("--csv", help="write the raw rows to this CSV file")
    p.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell timeout in seconds (implies the fault-tolerant runner)",
    )
    p.add_argument(
        "--retries", type=int, default=2,
        help="extra attempts per failed cell, each in a fresh worker (default 2)",
    )
    p.add_argument(
        "--backoff", type=float, default=0.25,
        help="base retry delay in seconds, doubled per attempt (default 0.25)",
    )
    p.add_argument(
        "--journal",
        help="checkpoint completed cells to this append-only JSONL journal "
             "(must not already exist; implies the fault-tolerant runner)",
    )
    p.add_argument(
        "--resume", metavar="JOURNAL",
        help="resume from a checkpoint journal: replay completed cells from "
             "disk and execute only the remainder (implies the fault-tolerant "
             "runner)",
    )
    p.add_argument(
        "--salvage", action="store_true",
        help="with --resume: repair a journal damaged mid-file (bit flips, "
             "failed transfers) — corrupt records are quarantined, the file "
             "is rewritten clean and their cells re-run",
    )
    p.add_argument(
        "--manifest",
        help="write the structured failure manifest (JSON) to this path "
             "(implies the fault-tolerant runner)",
    )
    p.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help="reuse offline OPT brackets via the content-addressed disk "
             "cache (default: on; --no-cache recomputes every bracket)",
    )
    p.add_argument(
        "--cache-dir",
        help="bracket cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro/brackets; implies --cache)",
    )
    p.add_argument(
        "--shards", type=int, default=1,
        help="partition the grid into this many disjoint, cost-balanced "
             "shards and execute only --shard-index (implies the "
             "fault-tolerant runner); merge shard journals with repro merge",
    )
    p.add_argument(
        "--shard-index", type=int, default=None,
        help="which shard this host executes (0-based; required with "
             "--shards > 1)",
    )
    p.add_argument(
        "--backend", choices=["auto", "scalar", "batch"], default="auto",
        help="simulation kernel backend for every cell "
             "(see docs/engine_backends.md)",
    )
    p.add_argument(
        "--jit", action="store_true",
        help="batch kernels use the optional numba-jitted inner loop "
             "(exports REPRO_NUMBA=1 to workers); warns and falls back to "
             "NumPy when numba is not installed",
    )
    p.add_argument(
        "--elastic", action="store_true",
        help="pull-based elastic scheduler: persistent workers lease cells "
             "from a shared queue, heartbeats separate slow workers from "
             "hung ones, dead workers are respawned and their leases "
             "re-dispatched (see docs/resilience.md)",
    )
    p.add_argument(
        "--speculate", action=argparse.BooleanOptionalAction, default=True,
        help="with --elastic: re-execute straggler cells speculatively once "
             "the queue runs dry; first verified result wins and duplicates "
             "are asserted bit-identical (default: on)",
    )
    p.add_argument(
        "--adaptive-reps", action="store_true",
        help="with --elastic: issue repetitions lazily and skip the "
             "remainder of a config once the bootstrap CI of every "
             "algorithm's mean accepted load is tight",
    )
    p.add_argument(
        "--heartbeat-interval", type=float, default=0.1,
        help="with --elastic: worker heartbeat cadence in seconds "
             "(default 0.1)",
    )
    p.add_argument(
        "--lease-timeout", type=float, default=None,
        help="with --elastic: seconds without a heartbeat before a lease is "
             "presumed dead and re-dispatched (default: 10x the heartbeat "
             "interval)",
    )
    p.add_argument(
        "--hosts", metavar="HOSTS_JSON",
        help="remote elastic execution: serve the lease queue to worker "
             "processes on the hosts in this registry (name, launch "
             "command, slots per host; see docs/remote_execution.md)",
    )
    p.add_argument(
        "--host-max-failures", type=int, default=2,
        help="with --hosts: host failures (channel EOF, handshake timeout) "
             "tolerated before the whole host is quarantined (default 2)",
    )
    p.add_argument(
        "--no-local-fallback", action="store_true",
        help="with --hosts: when every remote host is quarantined, "
             "quarantine the remaining cells instead of finishing the "
             "sweep on local fallback workers",
    )
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser(
        "merge",
        help="merge shard journals into one dataset with a coverage report",
    )
    p.add_argument(
        "journals", nargs="+",
        help="journal paths to merge (shard-stamped or plain; fingerprints "
             "must match)",
    )
    p.add_argument(
        "--out",
        help="write the merged, resumable journal to this path "
             "(must not already exist)",
    )
    p.add_argument("--csv", help="write the merged rows to this CSV file")
    p.add_argument(
        "--table", action=argparse.BooleanOptionalAction, default=True,
        help="print the aggregated results table (default: on)",
    )
    p.add_argument(
        "--verify", action="store_true",
        help="require every input to be sealed with all row checksums "
             "intact; refuse to merge anything less",
    )
    p.add_argument(
        "--strict", action="store_true",
        help="fail on the first corrupt record instead of quarantining it "
             "and counting its cell as missing",
    )
    p.set_defaults(fn=_cmd_merge)

    p = sub.add_parser(
        "verify",
        help="check journal seals and row checksums end to end",
    )
    p.add_argument(
        "journals", nargs="+",
        help="journal paths to verify; a directory verifies every .jsonl "
             "inside it (worst exit code wins)",
    )
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser(
        "collect",
        help="pull shard journals into a verified inbox (retry/salvage)",
    )
    p.add_argument(
        "--from", dest="sources", action="append", required=True,
        metavar="URI",
        help="journal to pull (repeatable); a filesystem path for the "
             "default local transport, or whatever --command understands",
    )
    p.add_argument(
        "--inbox", required=True,
        help="destination directory; verified journals land here, damaged "
             "originals under <inbox>/quarantine/",
    )
    p.add_argument(
        "--command",
        help="fetch command template with {source} and {dest} placeholders "
             "(e.g. 'scp -q {source} {dest}'); default: local file copy",
    )
    p.add_argument(
        "--retries", type=int, default=2,
        help="extra attempts per transfer, exponential backoff (default 2)",
    )
    p.add_argument(
        "--backoff", type=float, default=0.25,
        help="base retry delay in seconds, doubled per attempt (default 0.25)",
    )
    p.add_argument(
        "--timeout", type=float, default=None,
        help="per-transfer wall-clock budget in seconds (default: none)",
    )
    p.add_argument(
        "--verify", action=argparse.BooleanOptionalAction, default=True,
        help="verify seals and row checksums before accepting a journal "
             "into the inbox (default: on)",
    )
    p.add_argument(
        "--salvage", action=argparse.BooleanOptionalAction, default=True,
        help="when a journal still arrives corrupt after all retries, keep "
             "its intact rows and quarantine the damaged ones (default: on; "
             "--no-salvage marks the source failed instead)",
    )
    p.set_defaults(fn=_cmd_collect)

    p = sub.add_parser("cache", help="inspect or clear the offline bracket cache")
    p.add_argument("action", choices=["stats", "clear"])
    p.add_argument(
        "--cache-dir",
        help="bracket cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro/brackets)",
    )
    p.set_defaults(fn=_cmd_cache)

    p = sub.add_parser("report", help="generate the condensed reproduction report")
    p.add_argument("--sections", help="comma-separated subset (default: all)")
    p.add_argument("--out", help="write markdown to this file instead of stdout")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("compare", help="compare algorithms on a workload")
    p.add_argument("--workload", choices=["random", "cloud", "bait-and-whale"], default="random")
    p.add_argument("--m", type=int, default=3)
    p.add_argument("--eps", type=float, default=0.2)
    p.add_argument("--n", type=int, default=60)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--algorithms",
        default="threshold,greedy,lee-style,dasgupta-palis,migration-greedy",
    )
    p.set_defaults(fn=_cmd_compare)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
