"""Algorithm 1 of the paper: the *Threshold* admission policy.

For slack :math:`\\varepsilon` and :math:`m` machines, let
:math:`k, f_k, \\dots, f_m` be the parameters of
:mod:`repro.core.params`.  On submission of job :math:`J_j` at time
:math:`t = r_j`:

1. compute the outstanding load :math:`l(m_h)` of every machine and index
   machines by *decreasing* load, so :math:`l(m_1) \\ge \\dots \\ge l(m_m)`;
2. compute the machine-dependent deadline thresholds
   :math:`d_{lim,h} = t + l(m_h) \\cdot f_h` for ranks
   :math:`h \\in \\{k, \\dots, m\\}` (Eq. (9)) and the system threshold
   :math:`d_{lim} = \\max_h d_{lim,h}` (Eq. (10));
3. reject iff :math:`d_j < d_{lim}`;
4. otherwise allocate :math:`J_j` to the *most loaded* candidate machine —
   a machine that can still complete the job on time — and start it
   immediately after that machine's outstanding load (best-fit rule,
   Lines 9–10).

The slack condition guarantees the least loaded machine is always a
candidate for an accepted job (the convex combination of
``d >= (1+eps) p + t`` and ``d >= t + l (1+eps)/eps`` yields
``d >= t + l + p``), which is how Claim 1's on-time completion follows; the
policy asserts it.

Ablation hooks: the allocation rule (:class:`AllocationRule`) and the
parameter set (``parameters=...``) can be overridden to measure how much
the paper's best-fit rule and exact multipliers matter
(benchmarks E10/E11).
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.core.params import ThresholdParameters, clamp_epsilon, threshold_parameters
from repro.engine.policy import Decision, OnlinePolicy
from repro.model.job import Job
from repro.model.machine import MachineState
from repro.utils.tolerances import fge


class AllocationRule(enum.Enum):
    """Which candidate machine an accepted job is placed on.

    ``BEST_FIT`` is the paper's rule (most loaded candidate).  The others
    exist for the allocation ablation (E10): ``WORST_FIT`` picks the least
    loaded candidate, ``FIRST_FIT`` the lowest physical index.
    """

    BEST_FIT = "best-fit"
    WORST_FIT = "worst-fit"
    FIRST_FIT = "first-fit"


class ThresholdPolicy(OnlinePolicy):
    """The deterministic Threshold algorithm (Algorithm 1, Theorem 2).

    Parameters
    ----------
    allocation:
        Candidate-selection rule; defaults to the paper's best-fit.
    parameters:
        Optional explicit :class:`ThresholdParameters` overriding the
        recursion's solution (ablation E11).  When given, it must match the
        machine count passed to :meth:`reset`.
    factor_scale:
        Multiplies every :math:`f_h` (ablation E11); 1.0 reproduces the
        paper.
    """

    def __init__(
        self,
        allocation: AllocationRule = AllocationRule.BEST_FIT,
        parameters: ThresholdParameters | None = None,
        factor_scale: float = 1.0,
    ) -> None:
        if factor_scale <= 0:
            raise ValueError(f"factor_scale must be positive, got {factor_scale}")
        self.allocation = allocation
        self._explicit_parameters = parameters
        self.factor_scale = factor_scale
        self.params: ThresholdParameters | None = None
        self.name = "threshold"
        if allocation is not AllocationRule.BEST_FIT:
            self.name += f"[{allocation.value}]"
        if factor_scale != 1.0:
            self.name += f"[fx{factor_scale:g}]"

    # ------------------------------------------------------------------
    def reset(self, machines: int, epsilon: float) -> None:
        if self._explicit_parameters is not None:
            if self._explicit_parameters.m != machines:
                raise ValueError(
                    f"explicit parameters built for m={self._explicit_parameters.m}, "
                    f"simulation has m={machines}"
                )
            self.params = self._explicit_parameters
        else:
            self.params = threshold_parameters(clamp_epsilon(epsilon), machines)

    # ------------------------------------------------------------------
    def threshold_at(self, t: float, loads: Sequence[float]) -> float:
        """The system threshold :math:`d_{lim}` for the given loads at *t*.

        Exposed separately so tests and the Fig. 2 reproduction can inspect
        the acceptance frontier without running a full simulation.
        """
        assert self.params is not None, "reset() must run before decisions"
        k = self.params.k
        sorted_loads = np.sort(np.asarray(loads, dtype=float))[::-1]
        # Ranks k..m (1-based) are the m-k+1 *least* loaded machines.
        tail = sorted_loads[k - 1 :]
        factors = self.params.f * self.factor_scale
        return float(t + np.max(tail * factors))

    def on_submission(
        self, job: Job, t: float, machines: Sequence[MachineState]
    ) -> Decision:
        assert self.params is not None, "reset() must run before decisions"
        loads = [ms.outstanding(t) for ms in machines]
        d_lim = self.threshold_at(t, loads)
        if not fge(job.deadline, d_lim):
            return Decision.reject(d_lim=d_lim, loads=tuple(loads))

        candidates = [ms for ms in machines if ms.fits(job, t)]
        if not candidates:
            # Unreachable under the paper's parameters (see module
            # docstring); possible under aggressive ablation scalings where
            # the acceptance test no longer protects the least loaded
            # machine.  Reject rather than break commitments.
            if self.factor_scale >= 1.0 and self._explicit_parameters is None:
                raise AssertionError(
                    f"job {job.job_id}: accepted by threshold but no machine can "
                    "complete it — Claim 1 invariant broken"
                )
            return Decision.reject(d_lim=d_lim, loads=tuple(loads), forced=True)

        if self.allocation is AllocationRule.BEST_FIT:
            chosen = max(candidates, key=lambda ms: (ms.outstanding(t), -ms.index))
        elif self.allocation is AllocationRule.WORST_FIT:
            chosen = min(candidates, key=lambda ms: (ms.outstanding(t), ms.index))
        else:  # FIRST_FIT
            chosen = min(candidates, key=lambda ms: ms.index)
        start = chosen.append_start(job, t)
        return Decision.accept(
            machine=chosen.index,
            start=start,
            d_lim=d_lim,
            loads=tuple(loads),
            k=self.params.k,
        )

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        desc = {
            "name": self.name,
            "allocation": self.allocation.value,
            "factor_scale": self.factor_scale,
        }
        if self.params is not None:
            desc.update(
                m=self.params.m,
                epsilon=self.params.epsilon,
                k=self.params.k,
                c=self.params.c,
            )
        return desc
