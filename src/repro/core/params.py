"""The bound function :math:`c(\\varepsilon, m)` and its parameter recursion.

Section 2 of the paper defines, for slack :math:`\\varepsilon \\in (0, 1]`
and :math:`m` machines, parameters :math:`f_q(\\varepsilon, m)` for
:math:`q \\in \\{k, \\dots, m\\}` through

.. math::

    f_m(\\varepsilon, m) = \\frac{1 + \\varepsilon}{\\varepsilon}
    \\qquad\\text{(anchor, Eq. (4))}

.. math::

    c(\\varepsilon, m)
      = \\frac{1 + m \\cdot f_q(\\varepsilon, m)}
             {k + \\sum_{h=k}^{q-1} (f_h(\\varepsilon, m) - 1)}
    \\quad \\text{independent of } q \\in \\{k, \\dots, m\\}
    \\qquad\\text{(Eq. (5))}

subject to the technical constraint :math:`f_q \\ge 2` (Eq. (6)).  The
*phase index* :math:`k \\in \\{1, \\dots, m\\}` is the unique value keeping
(6) valid; its corner values :math:`\\varepsilon_{k,m}` — defined by
:math:`f_k(\\varepsilon_{k,m}, m) = 2` (Eq. (7)) — partition the slack
interval :math:`(0, 1]` into :math:`m` phases.

Numerical strategy
------------------

Eq. (5) with :math:`q = k` gives :math:`f_k = (c k - 1)/m`, and equality of
the ratio for consecutive :math:`q` gives the *forward chain*

.. math::

    D_k = k, \\qquad D_{q+1} = D_q + f_q - 1, \\qquad
    f_{q+1} = \\frac{c \\cdot D_{q+1} - 1}{m},

so that :math:`f_m` is a strictly increasing polynomial of :math:`c` of
degree :math:`m - k + 1`.  We therefore obtain :math:`c(\\varepsilon, m)`
by Brent root-finding of :math:`f_m(c) = (1+\\varepsilon)/\\varepsilon`
(default), or, for small systems, by solving the explicit polynomial.

Corner values come for free: at :math:`\\varepsilon_{k,m}` we have
:math:`f_k = 2`, hence :math:`c = (2m+1)/k`; running the forward chain
yields :math:`f_m` and :math:`\\varepsilon_{k,m} = 1/(f_m - 1)`.

The closed forms reported in the paper (e.g. Eq. (1) for ``m = 2``) are
implemented independently and cross-validated against the numeric solver in
the test-suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np
from scipy.optimize import brentq

__all__ = [
    "ThresholdParameters",
    "BoundFunction",
    "corner_values",
    "corner_values_exact",
    "corner_closed_form",
    "phase_index",
    "c_bound",
    "threshold_parameters",
    "forward_f_chain",
    "forward_polynomial",
    "asymptotic_bound",
    "closed_form_last_phase",
    "closed_form_second_last_phase",
    "closed_form_third_last_phase",
    "closed_form_m2",
    "clamp_epsilon",
]

#: Paper analyses slack in ``(0, 1]``; larger slack is clamped to 1 by the
#: algorithm layer (thresholds stay valid — they only become conservative).
EPSILON_MAX = 1.0

#: Root-finding tolerance on ``c``.
_C_XTOL = 1e-13


def clamp_epsilon(epsilon: float) -> float:
    """Clamp a declared slack into the analysed range ``(0, 1]``.

    The slack condition for ``epsilon > 1`` implies the condition for
    ``epsilon = 1``, so running the algorithm with the clamped value keeps
    every guarantee (footnote 2 of the paper notes constant-competitive
    greedy alternatives for ``epsilon > 1``).
    """
    if epsilon <= 0:
        raise ValueError(f"slack must be positive, got {epsilon}")
    return min(epsilon, EPSILON_MAX)


def forward_f_chain(c: float, m: int, k: int) -> np.ndarray:
    """Evaluate the forward chain: parameters ``f_k .. f_m`` for ratio *c*.

    Returns an array of length ``m - k + 1`` whose entry ``i`` is
    :math:`f_{k+i}`.  Monotonicity :math:`f_q < f_{q+1}` holds whenever the
    produced values satisfy :math:`f_q > 1` (the analysed regime).
    """
    if not 1 <= k <= m:
        raise ValueError(f"phase index k={k} out of range [1, {m}]")
    f = np.empty(m - k + 1, dtype=float)
    f[0] = (c * k - 1.0) / m
    depth = float(k)
    for i in range(1, m - k + 1):
        depth += f[i - 1] - 1.0
        f[i] = (c * depth - 1.0) / m
    return f


def forward_polynomial(m: int, k: int) -> np.polynomial.Polynomial:
    """The map ``c -> f_m`` of the forward chain as an explicit polynomial.

    Degree is ``m - k + 1``.  Used for the closed-form solvers (the paper's
    analytic expressions for phases ``k ∈ {m-2, m-1, m}`` are exactly the
    low-degree cases) and for cross-validating the iterative chain.
    """
    Poly = np.polynomial.Polynomial
    f = Poly([-1.0 / m, k / m])  # f_k = (c k - 1) / m
    depth = Poly([float(k)])
    for _ in range(k, m):
        depth = depth + f - 1.0
        # f_{q+1} = (c * D_{q+1} - 1) / m ; multiplying by c shifts coeffs.
        shifted = Poly(np.concatenate(([0.0], depth.coef)))
        f = (shifted - 1.0) / m
    return f


def corner_closed_form(k: int, m: int) -> float:
    """Closed form for the corner values (derived in this reproduction):

    .. math::

        \\varepsilon_{k,m} \\;=\\;
        \\Bigl(\\frac{km}{km + 2m + 1}\\Bigr)^{m-k}
        \\qquad k \\in \\{1, \\dots, m\\}.

    *Proof sketch.*  At the corner, :math:`c = (2m+1)/k` and the forward
    chain's depth recursion :math:`D_{q+1} = D_q (1 + c/m) - (m+1)/m` is
    affine with ratio :math:`\\rho = (km+2m+1)/(km)` and fixed point
    :math:`D^* = (m+1)/c`; starting from :math:`D_k = k` one gets
    :math:`D_q - D^* = \\frac{km}{2m+1}\\rho^{\\,q-k}`, hence
    :math:`f_m - 1 = c (D_m - D^*)/m = \\rho^{\\,m-k}` and
    :math:`\\varepsilon_{k,m} = 1/(f_m - 1) = \\rho^{-(m-k)}`.

    The paper computes corners numerically; this expression reproduces
    Eq. (7)'s values exactly (e.g. :math:`\\varepsilon_{1,2} = 2/7`,
    :math:`\\varepsilon_{1,3} = 9/100`, :math:`\\varepsilon_{2,3} = 6/13`)
    and is cross-validated against the rational-arithmetic chain in the
    test-suite for all :math:`m \\le 12`.
    """
    if not 1 <= k <= m:
        raise ValueError(f"need 1 <= k <= m, got k={k}, m={m}")
    return (k * m / (k * m + 2.0 * m + 1.0)) ** (m - k)


@lru_cache(maxsize=64)
def corner_values_exact(m: int) -> tuple:
    """Corner values as exact rationals (:class:`fractions.Fraction`).

    At a corner, :math:`c = (2m+1)/k` and :math:`f_k = 2` are rational, and
    the forward chain preserves rationality, so every
    :math:`\\varepsilon_{k,m} = 1/(f_m - 1)` is an exact rational number —
    e.g. :math:`\\varepsilon_{1,2} = 2/7`, :math:`\\varepsilon_{1,3} =
    9/100`, :math:`\\varepsilon_{2,3} = 6/13`.  Used to cross-validate the
    float pipeline to full precision.
    """
    from fractions import Fraction

    if m < 1:
        raise ValueError(f"machine count must be >= 1, got {m}")
    corners: list = [Fraction(0)]
    for k in range(1, m):
        c = Fraction(2 * m + 1, k)
        f = Fraction(c * k - 1, m)
        depth = Fraction(k)
        for _ in range(k, m):
            depth += f - 1
            f = (c * depth - 1) / m
        corners.append(1 / (f - 1))
    corners.append(Fraction(1))
    return tuple(corners)


@lru_cache(maxsize=256)
def corner_values(m: int) -> tuple[float, ...]:
    """Corner values ``(eps_{0,m}, eps_{1,m}, ..., eps_{m,m})``.

    ``eps_{0,m} = 0`` and ``eps_{m,m} = 1`` by definition; for
    ``k ∈ {1, ..., m-1}`` the value solves :math:`f_k(\\varepsilon) = 2`
    (Eq. (7)).  Uses the closed form derived in this reproduction
    (:func:`corner_closed_form`, proven equal to running the forward chain
    at :math:`c = (2m+1)/k` and cross-validated against exact rational
    arithmetic in the test-suite), making the whole tuple ``O(m)`` — the
    chain evaluation would be ``O(m^2)``, which matters for the capacity
    planner's fleet scans.  The sequence is strictly increasing.
    """
    if m < 1:
        raise ValueError(f"machine count must be >= 1, got {m}")
    corners = [0.0]
    corners.extend(corner_closed_form(k, m) for k in range(1, m))
    corners.append(1.0)
    return tuple(corners)


def phase_index(epsilon: float, m: int) -> int:
    """The phase ``k`` with ``epsilon ∈ (eps_{k-1,m}, eps_{k,m}]``."""
    epsilon = clamp_epsilon(epsilon)
    corners = corner_values(m)
    for k in range(1, m + 1):
        if epsilon <= corners[k] + 1e-15:
            return k
    return m  # pragma: no cover - unreachable because corners[m] = 1


@dataclass(frozen=True)
class ThresholdParameters:
    """The full parameter set Algorithm 1 needs for a given ``(eps, m)``.

    Attributes
    ----------
    m:
        Number of machines.
    epsilon:
        (Clamped) slack value the parameters were derived for.
    k:
        Phase index; the threshold uses the ``m - k + 1`` least loaded
        machines.
    c:
        The bound value :math:`c(\\varepsilon, m) = (m f_k + 1)/k`.
    f:
        Array of length ``m - k + 1``; ``f[i]`` is :math:`f_{k+i}` — the
        multiplier of the machine with the ``(k+i)``-th largest load
        (1-based machine ranks ``k .. m``).
    """

    m: int
    epsilon: float
    k: int
    c: float
    f: np.ndarray

    def factor_for_rank(self, rank: int) -> float:
        """The multiplier :math:`f_{rank}` for 1-based load rank ``rank``.

        Ranks below ``k`` do not take part in the threshold and raise.
        """
        if not self.k <= rank <= self.m:
            raise ValueError(f"rank {rank} outside threshold range [{self.k}, {self.m}]")
        return float(self.f[rank - self.k])

    def verify(self, atol: float = 1e-8) -> None:
        """Self-check the defining identities (anchor, Eq. (5), Eq. (6))."""
        anchor = (1.0 + self.epsilon) / self.epsilon
        if not math.isclose(self.f[-1], anchor, rel_tol=1e-9, abs_tol=atol):
            raise AssertionError(
                f"anchor violated: f_m={self.f[-1]} != (1+eps)/eps={anchor}"
            )
        depth = float(self.k)
        for i, fq in enumerate(self.f):
            ratio = (1.0 + self.m * fq) / depth
            if not math.isclose(ratio, self.c, rel_tol=1e-8, abs_tol=atol):
                raise AssertionError(
                    f"Eq.(5) violated at q={self.k + i}: ratio {ratio} != c {self.c}"
                )
            depth += fq - 1.0
        if np.any(self.f < 2.0 - 1e-9):
            raise AssertionError(f"Eq.(6) violated: min f = {self.f.min()} < 2")
        if np.any(np.diff(self.f) <= -1e-12):
            raise AssertionError("monotonicity f_q < f_{q+1} violated")


class BoundFunction:
    """The tight bound :math:`c(\\cdot, m)` for a fixed machine count.

    Construction precomputes the corner values; :meth:`value` and
    :meth:`parameters` solve the recursion for individual slack values, and
    :meth:`series` evaluates a whole grid (the Fig. 1 reproduction).
    """

    def __init__(self, m: int) -> None:
        if m < 1:
            raise ValueError(f"machine count must be >= 1, got {m}")
        self.m = m
        self.corners = np.array(corner_values(m))

    # ------------------------------------------------------------------
    def phase(self, epsilon: float) -> int:
        """Phase index ``k`` for slack *epsilon*."""
        return phase_index(epsilon, self.m)

    def value(self, epsilon: float) -> float:
        """The bound :math:`c(\\varepsilon, m)`."""
        return self.parameters(epsilon).c

    def parameters(self, epsilon: float) -> ThresholdParameters:
        """Solve the recursion: phase, ratio and multipliers for *epsilon*."""
        epsilon = clamp_epsilon(epsilon)
        m = self.m
        k = self.phase(epsilon)
        target = (1.0 + epsilon) / epsilon

        def residual(c: float) -> float:
            return forward_f_chain(c, m, k)[-1] - target

        c_lo = (2.0 * m + 1.0) / k  # corner of the phase: f_k = 2 exactly
        r_lo = residual(c_lo)
        if abs(r_lo) <= 1e-12:
            c_star = c_lo
        else:
            if r_lo > 0:
                # Numerical guard: epsilon is (up to float noise) at the
                # right corner where c_lo is already exact.
                c_star = c_lo
            else:
                c_hi = max(2.0 * c_lo, 4.0)
                while residual(c_hi) < 0.0:
                    c_hi *= 2.0
                    if c_hi > 1e18:  # pragma: no cover - defensive
                        raise RuntimeError("bracketing for c diverged")
                c_star = float(brentq(residual, c_lo, c_hi, xtol=_C_XTOL, rtol=1e-15))
        f = forward_f_chain(c_star, m, k)
        return ThresholdParameters(m=m, epsilon=epsilon, k=k, c=c_star, f=f)

    def series(self, eps_grid: Sequence[float]) -> np.ndarray:
        """Vectorized convenience: ``c(eps, m)`` for every eps in the grid."""
        return np.array([self.value(float(e)) for e in np.asarray(eps_grid, dtype=float)])

    def transition_points(self) -> list[tuple[float, float]]:
        """The Fig. 1 'circles': ``(eps_{k,m}, c(eps_{k,m}, m))`` pairs.

        Only interior corners ``k ∈ {1, ..., m-1}`` are transitions (the
        endpoints 0 and 1 delimit the domain).
        """
        return [
            (float(self.corners[k]), (2.0 * self.m + 1.0) / k)
            for k in range(1, self.m)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoundFunction(m={self.m})"


@lru_cache(maxsize=64)
def _bound_function(m: int) -> BoundFunction:
    return BoundFunction(m)


def c_bound(epsilon: float, m: int) -> float:
    """Module-level cached evaluation of :math:`c(\\varepsilon, m)`."""
    return _bound_function(m).value(epsilon)


def threshold_parameters(epsilon: float, m: int) -> ThresholdParameters:
    """Module-level cached access to the Algorithm-1 parameter set."""
    return _bound_function(m).parameters(epsilon)


# ----------------------------------------------------------------------
# Closed forms (cross-validation targets; Eq. (1) and the analytic phases)
# ----------------------------------------------------------------------

def closed_form_last_phase(epsilon: float, m: int) -> float:
    """Phase ``k = m`` closed form: :math:`c = 1 + 1/m + 1/\\varepsilon`.

    Valid for ``epsilon ∈ (eps_{m-1,m}, 1]``; follows directly from
    ``c = (m f_m + 1)/m`` with the anchor ``f_m = (1+eps)/eps``.
    """
    return 1.0 + 1.0 / m + 1.0 / epsilon


def closed_form_second_last_phase(epsilon: float, m: int) -> float:
    """Phase ``k = m - 1`` closed form (positive quadratic root).

    Derived from the two-step chain
    ``f_{m-1} = (c (m-1) - 1)/m`` and ``c (m - 2 + f_{m-1}) = m F + 1``
    with ``F = (1+eps)/eps``, i.e.

    .. math:: (m-1) c^2 + (m^2 - 2m - 1) c - (m^2 F + m) = 0.

    For ``m = 2`` this reduces to Eq. (1)'s first branch.
    """
    if m < 2:
        raise ValueError("second-to-last phase needs m >= 2")
    big_f = (1.0 + epsilon) / epsilon
    a = m - 1.0
    b = m * m - 2.0 * m - 1.0
    const = -(m * m * big_f + m)
    disc = b * b - 4.0 * a * const
    return (-b + math.sqrt(disc)) / (2.0 * a)


def closed_form_third_last_phase(epsilon: float, m: int) -> float:
    """Phase ``k = m - 2`` closed form via the explicit cubic.

    The forward map is a cubic polynomial in ``c``; we return its unique
    root above the phase's corner ratio ``(2m+1)/(m-2)``.
    """
    if m < 3:
        raise ValueError("third-to-last phase needs m >= 3")
    big_f = (1.0 + epsilon) / epsilon
    poly = forward_polynomial(m, m - 2) - big_f
    roots = poly.roots()
    real = roots[np.abs(roots.imag) < 1e-9].real
    c_min = (2.0 * m + 1.0) / (m - 2.0)
    valid = real[real >= c_min - 1e-9]
    if len(valid) == 0:
        raise ValueError(
            f"no root >= {c_min}: epsilon={epsilon} is outside phase k={m - 2}"
        )
    return float(valid.min())


def closed_form_m2(epsilon: float) -> float:
    """Eq. (1) verbatim: the tight ratio for two machines.

    .. math::

        c(\\varepsilon, 2) = \\begin{cases}
            2 \\sqrt{25/16 + 1/\\varepsilon} + 1/2 & 0 < \\varepsilon < 2/7 \\\\
            3/2 + 1/\\varepsilon                  & 2/7 \\le \\varepsilon \\le 1
        \\end{cases}
    """
    if epsilon <= 0 or epsilon > 1:
        raise ValueError(f"Eq. (1) covers epsilon in (0, 1], got {epsilon}")
    if epsilon < 2.0 / 7.0:
        return 2.0 * math.sqrt(25.0 / 16.0 + 1.0 / epsilon) + 0.5
    return 1.5 + 1.0 / epsilon


def asymptotic_bound(epsilon: float) -> float:
    """Proposition 1's joint limit value :math:`\\ln(1/\\varepsilon)`."""
    if epsilon <= 0:
        raise ValueError(f"slack must be positive, got {epsilon}")
    return math.log(1.0 / epsilon)
