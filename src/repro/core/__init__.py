"""Core contribution of the paper: the bound function and Algorithm 1.

* :mod:`repro.core.params` — the recursion defining :math:`f_q(\\varepsilon, m)`,
  the tight bound :math:`c(\\varepsilon, m)`, phase corner values, closed
  forms and asymptotics (Section 2 / Proposition 1 / Eq. (1)).
* :mod:`repro.core.threshold` — the deterministic online *Threshold*
  algorithm with immediate commitment (Algorithm 1 / Theorem 2).
* :mod:`repro.core.randomized` — the randomized single-machine
  classify-and-select algorithm (Corollary 1).
* :mod:`repro.core.guarantees` — published competitive-ratio guarantees of
  every algorithm implemented in this library, as callables.
"""

from repro.core.params import (
    BoundFunction,
    ThresholdParameters,
    c_bound,
    corner_values,
    phase_index,
    threshold_parameters,
    asymptotic_bound,
    closed_form_last_phase,
    closed_form_second_last_phase,
    closed_form_m2,
    forward_f_chain,
)
from repro.core.threshold import ThresholdPolicy, AllocationRule
from repro.core.randomized import ClassifyAndSelect, expected_load_classify_select
from repro.core.guarantees import GUARANTEES, guarantee_for, theorem2_bound

__all__ = [
    "BoundFunction",
    "ThresholdParameters",
    "c_bound",
    "corner_values",
    "phase_index",
    "threshold_parameters",
    "asymptotic_bound",
    "closed_form_last_phase",
    "closed_form_second_last_phase",
    "closed_form_m2",
    "forward_f_chain",
    "ThresholdPolicy",
    "AllocationRule",
    "ClassifyAndSelect",
    "expected_load_classify_select",
    "GUARANTEES",
    "guarantee_for",
    "theorem2_bound",
]
