"""Published competitive-ratio guarantees, as callables.

The benchmark harness prints *theory vs. measurement* tables; this module
is the single source of truth for the theory column.  Each entry maps an
algorithm name (matching ``policy.name`` / the baseline registry) to a
function ``(epsilon, m) -> bound``.

Sources:

* ``threshold`` — Theorem 2 of the reproduced paper: the tight
  :math:`(m f_k + 1)/k` for phases :math:`k \\le 3`, plus the additive
  :math:`(3 - e)/(e - 1) \\approx 0.164` loss for later phases (Lemma 11).
* ``greedy`` — Goldwasser/Kim–Chwa: greedy acceptance with list scheduling
  is :math:`2 + 1/\\varepsilon` competitive on identical machines (Fig. 1
  caption).
* ``goldwasser-kerbikov`` — optimal deterministic single machine with
  immediate commitment: :math:`2 + 1/\\varepsilon`.
* ``lee-style`` — Lee (2003), commitment on admission:
  :math:`1 + m + m \\varepsilon^{-1/m}`.
* ``dasgupta-palis`` — preemption without migration:
  :math:`1 + 1/\\varepsilon`.
* ``migration-greedy`` — Schwiegelshohn² (2016), preemption + migration,
  large :math:`m`: :math:`(1+\\varepsilon)\\log((1+\\varepsilon)/\\varepsilon)`
  (their algorithm differs; our greedy reconstruction is compared against
  this published figure as a reference line, see DESIGN.md).
* ``classify-select`` — Corollary 1: :math:`O(\\log 1/\\varepsilon)`; the
  concrete callable returns
  :math:`m^* \\cdot c(\\varepsilon, m^*)` / ... — we expose the
  *certified* form ``m* * c(eps, m*) / m*`` = ``c(eps, m*)`` scaled by the
  thinning factor, i.e. ``m* * c(eps, m*)`` is an upper bound on the
  expected ratio for any instance-independent selection; benchmarks report
  the measured expectation next to it.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.core.params import c_bound, phase_index, threshold_parameters
from repro.core.randomized import default_virtual_machines

#: Additive loss of Theorem 2 for phases beyond ``k = 3`` (Lemma 11).
DELAYED_EXECUTION_LOSS: float = (3.0 - math.e) / (math.e - 1.0)


def lower_bound(epsilon: float, m: int) -> float:
    """Theorem 1: no deterministic algorithm beats :math:`c(\\varepsilon, m)`."""
    return c_bound(epsilon, m)


def theorem2_bound(epsilon: float, m: int) -> float:
    """Theorem 2's guarantee for the Threshold algorithm.

    Exactly :math:`c(\\varepsilon, m)` while the phase index satisfies
    ``k <= 3`` (Lemma 10); otherwise the delayed-execution loss of at most
    :math:`(3-e)/(e-1)` is added (Lemma 11).
    """
    c = c_bound(epsilon, m)
    if phase_index(epsilon, m) <= 3:
        return c
    return c + DELAYED_EXECUTION_LOSS


def greedy_bound(epsilon: float, m: int) -> float:
    """Greedy list scheduling: :math:`2 + 1/\\varepsilon` (any ``m``)."""
    return 2.0 + 1.0 / epsilon


def goldwasser_kerbikov_bound(epsilon: float, m: int = 1) -> float:
    """Optimal deterministic single machine: :math:`2 + 1/\\varepsilon`."""
    return 2.0 + 1.0 / epsilon


def lee_bound(epsilon: float, m: int) -> float:
    """Lee (2003): :math:`1 + m + m\\varepsilon^{-1/m}` (commitment on admission)."""
    return 1.0 + m + m * epsilon ** (-1.0 / m)


def dasgupta_palis_bound(epsilon: float, m: int) -> float:
    """DasGupta–Palis (2001): :math:`1 + 1/\\varepsilon` with preemption."""
    return 1.0 + 1.0 / epsilon


def migration_bound(epsilon: float, m: int) -> float:
    """Schwiegelshohn² (2016) large-``m`` bound with preemption + migration."""
    return (1.0 + epsilon) * math.log((1.0 + epsilon) / epsilon)


def classify_select_bound(epsilon: float, m: int = 1) -> float:
    """Corollary 1's expected-ratio bound for our implementation.

    With ``m*`` virtual machines, the expected load is the virtual total
    divided by ``m*``, and the virtual total is within
    ``theorem2_bound(eps, m*)`` of the virtual optimum, which dominates the
    single-machine optimum — hence the certified expected ratio is at most
    ``m* * theorem2_bound(eps, m*)``.  With
    ``m* ≈ ln(1/ε)`` this is :math:`O(\\log^2 1/\\varepsilon)` in the
    crude form; the paper's sharper classification argument removes one
    log factor, and our benchmarks measure expectations far below this
    certified line (see EXPERIMENTS.md, E8).
    """
    m_star = default_virtual_machines(epsilon)
    return m_star * theorem2_bound(min(epsilon, 1.0), m_star)


#: Registry used by the reporting layer.
GUARANTEES: dict[str, Callable[[float, int], float]] = {
    "threshold": theorem2_bound,
    "greedy": greedy_bound,
    "greedy[first-fit]": greedy_bound,
    "greedy[best-fit]": greedy_bound,
    "goldwasser-kerbikov": goldwasser_kerbikov_bound,
    "lee-style": lee_bound,
    "dasgupta-palis": dasgupta_palis_bound,
    "migration-greedy": migration_bound,
    "classify-select": classify_select_bound,
    "lower-bound": lower_bound,
}


def guarantee_for(name: str, epsilon: float, m: int) -> float | None:
    """Look up the published guarantee for algorithm *name*.

    Returns ``None`` for unknown names (e.g. ablation variants without a
    published bound) — callers render those cells as '—'.
    """
    base = name.split("[")[0] if name not in GUARANTEES else name
    fn = GUARANTEES.get(name) or GUARANTEES.get(base)
    return None if fn is None else fn(epsilon, m)


def parameters_summary(epsilon: float, m: int) -> dict:
    """One-line summary of the Algorithm-1 parameter set (for reports)."""
    p = threshold_parameters(min(epsilon, 1.0), m)
    return {
        "epsilon": p.epsilon,
        "m": p.m,
        "k": p.k,
        "c": p.c,
        "f_k": float(p.f[0]),
        "f_m": float(p.f[-1]),
    }
