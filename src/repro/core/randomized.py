"""Corollary 1: randomized single-machine algorithm via classify-and-select.

The paper obtains a randomized :math:`O(\\log 1/\\varepsilon)`-competitive
single-machine algorithm with the *static-classification-and-select*
technique: simulate the deterministic Threshold algorithm on :math:`m`
virtual parallel machines, pick one virtual machine uniformly at random
*up front*, and execute (only) the jobs the virtual run assigns to that
machine, at their virtual start times.

Because one virtual machine's timeline is feasible in isolation, the real
single machine reproduces it verbatim — so the expected accepted load is
exactly :math:`L_m / m`, where :math:`L_m` is the total load of the virtual
:math:`m`-machine Threshold schedule.  Choosing
:math:`m \\approx \\ln(1/\\varepsilon)` balances
:math:`c(\\varepsilon, m) = \\Theta(\\log 1/\\varepsilon)` against the
:math:`1/m` thinning and yields the corollary's bound.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.threshold import ThresholdPolicy
from repro.engine.policy import Decision, OnlinePolicy
from repro.engine.simulator import simulate
from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.machine import MachineState
from repro.utils.rng import rng_from_any


def default_virtual_machines(epsilon: float) -> int:
    """The paper's balancing choice :math:`m \\approx \\ln(1/\\varepsilon)`.

    Clamped below at 1; for large slack one virtual machine (i.e. the plain
    deterministic algorithm) is already constant-competitive.
    """
    if epsilon <= 0:
        raise ValueError(f"slack must be positive, got {epsilon}")
    return max(1, round(math.log(1.0 / min(epsilon, 1.0))))


class ClassifyAndSelect(OnlinePolicy):
    """Randomized single-machine policy (Corollary 1).

    Parameters
    ----------
    virtual_machines:
        Number of virtual machines ``m`` to simulate; ``None`` selects
        :func:`default_virtual_machines` at :meth:`reset` time.
    rng:
        Seed or generator for the uniform machine selection.
    selected:
        Fix the selected virtual machine (used to enumerate the whole
        sample space when computing exact expectations).
    """

    immediate_commitment = True

    def __init__(
        self,
        virtual_machines: int | None = None,
        rng: int | np.random.Generator | None = None,
        selected: int | None = None,
    ) -> None:
        self._requested_m = virtual_machines
        self._rng = rng_from_any(rng)
        self._fixed_selection = selected
        self.name = "classify-select"
        self.virtual_m: int | None = None
        self.selected: int | None = None
        self._virtual_policy: ThresholdPolicy | None = None
        self._virtual_machines: list[MachineState] | None = None

    # ------------------------------------------------------------------
    def reset(self, machines: int, epsilon: float) -> None:
        if machines != 1:
            raise ValueError(
                f"classify-and-select is a single-machine algorithm; got m={machines}"
            )
        self.virtual_m = (
            self._requested_m
            if self._requested_m is not None
            else default_virtual_machines(epsilon)
        )
        if self._fixed_selection is not None:
            if not 0 <= self._fixed_selection < self.virtual_m:
                raise ValueError(
                    f"selected machine {self._fixed_selection} out of range "
                    f"[0, {self.virtual_m})"
                )
            self.selected = self._fixed_selection
        else:
            self.selected = int(self._rng.integers(self.virtual_m))
        self._virtual_policy = ThresholdPolicy()
        self._virtual_policy.reset(self.virtual_m, epsilon)
        self._virtual_machines = [MachineState(i) for i in range(self.virtual_m)]

    # ------------------------------------------------------------------
    def on_submission(
        self, job: Job, t: float, machines: Sequence[MachineState]
    ) -> Decision:
        assert self._virtual_policy is not None and self._virtual_machines is not None
        virtual = self._virtual_policy.on_submission(job, t, self._virtual_machines)
        if virtual.accepted:
            # Keep the virtual world in sync regardless of the selection.
            self._virtual_machines[virtual.machine].commit(job, virtual.start)
        if virtual.accepted and virtual.machine == self.selected:
            return Decision.accept(
                machine=0,
                start=virtual.start,
                virtual_machine=virtual.machine,
                d_lim=virtual.info.get("d_lim"),
            )
        return Decision.reject(
            virtual_accepted=virtual.accepted,
            virtual_machine=virtual.machine,
            d_lim=virtual.info.get("d_lim"),
        )

    def describe(self) -> dict:
        return {
            "name": self.name,
            "virtual_machines": self.virtual_m,
            "selected": self.selected,
        }


def expected_load_classify_select(
    instance: Instance, virtual_machines: int | None = None
) -> tuple[float, np.ndarray]:
    """Exact expected accepted load of classify-and-select on *instance*.

    Runs the deterministic virtual simulation once and averages over the
    uniform machine selection (the only randomness):
    returns ``(expected_load, per_virtual_machine_loads)``.
    """
    if instance.machines != 1:
        raise ValueError("expected-load analysis applies to single-machine instances")
    m = (
        virtual_machines
        if virtual_machines is not None
        else default_virtual_machines(instance.epsilon)
    )
    virtual_instance = instance.with_machines(m)
    schedule = simulate(ThresholdPolicy(), virtual_instance)
    loads = np.array(schedule.machine_loads())
    return float(loads.mean()), loads
