"""Test-support utilities shipped with the library.

Currently: the chaos/fault-injection harness used to validate the
resilient sweep runner, the on-disk bracket cache and the verified
journal transport (:mod:`repro.testing.chaos`).
"""

from repro.testing.chaos import (
    ChaosError,
    ChaosPlan,
    ChaosTransport,
    HostChaosPlan,
    WorkerChaosPlan,
    bitflip,
    corrupt_file,
    drop_transfer,
    truncate_tail,
)

__all__ = [
    "ChaosError",
    "ChaosPlan",
    "ChaosTransport",
    "HostChaosPlan",
    "WorkerChaosPlan",
    "bitflip",
    "corrupt_file",
    "drop_transfer",
    "truncate_tail",
]
