"""Test-support utilities shipped with the library.

Currently: the chaos/fault-injection harness used to validate the
resilient sweep runner (:mod:`repro.testing.chaos`).
"""

from repro.testing.chaos import ChaosError, ChaosPlan

__all__ = ["ChaosError", "ChaosPlan"]
