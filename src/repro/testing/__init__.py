"""Test-support utilities shipped with the library.

Currently: the chaos/fault-injection harness used to validate the
resilient sweep runner and the on-disk bracket cache
(:mod:`repro.testing.chaos`).
"""

from repro.testing.chaos import ChaosError, ChaosPlan, corrupt_file, truncate_tail

__all__ = ["ChaosError", "ChaosPlan", "corrupt_file", "truncate_tail"]
