"""Chaos / fault-injection harness for the resilient sweep runner.

A fault-tolerance layer is only trustworthy if its failure paths are
exercised deliberately.  :class:`ChaosPlan` injects the four failure
modes a real sweep fleet sees — worker **crashes** (hard process death),
**hangs** (a worker that never returns), **transient exceptions** and
**corrupted results** — into sweep cells, driven entirely by
deterministic seeds so every chaotic run is replayable.

The plan is a frozen, picklable dataclass: the resilient runner ships it
to worker processes, and each worker consults ``fault_for(cell_seed,
attempt)`` before (or, for corruption, after) evaluating its cell.  Fault
assignment depends only on ``(plan.seed, cell_seed)``, never on wall
clock or execution order, so a test can pre-compute exactly which cells
will misbehave and assert that the runner quarantines *only* the truly
poisoned ones.

Faults come in two severities:

* **transient** — injected on the first attempt only; a single retry
  recovers the cell.  Models flaky infrastructure.
* **persistent** — injected on *every* attempt; the runner must exhaust
  its retry budget and quarantine the cell.  Models poison cells
  (pathological inputs, broken dependencies).

The split is drawn per cell with probability ``persistent_rate``.
"""

from __future__ import annotations

import dataclasses
import os
import random
import time
from dataclasses import dataclass
from typing import Iterable

from repro.utils.rng import interleave_seeds
from repro.workloads.sweep import SweepRow

#: Injectable fault kinds, in draw order.
FAULT_KINDS: tuple[str, ...] = ("crash", "hang", "error", "corrupt")

#: Exit code used by injected worker crashes (recognisable in tests/logs).
CHAOS_EXIT_CODE = 113

#: Salt folded into per-cell draws so chaos streams never collide with
#: the workload-generation streams derived from the same cell seed.
_CHAOS_SALT = 0xC4A05


class ChaosError(RuntimeError):
    """The injected transient exception ('error' fault kind)."""


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic fault-injection plan for one sweep run.

    Rates are independent probabilities stacked in :data:`FAULT_KINDS`
    order; their sum must be ``<= 1``.  ``seed`` namespaces the plan so
    two plans with equal rates but different seeds poison different
    cells.
    """

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    error_rate: float = 0.0
    corrupt_rate: float = 0.0
    #: Of the faulted cells, the fraction whose fault repeats on every
    #: attempt (poison cells); the rest fault on attempt 1 only.
    persistent_rate: float = 0.0
    #: How long an injected hang sleeps; keep well above the runner's
    #: per-cell timeout so the timeout path, not the sleep, ends it.
    hang_seconds: float = 3600.0
    seed: int = 0

    def __post_init__(self) -> None:
        total = self.crash_rate + self.hang_rate + self.error_rate + self.corrupt_rate
        if not 0.0 <= total <= 1.0:
            raise ValueError(f"fault rates must sum to within [0, 1], got {total}")
        if not 0.0 <= self.persistent_rate <= 1.0:
            raise ValueError(f"persistent_rate must be in [0, 1], got {self.persistent_rate}")

    # -- deterministic fault assignment --------------------------------

    def draw(self, cell_seed: int) -> tuple[str | None, bool]:
        """Fault assignment for one cell: ``(kind | None, persistent)``."""
        rng = random.Random(interleave_seeds([self.seed, cell_seed, _CHAOS_SALT]))
        u = rng.random()
        persistent = rng.random() < self.persistent_rate
        edge = 0.0
        for kind, rate in zip(
            FAULT_KINDS,
            (self.crash_rate, self.hang_rate, self.error_rate, self.corrupt_rate),
        ):
            edge += rate
            if u < edge:
                return kind, persistent
        return None, False

    def fault_for(self, cell_seed: int, attempt: int) -> str | None:
        """The fault to inject on *attempt* (1-based) of this cell, if any."""
        kind, persistent = self.draw(cell_seed)
        if kind is None or (attempt > 1 and not persistent):
            return None
        return kind

    def faulted_cells(
        self, cell_seeds: Iterable[int]
    ) -> dict[int, tuple[str, bool]]:
        """Pre-compute ``{seed: (kind, persistent)}`` over a grid.

        Lets tests assert the chaos premise ("at least 20% of cells are
        faulted") and predict the exact quarantine set.
        """
        out: dict[int, tuple[str, bool]] = {}
        for seed in cell_seeds:
            kind, persistent = self.draw(seed)
            if kind is not None:
                out[seed] = (kind, persistent)
        return out

    # -- worker-side execution -----------------------------------------

    def trigger(self, kind: str | None) -> None:
        """Execute a pre-run fault inside the worker process.

        ``crash`` dies without cleanup (as a segfault/OOM-kill would),
        ``hang`` blocks until the runner's timeout reaps the process, and
        ``error`` raises :class:`ChaosError`.  ``corrupt`` and ``None``
        are no-ops here — corruption applies to the *result* via
        :meth:`corrupt_rows`.
        """
        if kind == "crash":
            os._exit(CHAOS_EXIT_CODE)
        if kind == "hang":
            time.sleep(self.hang_seconds)
        if kind == "error":
            raise ChaosError("injected transient fault")

    def corrupt_rows(self, rows: list[SweepRow]) -> list[SweepRow]:
        """Mangle a completed cell's rows (non-finite load, negative count).

        The damage is chosen to be *detectable*: the resilient runner's
        row validator must reject these and count the attempt as a
        ``corrupt`` failure rather than journal garbage.
        """
        return [
            dataclasses.replace(row, accepted_load=float("nan"), accepted_count=-1)
            for row in rows
        ]


@dataclass(frozen=True)
class WorkerChaosPlan:
    """Deterministic *worker-level* fault plan for the elastic scheduler.

    Where :class:`ChaosPlan` poisons individual **cells** (the unit of
    retry), this plan poisons **worker slots** (the unit of leasing in
    :mod:`repro.workloads.elastic`) — the failure modes a heterogeneous
    or dying fleet exhibits even when every cell is healthy:

    * ``slow_worker`` — the slot sleeps a fixed delay before every cell
      (a 10x-slower host).  Its heartbeats keep arriving, so the lease
      keeps extending: the scheduler must classify it *slow*, not hung,
      and recover the tail via speculation rather than terminating it.
    * ``dead_worker`` — the slot hard-dies (``os._exit``) when it picks
      up its Nth cell, every process generation.  The scheduler must
      re-dispatch the orphaned lease, count the slot failure, and
      quarantine the slot once its failure budget is spent.
    * ``lost_heartbeat`` — the slot computes normally but never sends
      heartbeats: from the outside it is indistinguishable from a hung
      worker.  Its leases must expire and re-dispatch elsewhere.
    * ``duplicate_result`` — the slot reports every completed cell
      twice.  The scheduler must accept the first copy and assert the
      second bit-identical (the same check speculation relies on).

    Faults are keyed by worker *slot* index, so a respawned process in
    the same slot inherits the slot's fault — which is exactly how a
    bad host behaves.  Fully deterministic: no RNG, no wall clock.
    """

    #: ``(slot, delay_seconds)``: sleep this long before every cell.
    slow_worker: tuple[tuple[int, float], ...] = ()
    #: ``(slot, nth_cell)``: hard-die when picking up the Nth cell
    #: (1-based) of each process generation in this slot.
    dead_worker: tuple[tuple[int, int], ...] = ()
    #: slots whose heartbeats are suppressed (hang-alike).
    lost_heartbeat: tuple[int, ...] = ()
    #: slots that send every result twice.
    duplicate_result: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for slot, delay in self.slow_worker:
            if delay < 0:
                raise ValueError(f"slow_worker delay must be >= 0, got {delay} (slot {slot})")
        for slot, nth in self.dead_worker:
            if nth < 1:
                raise ValueError(f"dead_worker cell index is 1-based, got {nth} (slot {slot})")

    def delay_for(self, slot: int) -> float:
        """Injected pre-cell sleep for this worker slot (0.0 = healthy)."""
        return next((d for s, d in self.slow_worker if s == slot), 0.0)

    def dies_on_cell(self, slot: int, nth_cell: int) -> bool:
        """Whether this slot hard-dies when picking up its *nth_cell* (1-based)."""
        return any(s == slot and nth_cell >= n for s, n in self.dead_worker)

    def suppresses_heartbeat(self, slot: int) -> bool:
        """Whether this slot's heartbeats are lost in transit."""
        return slot in self.lost_heartbeat

    def duplicates_result(self, slot: int) -> bool:
        """Whether this slot reports every completed cell twice."""
        return slot in self.duplicate_result

    @property
    def faulted_slots(self) -> set[int]:
        """Every worker slot this plan touches (tests assert the premise)."""
        return (
            {s for s, _ in self.slow_worker}
            | {s for s, _ in self.dead_worker}
            | set(self.lost_heartbeat)
            | set(self.duplicate_result)
        )


@dataclass(frozen=True)
class HostChaosPlan:
    """Deterministic *network-level* fault plan for the remote scheduler.

    Where :class:`WorkerChaosPlan` poisons worker **slots** on one
    machine, this plan poisons the network **between** the controller
    and whole remote hosts (:mod:`repro.workloads.remote`) — the
    failure domains a distributed fleet exhibits even when every host
    and every cell is healthy:

    * ``partition`` — from its Nth inbound message (0-based, counted
      after the handshake) the host's traffic is held by the network;
      ``heal_seconds`` after the first held message the partition heals
      and the stale backlog is delivered all at once.  Heartbeats are
      lost meanwhile, so leases expire and re-dispatch; the healed
      host's stale result must be deduped first-verified-wins and
      asserted bit-identical.
    * ``drop`` — the host's Nth inbound message vanishes (a lost
      datagram).  Sequence numbering must make the loss harmless.
    * ``duplicate`` — the host's Nth inbound message is delivered
      twice (a retransmit).  Sequence numbering must dedup the copy
      rather than double-charge the lease.
    * ``dead_host`` — the host's worker processes hard-die when the
      host has been granted its Nth lease (1-based): the whole machine
      is lost.  The scheduler must quarantine the host as one failure
      domain and requeue its leases charge-free.
    * ``slow_host`` — every worker on the host sleeps this long before
      each cell (an overloaded machine).  Heartbeats keep flowing, so
      the lease keeps extending: slow, not dead.

    Faults are keyed by host *name*, so every slot on the host shares
    the fault — which is exactly how a network failure behaves.  Fully
    deterministic: no RNG; the only clock involved is the controller's,
    driving ``heal_seconds``.
    """

    #: ``(host, first_idx, heal_seconds)``: hold inbound messages from
    #: index *first_idx* (0-based, post-handshake), heal after
    #: *heal_seconds* and deliver the backlog late.
    partition: tuple[tuple[str, int, float], ...] = ()
    #: ``(host, idx)``: drop the host's idx-th inbound message.
    drop: tuple[tuple[str, int], ...] = ()
    #: ``(host, idx)``: deliver the host's idx-th inbound message twice.
    duplicate: tuple[tuple[str, int], ...] = ()
    #: ``(host, nth_lease)``: the host dies on its Nth granted lease
    #: (1-based); every lease at or past the Nth kills the worker.
    dead_host: tuple[tuple[str, int], ...] = ()
    #: ``(host, delay_seconds)``: sleep before every cell on this host.
    slow_host: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        for host, first_idx, heal in self.partition:
            if first_idx < 0:
                raise ValueError(
                    f"partition first_idx must be >= 0, got {first_idx} ({host})"
                )
            if heal < 0:
                raise ValueError(
                    f"partition heal_seconds must be >= 0, got {heal} ({host})"
                )
        for host, idx in self.drop + self.duplicate:
            if idx < 0:
                raise ValueError(f"message index must be >= 0, got {idx} ({host})")
        for host, nth in self.dead_host:
            if nth < 1:
                raise ValueError(f"dead_host lease index is 1-based, got {nth} ({host})")
        for host, delay in self.slow_host:
            if delay < 0:
                raise ValueError(f"slow_host delay must be >= 0, got {delay} ({host})")

    def partition_for(self, host: str) -> tuple[int, float] | None:
        """``(first_idx, heal_seconds)`` if this host gets partitioned."""
        return next(
            ((idx, heal) for h, idx, heal in self.partition if h == host), None
        )

    def dropped(self, host: str, idx: int) -> bool:
        """Whether the host's idx-th inbound message is dropped."""
        return (host, idx) in self.drop

    def duplicated(self, host: str, idx: int) -> bool:
        """Whether the host's idx-th inbound message is delivered twice."""
        return (host, idx) in self.duplicate

    def dies_on_lease(self, host: str, nth_lease: int) -> bool:
        """Whether the host hard-dies on its *nth_lease* (1-based) grant."""
        return any(h == host and nth_lease >= n for h, n in self.dead_host)

    def slow_for(self, host: str) -> float:
        """Injected pre-cell sleep on this host (0.0 = healthy)."""
        return next((d for h, d in self.slow_host if h == host), 0.0)

    @property
    def faulted_hosts(self) -> set[str]:
        """Every host this plan touches (tests assert the premise)."""
        return (
            {h for h, _, _ in self.partition}
            | {h for h, _ in self.drop}
            | {h for h, _ in self.duplicate}
            | {h for h, _ in self.dead_host}
            | {h for h, _ in self.slow_host}
        )


def truncate_tail(path: str | os.PathLike, nbytes: int = 1) -> int:
    """Chop *nbytes* off the end of a file, simulating a hard kill mid-write.

    Models the one corruption an append-only, fsync-per-record journal can
    suffer: the final record cut off partway.  Returns the new size.
    Loaders (:func:`repro.workloads.journal.load_journal`, and therefore
    :func:`repro.workloads.sharding.merge_journals`) must tolerate the
    partial trailing line, report it, and count the damaged cell as
    missing rather than fail.
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    new_size = max(0, size - max(1, int(nbytes)))
    with open(path, "r+b") as fh:
        fh.truncate(new_size)
    return new_size


def bitflip(
    path: str | os.PathLike,
    seed: int = 0,
    count: int = 1,
    lo: int = 0,
    hi: int | None = None,
) -> list[int]:
    """Flip *count* bits in ``path[lo:hi]``, simulating in-transit bit rot.

    The damaged byte offsets are drawn deterministically from ``seed``
    (without replacement), so a test can corrupt one shard journal and
    assert that *exactly* the records covering those offsets are
    quarantined.  Restricting ``[lo, hi)`` lets tests aim at a specific
    record — e.g. the ``rows`` payload of one cell line — instead of
    hoping a random flip lands somewhere detectable.  Returns the flipped
    offsets.  The journal integrity layer
    (:func:`repro.workloads.journal.verify_journal`, row CRCs, seals)
    must detect every flip that touches consumed data.
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    hi = size if hi is None else min(hi, size)
    if not 0 <= lo < hi:
        raise ValueError(f"empty flip range [{lo}, {hi}) for {size}-byte file")
    rng = random.Random(interleave_seeds([seed, size, _CHAOS_SALT]))
    count = min(int(count), hi - lo)
    offsets = sorted(rng.sample(range(lo, hi), count))
    with open(path, "r+b") as fh:
        for offset in offsets:
            fh.seek(offset)
            byte = fh.read(1)[0]
            fh.seek(offset)
            fh.write(bytes([byte ^ (1 << rng.randrange(8))]))
    return offsets


def drop_transfer(path: str | os.PathLike, seed: int = 0) -> int:
    """Truncate a file as a dropped connection would: mid-transfer.

    Unlike :func:`truncate_tail` (which models a hard kill cutting the
    *final* record), this cuts at a deterministic point somewhere in the
    middle of the byte stream — the shape a failed ``scp``/HTTP pull
    leaves behind.  Keeps at least one byte and always drops at least
    one; returns the new size.  The transport layer must either resume
    the pull from this offset or detect the damage at verification.
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    if size < 2:
        raise ValueError(f"{path}: too small ({size} bytes) to drop mid-transfer")
    rng = random.Random(interleave_seeds([seed, size, _CHAOS_SALT]))
    new_size = rng.randrange(1, size)
    with open(path, "r+b") as fh:
        fh.truncate(new_size)
    return new_size


class ChaosTransport:
    """Wrap a :class:`~repro.workloads.transport.Transport` with faults.

    *faults* is consumed one entry per ``fetch`` call, in order:

    * ``None`` — the call runs clean;
    * ``"bitflip"`` — the transfer completes, then one bit of the
      delivered file is flipped (in-transit corruption);
    * ``"drop"`` — the transfer is cut mid-stream
      (:func:`drop_transfer`) and raises ``TransportError``;
    * ``"fail"`` — the transfer raises before delivering anything;
    * ``"delay"`` — the transfer stalls ``delay_seconds`` before
      delivering clean (a congested link — retries must not give up on
      a transfer that is merely slow);
    * ``"duplicate"`` — the transfer delivers, then delivers *again*
      (a retransmitted message: the duplicate overwrites bit-identical
      bytes, and consumers with sequence numbering must not be
      double-charged).

    Once the sequence is exhausted every further call runs clean, so a
    test expresses "first pull corrupt, retry succeeds" as
    ``faults=["bitflip"]``.  Fault randomness is seeded per call index —
    fully deterministic, replayable runs.
    """

    def __init__(
        self,
        inner,
        faults: Iterable[str | None],
        seed: int = 0,
        delay_seconds: float = 0.05,
        sleep=time.sleep,
    ) -> None:
        self.inner = inner
        self.faults = list(faults)
        self.seed = int(seed)
        self.delay_seconds = float(delay_seconds)
        self.sleep = sleep
        self.calls = 0
        self.duplicated_calls = 0

    def fetch(
        self,
        source: str,
        dest: str | os.PathLike,
        *,
        offset: int = 0,
        timeout: float | None = None,
    ) -> int:
        from repro.workloads.transport import TransportError

        index = self.calls
        self.calls += 1
        fault = self.faults[index] if index < len(self.faults) else None
        if fault == "fail":
            raise TransportError(f"{source}: injected transport failure (call {index})")
        if fault == "delay":
            self.sleep(self.delay_seconds)
        total = self.inner.fetch(source, dest, offset=offset, timeout=timeout)
        if fault == "bitflip":
            bitflip(dest, seed=interleave_seeds([self.seed, index]))
        elif fault == "drop":
            drop_transfer(dest, seed=interleave_seeds([self.seed, index]))
            raise TransportError(
                f"{source}: injected dropped connection (call {index})"
            )
        elif fault == "duplicate":
            self.inner.fetch(source, dest, offset=offset, timeout=timeout)
            self.duplicated_calls += 1
        return total if fault in (None, "delay", "duplicate") else os.path.getsize(dest)


def corrupt_file(path: str | os.PathLike, seed: int = 0) -> str:
    """Deterministically damage a file on disk; returns the damage mode.

    Models the partial-write / bit-rot failures a persistent cache sees:
    depending on ``seed`` the file is truncated mid-byte, overwritten
    with non-JSON garbage, or rewritten as valid JSON of the wrong shape.
    Readers (e.g. :class:`repro.offline.cache.BracketCache`) must treat
    every mode as a miss, never an exception.
    """
    rng = random.Random(interleave_seeds([seed, _CHAOS_SALT]))
    mode = rng.choice(("truncate", "garbage", "wrong-shape"))
    path = os.fspath(path)
    if mode == "truncate":
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(max(1, size // 2))
    elif mode == "garbage":
        with open(path, "wb") as fh:
            fh.write(bytes(rng.getrandbits(8) for _ in range(64)))
    else:
        with open(path, "w") as fh:
            fh.write('{"not": "a bracket"}')
    return mode
