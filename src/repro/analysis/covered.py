"""Covered-interval diagnostics: the proof machinery of Section 4, executable.

The upper-bound proof partitions time into *covered* intervals —
maximal unions of rejected jobs' feasibility windows ``[r_i, d_i)``
(Definitions 1/2) — and bounds the performance ratio of each interval
separately (Definition 3, Lemmas 7–9).  Outside covered intervals the
algorithm rejected nothing, so nothing was lost there; inside, the
optimum can extract at most ``m × length`` of load.

This module computes those objects from an audited schedule:

* :func:`covered_intervals` — the merged rejected-job windows;
* :func:`interval_diagnostics` — per covered interval: the online load
  executed inside, the ``m·|I|`` capacity, and Definition 3's conservative
  performance-ratio bound (with ``P⁻ = 0``, i.e. assuming the optimum can
  move all flexible work out — the worst case for the algorithm);
* :func:`performance_ratio_bound` — the max over covered intervals; by
  the structure of the Theorem-2 proof this dominates the instance's true
  competitive ratio whenever the optimum gains nothing outside covered
  intervals (exactly the adversarial instances), and the benches verify
  it sits above the measured forced ratio on every duel.

These diagnostics are analysis tools, not part of any algorithm — they
let a user *see* which time windows an admission policy conceded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.schedule import Schedule
from repro.utils.intervals import Interval, merge_intervals
from repro.utils.tolerances import TIME_EPS


def covered_intervals(schedule: Schedule) -> list[Interval]:
    """Merged feasibility windows of the *rejected* jobs (Definition 1/2)."""
    windows = [
        Interval(schedule.instance[jid].release, schedule.instance[jid].deadline)
        for jid in schedule.rejected
    ]
    return merge_intervals(windows)


@dataclass(frozen=True)
class CoveredIntervalDiagnostics:
    """One covered interval's accounting."""

    interval: Interval
    online_load: float  # work the schedule executes inside the interval
    capacity: float  # m * |I| — the optimum's ceiling inside
    rejected_load: float  # total p of jobs rejected with window inside I

    @property
    def ratio_bound(self) -> float:
        """Definition 3's conservative bound ``capacity / online_load + 1``.

        Uses ``P⁻ = 0`` (all flexible work assumed movable), hence an
        *upper* bound on the interval's true performance ratio; infinite
        when the algorithm executed nothing inside a conceded window.
        """
        if self.online_load <= TIME_EPS:
            return float("inf")
        return self.capacity / self.online_load + 1.0


def _load_inside(schedule: Schedule, interval: Interval) -> float:
    total = 0.0
    for machine in range(schedule.instance.machines):
        for _, execution in schedule.machine_timeline(machine):
            lo = max(execution.start, interval.start)
            hi = min(execution.end, interval.end)
            if hi > lo:
                total += hi - lo
    return total


def interval_diagnostics(schedule: Schedule) -> list[CoveredIntervalDiagnostics]:
    """Per-covered-interval accounting of *schedule*."""
    out = []
    for interval in covered_intervals(schedule):
        rejected_load = sum(
            schedule.instance[jid].processing
            for jid in schedule.rejected
            if interval.start - TIME_EPS <= schedule.instance[jid].release
            and schedule.instance[jid].deadline <= interval.end + TIME_EPS
        )
        out.append(
            CoveredIntervalDiagnostics(
                interval=interval,
                online_load=_load_inside(schedule, interval),
                capacity=schedule.instance.machines * interval.length,
                rejected_load=rejected_load,
            )
        )
    return out


def performance_ratio_bound(schedule: Schedule) -> float:
    """Max Definition-3 bound over covered intervals (1.0 if none).

    For schedules where the optimum gains nothing outside covered
    intervals (adversarial instances by construction), this dominates the
    true competitive ratio; for benign traffic it is simply a diagnostic
    of how badly the worst conceded window was handled.
    """
    diagnostics = interval_diagnostics(schedule)
    if not diagnostics:
        return 1.0
    return max(d.ratio_bound for d in diagnostics)


def uncovered_fraction(schedule: Schedule) -> float:
    """Fraction of the busy horizon not intersecting any rejected window.

    High values mean the policy conceded little of the timeline; 1.0 means
    it rejected nothing at all.
    """
    horizon = max(schedule.makespan(), schedule.instance.horizon)
    if horizon <= TIME_EPS:
        return 1.0
    covered = sum(
        min(iv.end, horizon) - max(iv.start, 0.0)
        for iv in covered_intervals(schedule)
        if iv.end > 0 and iv.start < horizon
    )
    return max(0.0, 1.0 - covered / horizon)


def rows(schedule: Schedule) -> list[dict]:
    """Table rows for the reporting layer."""
    return [
        {
            "start": d.interval.start,
            "end": d.interval.end,
            "length": d.interval.length,
            "online_load": d.online_load,
            "capacity": d.capacity,
            "rejected_load": d.rejected_load,
            "ratio_bound": d.ratio_bound,
        }
        for d in interval_diagnostics(schedule)
    ]
