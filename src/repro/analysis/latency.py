"""Latency analytics: how long accepted jobs wait before starting.

Admission control trades acceptance against responsiveness: a policy
that queues work deep behind committed load accepts more but responds
slower.  This module summarises the *waiting time* (``start − release``)
and *flow time* (``completion − release``, also normalised by processing
time — the classical *stretch*) of a schedule's accepted jobs, enabling
the response-time columns in the cloud comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.schedule import Schedule


@dataclass(frozen=True)
class LatencyStats:
    """Waiting/flow/stretch statistics of one schedule's accepted jobs."""

    count: int
    mean_wait: float
    median_wait: float
    p95_wait: float
    max_wait: float
    mean_flow: float
    mean_stretch: float

    def as_dict(self) -> dict:
        """Flat dict for the table layer."""
        return {
            "accepted": self.count,
            "mean_wait": self.mean_wait,
            "median_wait": self.median_wait,
            "p95_wait": self.p95_wait,
            "max_wait": self.max_wait,
            "mean_flow": self.mean_flow,
            "mean_stretch": self.mean_stretch,
        }


def latency_stats(schedule: Schedule) -> LatencyStats:
    """Compute :class:`LatencyStats` for *schedule* (zeros when empty)."""
    waits, flows, stretches = [], [], []
    for jid, a in schedule.assignments.items():
        job = schedule.instance[jid]
        wait = a.start - job.release
        flow = wait + job.processing
        waits.append(wait)
        flows.append(flow)
        stretches.append(flow / job.processing)
    if not waits:
        return LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    w = np.asarray(waits)
    return LatencyStats(
        count=len(w),
        mean_wait=float(w.mean()),
        median_wait=float(np.median(w)),
        p95_wait=float(np.quantile(w, 0.95)),
        max_wait=float(w.max()),
        mean_flow=float(np.mean(flows)),
        mean_stretch=float(np.mean(stretches)),
    )


def compare_latency(schedules: dict[str, Schedule]) -> list[dict]:
    """One latency row per named schedule (for the reporting layer)."""
    rows = []
    for name, schedule in schedules.items():
        row = {"algorithm": name}
        row.update(latency_stats(schedule).as_dict())
        rows.append(row)
    return rows


def slack_headroom(schedule: Schedule) -> float:
    """Mean unused deadline headroom of accepted jobs, in units of p.

    ``(d − completion)/p`` averaged over accepted jobs: how much of the
    purchased slack the policy actually consumed.  1 full unit of ε means
    the job finished exactly one ``ε·p`` before its deadline.
    """
    ratios = []
    for jid, a in schedule.assignments.items():
        job = schedule.instance[jid]
        completion = a.start + job.processing
        ratios.append((job.deadline - completion) / job.processing)
    return float(np.mean(ratios)) if ratios else 0.0
