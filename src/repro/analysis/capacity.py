"""Capacity planning: the provider-facing inverses of c(ε, m).

The paper treats slack as "a system parameter determined by the system
provider" and shows how the guarantee improves with machines.  This
module answers the two planning questions an operator would actually ask:

* :func:`machines_for_target` — the fewest machines whose *worst-case*
  guarantee meets a target ratio at a given slack;
* :func:`slack_for_target` — the smallest slack (longest acceptable SLA
  deadline stretch) that meets a target ratio on a given fleet.

Both walk the exact bound function, so the answers inherit its
guarantees; :func:`planning_table` tabulates the trade-off surface.
"""

from __future__ import annotations

import math


from repro.core.guarantees import theorem2_bound
from repro.core.params import c_bound

#: Largest fleet the planner scans.  The infimum of the bound over m is
#: 2 + ln(1/eps) (EXPERIMENTS.md E3) and is checked analytically first, so
#: the scan only runs for genuinely achievable targets; those need modest
#: fleets (the bound is within 0.1 of its limit by m ~ 256 for eps >= 1e-4).
M_SEARCH_CAP = 512


def machines_for_target(epsilon: float, target_ratio: float) -> int | None:
    """Fewest machines with ``theorem2_bound(eps, m) <= target_ratio``.

    Returns ``None`` when the target is unachievable at this slack — the
    fixed-ε limit of the bound is ``2 + ln(1/ε)`` (see EXPERIMENTS.md E3),
    so targets below that cannot be bought with machines alone.

    The search is a linear scan: unlike the tight bound ``c(ε, m)``, the
    Theorem-2 *guarantee* is not monotone in ``m`` — the Lemma-11 additive
    loss ``(3−e)/(e−1)`` switches on when the phase index reaches 4, so an
    extra machine can occasionally *worsen* the guarantee by up to 0.164
    (e.g. ``theorem2_bound(0.1, 8) > theorem2_bound(0.1, 7)``); binary
    search would be unsound.
    """
    if target_ratio <= 1.0:
        return None
    # Analytic impossibility: c(eps, m) decreases in m toward its infimum
    # 2 + ln(1/eps), and theorem2_bound >= c, so targets at or below the
    # infimum can never be met (avoids scanning the whole cap).
    if target_ratio <= 2.0 + math.log(1.0 / min(epsilon, 1.0)):
        return None
    for m in range(1, M_SEARCH_CAP + 1):
        if theorem2_bound(epsilon, m) <= target_ratio:
            return m
    return None


def machines_for_target_exact(epsilon: float, target_ratio: float) -> int | None:
    """Alias of :func:`machines_for_target` (the scan is already exact)."""
    return machines_for_target(epsilon, target_ratio)


def slack_for_target(m: int, target_ratio: float, tol: float = 1e-9) -> float | None:
    """Smallest slack with ``theorem2_bound(eps, m) <= target_ratio``.

    ``c(·, m)`` is continuous and strictly decreasing on (0, 1], so the
    answer is a bisection; returns ``None`` when even ``eps = 1`` misses
    the target (the floor is ``2 + 1/m``).
    """
    if theorem2_bound(1.0, m) > target_ratio:
        return None
    lo, hi = 1e-9, 1.0
    if theorem2_bound(lo, m) <= target_ratio:
        return lo
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if theorem2_bound(mid, m) <= target_ratio:
            hi = mid
        else:
            lo = mid
    return hi


def planning_table(
    epsilons=(0.05, 0.1, 0.2, 0.5),
    machine_counts=(1, 2, 4, 8, 16),
) -> list[dict]:
    """The (ε, m) → guarantee trade-off surface, one row per cell."""
    rows = []
    for eps in epsilons:
        for m in machine_counts:
            rows.append(
                {
                    "epsilon": eps,
                    "machines": m,
                    "c": c_bound(eps, m),
                    "guarantee": theorem2_bound(eps, m),
                }
            )
    return rows


def marginal_machine_value(epsilon: float, up_to: int = 16) -> list[dict]:
    """Per-machine improvement of the tight bound and the guarantee.

    The ``c_improvement`` column is always non-negative (``c`` is monotone
    in ``m``); the ``guarantee_improvement`` column can dip slightly
    negative where the Lemma-11 additive loss switches on — the planner's
    reason for linear scanning.
    """
    cs = [c_bound(epsilon, m) for m in range(1, up_to + 1)]
    gs = [theorem2_bound(epsilon, m) for m in range(1, up_to + 1)]
    return [
        {
            "machines": m + 1,
            "c": cs[m],
            "guarantee": gs[m],
            "c_improvement": cs[m - 1] - cs[m] if m > 0 else float("nan"),
            "guarantee_improvement": gs[m - 1] - gs[m] if m > 0 else float("nan"),
        }
        for m in range(up_to)
    ]
