"""Utilization timelines: how busy the committed schedule keeps the fleet.

Admission control is ultimately a capacity-management tool, so the cloud
example and comparison benches report *utilization*: the fraction of
machine-time occupied by committed work over sliding windows.  This module
computes those series from audited schedules and renders them as ASCII
heat strips.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.schedule import Schedule
from repro.utils.intervals import Interval, merge_intervals
from repro.utils.tolerances import TIME_EPS

#: Shade glyphs from idle to fully busy.
_SHADES = " .:-=+*#%@"


@dataclass(frozen=True)
class UtilizationSeries:
    """Windowed utilization of one schedule."""

    window_edges: np.ndarray  # length n+1
    per_machine: np.ndarray  # shape (machines, n) in [0, 1]

    @property
    def total(self) -> np.ndarray:
        """Fleet-average utilization per window."""
        return self.per_machine.mean(axis=0)

    @property
    def peak(self) -> float:
        """Highest fleet-average utilization over the horizon."""
        return float(self.total.max()) if self.total.size else 0.0

    def mean_utilization(self) -> float:
        """Time-weighted average fleet utilization."""
        if self.total.size == 0:
            return 0.0
        widths = np.diff(self.window_edges)
        return float(np.average(self.total, weights=widths))


def utilization(
    schedule: Schedule, windows: int = 50, horizon: float | None = None
) -> UtilizationSeries:
    """Windowed utilization of *schedule*.

    Splits ``[0, horizon)`` (default: the later of makespan and instance
    horizon) into equal windows and computes, per machine, the busy
    fraction of each window.
    """
    if windows < 1:
        raise ValueError(f"windows must be >= 1, got {windows}")
    if horizon is None:
        horizon = max(schedule.makespan(), schedule.instance.horizon)
    if horizon <= TIME_EPS:
        edges = np.linspace(0.0, 1.0, windows + 1)
        return UtilizationSeries(
            window_edges=edges,
            per_machine=np.zeros((schedule.instance.machines, windows)),
        )
    edges = np.linspace(0.0, horizon, windows + 1)
    m = schedule.instance.machines
    busy = np.zeros((m, windows))
    for machine in range(m):
        intervals = merge_intervals(
            [iv for _, iv in schedule.machine_timeline(machine)]
        )
        for iv in intervals:
            lo_idx = int(np.searchsorted(edges, iv.start, side="right")) - 1
            hi_idx = int(np.searchsorted(edges, iv.end, side="left"))
            for w in range(max(lo_idx, 0), min(hi_idx, windows)):
                overlap = min(iv.end, edges[w + 1]) - max(iv.start, edges[w])
                if overlap > 0:
                    busy[machine, w] += overlap
    widths = np.diff(edges)
    return UtilizationSeries(window_edges=edges, per_machine=busy / widths)


def render_heat_strip(series: UtilizationSeries, label: str = "fleet") -> str:
    """One-line ASCII heat strip of the fleet-average utilization."""
    glyphs = "".join(
        _SHADES[min(int(u * (len(_SHADES) - 1) + 0.5), len(_SHADES) - 1)]
        for u in series.total
    )
    return f"{label:>8s} |{glyphs}| mean={series.mean_utilization():.2f} peak={series.peak:.2f}"


def render_heatmap(series: UtilizationSeries) -> str:
    """Per-machine ASCII heatmap plus the fleet strip."""
    lines = []
    for machine in range(series.per_machine.shape[0]):
        glyphs = "".join(
            _SHADES[min(int(u * (len(_SHADES) - 1) + 0.5), len(_SHADES) - 1)]
            for u in series.per_machine[machine]
        )
        lines.append(f"      m{machine} |{glyphs}|")
    lines.append(render_heat_strip(series))
    return "\n".join(lines)


def busy_intervals(schedule: Schedule, machine: int) -> list[Interval]:
    """Merged busy intervals of one machine (convenience re-export)."""
    return merge_intervals([iv for _, iv in schedule.machine_timeline(machine)])
