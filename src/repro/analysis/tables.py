"""Plain-text and markdown table rendering for benchmark reports.

Rows are plain dicts; columns are inferred (or given).  Numeric cells are
formatted to a consistent precision; ``None`` renders as an em-dash.  Kept
dependency-free so benchmark output stays readable in CI logs.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence


def _fmt(value: Any, precision: int) -> str:
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if math.isnan(value):
            return "nan"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    precision: int = 4,
    title: str | None = None,
) -> str:
    """Render *rows* as an aligned monospace table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(col), precision) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "  ".join("-" * w for w in widths)
    body = "\n".join(
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)) for row in cells
    )
    out = [header, rule, body]
    if title:
        out.insert(0, title)
    return "\n".join(out)


def format_markdown(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    precision: int = 4,
) -> str:
    """Render *rows* as a GitHub-flavoured markdown table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_fmt(row.get(col), precision) for col in columns) + " |"
        )
    return "\n".join(lines)


def render_rows(
    rows: Iterable[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    precision: int = 4,
    title: str | None = None,
    markdown: bool = False,
) -> str:
    """Dispatch to :func:`format_table` or :func:`format_markdown`."""
    rows = list(rows)
    if markdown:
        head = (f"**{title}**\n\n" if title else "")
        return head + format_markdown(rows, columns, precision)
    return format_table(rows, columns, precision, title)
