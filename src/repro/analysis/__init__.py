"""Analysis & reporting: empirical ratios, phase detection, tables, plots.

This layer turns raw simulation output into the artefacts the paper
presents: the Fig. 1 curve series, theory-vs-measurement tables, and
phase-transition locations.
"""

from repro.analysis.ratio import empirical_ratio, RatioReport, compare_algorithms
from repro.analysis.phase import (
    detect_transitions,
    fig1_series,
    Fig1Series,
)
from repro.analysis.tables import format_table, format_markdown, render_rows
from repro.analysis.plotting import ascii_plot, series_to_csv
from repro.analysis.capacity import (
    machines_for_target,
    slack_for_target,
    planning_table,
    marginal_machine_value,
)
from repro.analysis.sla import ClassStats, service_stats, service_table
from repro.analysis.latency import (
    LatencyStats,
    latency_stats,
    compare_latency,
    slack_headroom,
)
from repro.analysis.covered import (
    covered_intervals,
    interval_diagnostics,
    performance_ratio_bound,
    uncovered_fraction,
)
from repro.analysis.profile import (
    AcceptanceProfile,
    acceptance_profile,
    compare_profiles,
)
from repro.analysis.timeline import (
    UtilizationSeries,
    utilization,
    render_heat_strip,
    render_heatmap,
)
from repro.analysis.stats import (
    BootstrapCI,
    PowerLawFit,
    bootstrap_mean,
    fit_power_law,
    growth_exponent_per_phase,
)

__all__ = [
    "empirical_ratio",
    "RatioReport",
    "compare_algorithms",
    "detect_transitions",
    "fig1_series",
    "Fig1Series",
    "format_table",
    "format_markdown",
    "render_rows",
    "ascii_plot",
    "series_to_csv",
    "BootstrapCI",
    "PowerLawFit",
    "bootstrap_mean",
    "fit_power_law",
    "growth_exponent_per_phase",
    "UtilizationSeries",
    "utilization",
    "render_heat_strip",
    "render_heatmap",
    "AcceptanceProfile",
    "acceptance_profile",
    "compare_profiles",
    "covered_intervals",
    "interval_diagnostics",
    "performance_ratio_bound",
    "uncovered_fraction",
    "machines_for_target",
    "slack_for_target",
    "planning_table",
    "marginal_machine_value",
    "LatencyStats",
    "latency_stats",
    "compare_latency",
    "slack_headroom",
    "ClassStats",
    "service_stats",
    "service_table",
]
