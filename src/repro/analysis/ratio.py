"""Empirical competitive-ratio measurement.

Given an instance and an algorithm, the empirical ratio is the offline
optimum (or its certified bracket) divided by the algorithm's accepted
load.  :func:`empirical_ratio` returns both ends of the bracket so callers
can make certified statements:

* ``ratio_upper`` (OPT upper bound / load) **over**-estimates the truth —
  an algorithm staying below its guarantee on this number certifiably
  satisfies the guarantee on this instance;
* ``ratio_lower`` (heuristic schedule / load) **under**-estimates — an
  algorithm exceeding a bound on this number certifiably violates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.baselines.registry import run_algorithm
from repro.core.guarantees import guarantee_for
from repro.model.instance import Instance
from repro.offline.bracket import OptBracket
from repro.offline.cache import BracketCache, cached_opt_bracket


@dataclass(frozen=True)
class RatioReport:
    """Empirical ratio of one algorithm on one instance."""

    algorithm: str
    instance_name: str
    accepted_load: float
    opt: OptBracket
    guarantee: float | None

    @property
    def ratio_upper(self) -> float:
        """Certified over-estimate of the competitive ratio."""
        return float("inf") if self.accepted_load <= 0 else self.opt.upper / self.accepted_load

    @property
    def ratio_lower(self) -> float:
        """Certified under-estimate of the competitive ratio."""
        return float("inf") if self.accepted_load <= 0 else self.opt.lower / self.accepted_load

    @property
    def within_guarantee(self) -> bool | None:
        """Whether the certified over-estimate respects the guarantee.

        ``None`` when no guarantee is registered for the algorithm.
        """
        if self.guarantee is None:
            return None
        return self.ratio_upper <= self.guarantee + 1e-9

    def as_dict(self) -> dict[str, Any]:
        """Flat dict form for the table layer."""
        return {
            "algorithm": self.algorithm,
            "instance": self.instance_name,
            "load": self.accepted_load,
            "opt_lower": self.opt.lower,
            "opt_upper": self.opt.upper,
            "ratio_lower": self.ratio_lower,
            "ratio_upper": self.ratio_upper,
            "guarantee": self.guarantee,
            "within": self.within_guarantee,
        }


def empirical_ratio(
    algorithm: str,
    instance: Instance,
    bracket: OptBracket | None = None,
    cache: BracketCache | None = None,
    **algorithm_kwargs: Any,
) -> RatioReport:
    """Measure *algorithm* on *instance* against the offline bracket.

    Pass a :class:`~repro.offline.cache.BracketCache` to reuse OPT
    brackets across instances already certified in earlier runs.
    """
    if bracket is None:
        bracket = cached_opt_bracket(instance, cache=cache)
    result = run_algorithm(algorithm, instance, **algorithm_kwargs)
    return RatioReport(
        algorithm=algorithm,
        instance_name=instance.name,
        accepted_load=result.accepted_load,
        opt=bracket,
        guarantee=guarantee_for(algorithm, instance.epsilon, instance.machines),
    )


def compare_algorithms(
    algorithms: Sequence[str],
    instance: Instance,
    cache: BracketCache | None = None,
    **kwargs_by_algorithm: dict,
) -> list[RatioReport]:
    """Measure several algorithms against one shared offline bracket."""
    bracket = cached_opt_bracket(instance, cache=cache)
    return [
        empirical_ratio(
            name, instance, bracket=bracket, **kwargs_by_algorithm.get(name, {})
        )
        for name in algorithms
    ]
