"""One-shot reproduction report.

:func:`generate_report` runs a condensed version of every experiment
(E1–E15) and assembles a single markdown document — the quickest way to
regenerate EXPERIMENTS.md-style evidence after a code change, and the
backing for the CLI's ``report`` command.

The condensed runs use smaller grids than the benchmark suite (seconds,
not minutes) but exercise identical code paths; the full-resolution
artefacts remain the domain of ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.adversary.base import duel
from repro.adversary.weighted import weighted_duel
from repro.analysis.phase import fig1_series, log_grid
from repro.analysis.stats import fit_power_law
from repro.analysis.tables import format_markdown
from repro.baselines.greedy import GreedyPolicy
from repro.baselines.registry import run_algorithm
from repro.core.params import (
    c_bound,
    closed_form_m2,
    corner_closed_form,
    corner_values,
)
from repro.core.randomized import default_virtual_machines, expected_load_classify_select
from repro.core.threshold import ThresholdPolicy
from repro.engine.delayed import DelayedGreedyPolicy, simulate_delayed
from repro.engine.penalties import RevocableGreedyPolicy, simulate_with_penalties
from repro.offline.cache import MEMORY_ONLY, BracketCache
from repro.workloads import alternating_instance, random_instance

#: Report-local bracket cache: memory-only (no durable state — reports
#: must be hermetic), shared across sections so repeated instances are
#: certified once per process.
_BRACKETS = BracketCache(MEMORY_ONLY)


def _section_bounds() -> str:
    grid = log_grid(0.05, 1.0, 40)
    series = fig1_series((1, 2, 3), epsilons=grid)
    eq1_err = max(
        abs(v - closed_form_m2(float(e)))
        for e, v in zip(series[1].epsilons, series[1].values)
    )
    rows = [
        {
            "m": s.m,
            "c(0.1, m)": float(np.interp(0.1, s.epsilons, s.values)),
            "corners": ", ".join(f"{c:.4f}" for c in corner_values(s.m)[1:-1]) or "—",
        }
        for s in series
    ]
    return (
        "## Bound function (E1/E2/E14)\n\n"
        + format_markdown(rows)
        + f"\n\nEq. (1) max |numeric − closed| on the grid: `{eq1_err:.2e}`.\n"
        + "Corner closed form (derived): "
        + ", ".join(
            f"ε_{{{k},3}} = {corner_closed_form(k, 3):.6f}" for k in (1, 2)
        )
        + "\n"
    )


def _section_duels() -> str:
    rows = []
    for m, eps in [(2, 0.1), (3, 0.2)]:
        for factory in (ThresholdPolicy, GreedyPolicy):
            policy = factory()
            result = duel(policy, m=m, epsilon=eps)
            rows.append(
                {
                    "m": m,
                    "eps": eps,
                    "algorithm": policy.name,
                    "forced": result.forced_ratio,
                    "c(eps,m)": c_bound(eps, m),
                }
            )
    return "## Adversary duels (E4)\n\n" + format_markdown(rows) + "\n"


def _section_workloads() -> str:
    inst = random_instance(60, 3, 0.2, seed=1)
    bracket = _BRACKETS.bracket(inst, force_bounds=True)
    rows = []
    for name in ("threshold", "greedy", "dasgupta-palis", "migration-greedy"):
        result = run_algorithm(name, inst)
        rows.append(
            {
                "algorithm": name,
                "load": result.accepted_load,
                "ratio_upper": bracket.upper / result.accepted_load,
            }
        )
    return "## Random workload comparison (E9)\n\n" + format_markdown(rows) + "\n"


def _section_commitment_models() -> str:
    eps = 0.1
    inst = alternating_instance(3, machines=3, epsilon=eps)
    rows = [
        {
            "model": "immediate greedy",
            "value": run_algorithm("greedy", inst).accepted_load,
        },
        {
            "model": "immediate threshold (the paper)",
            "value": run_algorithm("threshold", inst).accepted_load,
        },
        {
            "model": "delayed greedy (delta=eps)",
            "value": simulate_delayed(DelayedGreedyPolicy(), inst, eps).accepted_load,
        },
        {
            "model": "commitment on admission (lazy)",
            "value": run_algorithm("admission-lazy", inst).accepted_load,
        },
        {
            "model": "revocable greedy (phi=0.5, net)",
            "value": simulate_with_penalties(
                RevocableGreedyPolicy(), inst, 0.5
            ).net_value,
        },
    ]
    return (
        "## Commitment-model taxonomy on bait-and-whale (E12/E13)\n\n"
        + format_markdown(rows)
        + "\n"
    )


def _section_randomized() -> str:
    rows = []
    for eps in (0.1, 0.02):
        inst = alternating_instance(pairs=4, machines=1, epsilon=eps)
        bracket = _BRACKETS.bracket(inst, force_bounds=True)
        expected, _ = expected_load_classify_select(
            inst, default_virtual_machines(eps)
        )
        det = run_algorithm("goldwasser-kerbikov", inst)
        rows.append(
            {
                "eps": eps,
                "E[ratio] randomized": bracket.upper / expected,
                "ratio deterministic": bracket.upper / det.accepted_load,
                "ln(1/eps)": math.log(1 / eps),
            }
        )
    return "## Randomized single machine (E8)\n\n" + format_markdown(rows) + "\n"


def _section_impossibility() -> str:
    rows = [
        {
            "R": R,
            "forced (greedy, m=2)": weighted_duel(
                GreedyPolicy(), m=2, epsilon=0.5, escalation=R
            ).forced_ratio,
        }
        for R in (10.0, 100.0)
    ]
    return "## Weighted impossibility (E15)\n\n" + format_markdown(rows) + "\n"


def _section_planning() -> str:
    from repro.analysis.capacity import machines_for_target, planning_table

    rows = planning_table(epsilons=(0.05, 0.1, 0.2), machine_counts=(1, 2, 4, 8))
    needs = [
        {
            "target": 5.0,
            "eps": eps,
            "machines needed": machines_for_target(eps, 5.0) or "—",
        }
        for eps in (0.05, 0.1, 0.2)
    ]
    return (
        "## Capacity planning (the provider's view)\n\n"
        + format_markdown(rows)
        + "\n\nFleet needed for a worst-case guarantee of 5.0:\n\n"
        + format_markdown(needs)
        + "\n"
    )


def _section_engine() -> str:
    """Kernel observability: per-model decision throughput on one stream."""
    from repro.engine.admission import AdmissionLazyPolicy, simulate_admission
    from repro.engine.preemptive import simulate_preemptive
    from repro.baselines.dasgupta_palis import DasGuptaPalisPolicy

    inst = random_instance(400, 3, 0.2, seed=3)
    outcomes = [
        run_algorithm("threshold", inst).detail,
        run_algorithm("greedy", inst).detail,
        simulate_delayed(DelayedGreedyPolicy(), inst, 0.1),
        simulate_admission(AdmissionLazyPolicy(), inst),
        simulate_with_penalties(RevocableGreedyPolicy(), inst, 0.5),
        simulate_preemptive(DasGuptaPalisPolicy(), inst),
    ]
    rows = []
    for outcome in outcomes:
        stats = outcome.meta["stats"]
        rows.append(
            {
                "model": stats.model,
                "algorithm": stats.algorithm,
                "decisions": stats.decisions,
                "accepted": stats.accepted,
                "kdec/s": stats.decisions_per_second / 1e3,
            }
        )
    return (
        "## Simulation kernel (per-model throughput, n=400)\n\n"
        + format_markdown(rows)
        + "\nEvery model runs on the shared kernel; identical stats are attached\n"
        + "to every run (`Schedule.meta['stats']`), sweep cell and duel.  Sweep\n"
        + "cells execute through the fault-tolerant runner (see the resilience\n"
        + "section) in both the parallel and the checkpointed paths.\n"
    )


def _section_resilience() -> str:
    """Fault-tolerant sweep layer: chaos-injected recovery demonstration."""
    from functools import partial

    from repro.testing.chaos import ChaosPlan
    from repro.workloads.execute import ExecutionPolicy, execute_sweep
    from repro.workloads.sweep import SweepSpec

    spec = SweepSpec(
        epsilons=[0.2],
        machine_counts=[2],
        algorithms=["threshold", "greedy"],
        workload=partial(random_instance, 12),
        repetitions=4,
        base_seed=7,
        label="report-resilience",
    )
    plan = ChaosPlan(
        crash_rate=0.25, error_rate=0.25, corrupt_rate=0.2,
        persistent_rate=0.4, seed=11,
    )
    result = execute_sweep(
        spec, ExecutionPolicy(chaos=plan, retries=2, backoff=0.01, workers=2)
    )
    manifest = result.manifest
    faulted = plan.faulted_cells(spec.cell_seed(*c) for c in spec.cells())
    rows = [
        {
            "cells": manifest.cells_total,
            "faulted (injected)": len(faulted),
            "recovered via retry": manifest.recovered,
            "quarantined": manifest.quarantined,
            "rows returned": len(result.rows),
        }
    ]
    return (
        "## Fault-tolerant sweeps (chaos-injected)\n\n"
        + format_markdown(rows)
        + "\nDeterministically injected crashes/errors/corruption; the resilient\n"
        + "runner retries transient faults in fresh workers, quarantines poison\n"
        + "cells into a structured manifest, and keeps every completed row.\n"
    )


def _section_performance() -> str:
    """Bracket-cache effectiveness: cold vs warm sweep over one grid."""
    import tempfile
    import time
    from functools import partial

    from repro.workloads.execute import ExecutionPolicy, execute_sweep
    from repro.workloads.sweep import SweepSpec

    spec = SweepSpec(
        epsilons=[0.1, 0.3],
        machine_counts=[2],
        algorithms=["threshold", "greedy"],
        workload=partial(random_instance, 16),
        repetitions=3,
        base_seed=13,
        force_bounds=True,
        label="report-performance",
    )
    rows = []
    with tempfile.TemporaryDirectory() as cache_dir:
        for label in ("cold", "warm"):
            cache = BracketCache(cache_dir)  # fresh LRU; shared disk tier
            t0 = time.perf_counter()
            execute_sweep(spec, ExecutionPolicy(cache=cache))
            seconds = time.perf_counter() - t0
            stats = cache.stats
            rows.append(
                {
                    "pass": label,
                    "seconds": seconds,
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "writes": stats.writes,
                    "evictions": stats.evictions,
                    "hit rate": f"{100 * stats.hit_rate:.0f}%",
                }
            )
    return (
        "## Bracket cache (content-addressed OPT reuse)\n\n"
        + format_markdown(rows)
        + "\nThe offline bracket is pure in (instance, exact_limit,\n"
        + "force_bounds); the second pass replays every OPT reference from\n"
        + "the content-addressed disk cache — zero brackets recomputed.\n"
        + "`repro sweep --cache` (the default) gives long grids the same\n"
        + "reuse across runs, resumes and algorithm variants.\n"
    )


def _section_sharding() -> str:
    """Sharded execution: split a grid across journals, merge, verify."""
    import tempfile
    from functools import partial
    from pathlib import Path

    from repro.workloads.execute import ExecutionPolicy, execute_sweep
    from repro.workloads.sharding import ShardPlan, merge_journals
    from repro.workloads.sweep import SweepSpec

    n_shards = 3
    spec = SweepSpec(
        epsilons=[0.1, 0.3],
        machine_counts=[1, 2, 3],
        algorithms=["threshold", "greedy"],
        workload=partial(random_instance, 10),
        repetitions=2,
        base_seed=5,
        label="report-sharding",
    )
    single = execute_sweep(spec)
    plan = ShardPlan.build(spec, n_shards)
    with tempfile.TemporaryDirectory() as tmp:
        paths = [Path(tmp) / f"shard{i}.jsonl" for i in range(n_shards)]
        shard_cells = []
        for i, path in enumerate(paths):
            result = execute_sweep(
                spec,
                ExecutionPolicy(
                    shards=n_shards,
                    shard_index=i,
                    journal=path,
                    elastic=True,
                    workers=2,
                ),
            )
            shard_cells.append(result.manifest.cells_completed)
        merged = merge_journals(paths)
    rows = [
        {
            "shard": f"{info.shard_index}/{info.n_shards}",
            "cells": info.cells,
            "cost share": plan.costs()[info.shard_index] / sum(plan.costs()),
            "wall (s)": info.wall_seconds,
            "scheduler": f"{info.scheduler or 'static'} x{info.workers or 1}",
            "worker wall (s)": " / ".join(
                f"{w:.2f}" for w in (info.worker_wall_seconds or [])
            )
            or "n/a",
        }
        for info in merged.shards
    ]
    identical = merged.rows == single.rows
    ratio = merged.straggler_ratio
    worker_ratio = merged.worker_straggler_ratio
    return (
        "## Sharded execution (deterministic partition + journal merge)\n\n"
        + format_markdown(rows)
        + f"\n\nCoverage: {merged.manifest.cells_completed}/"
        + f"{merged.manifest.cells_total} cells, {len(merged.missing)} missing, "
        + f"{merged.duplicates} duplicate; straggler ratio "
        + (f"{ratio:.2f}" if ratio is not None else "n/a")
        + " (max/mean shard wall-clock), worker straggler ratio "
        + (f"{worker_ratio:.2f}" if worker_ratio is not None else "n/a")
        + " (max/mean per-worker wall-clock).\n"
        + "Merged rows bit-identical to the single-host run: "
        + f"**{'yes' if identical else 'NO — INVESTIGATE'}**.  The shard plan\n"
        + "is a pure function of the spec fingerprint, so independent hosts\n"
        + "partition identically with no coordination (here each shard runs the\n"
        + "elastic pull scheduler over its own cells); `repro merge` validates\n"
        + "fingerprints and shard stamps before combining journals.\n"
    )


def _section_transport() -> str:
    """Verified transport: flaky collection, salvage, refill, identity."""
    import tempfile
    from functools import partial
    from pathlib import Path

    from repro.testing import ChaosTransport, bitflip
    from repro.workloads.execute import ExecutionPolicy, execute_sweep
    from repro.workloads.sharding import merge_journals
    from repro.workloads.sweep import SweepSpec
    from repro.workloads.transport import LocalDirTransport, collect_journals

    spec = SweepSpec(
        epsilons=[0.3],
        machine_counts=[1, 2],
        algorithms=["greedy"],
        workload=partial(random_instance, 8),
        repetitions=1,
        base_seed=11,
        label="report-transport",
    )
    single = execute_sweep(spec)
    with tempfile.TemporaryDirectory() as tmp:
        shards = [Path(tmp) / f"shard{i}.jsonl" for i in range(2)]
        for i, path in enumerate(shards):
            execute_sweep(
                spec, ExecutionPolicy(shards=2, shard_index=i, journal=path)
            )
        # Damage shard 1 at the source: flip one bit inside a row payload.
        lines = shards[1].read_bytes().split(b"\n")
        offset = len(lines[0]) + 1
        bitflip(
            shards[1],
            seed=0,
            lo=offset + lines[1].find(b'"rows"'),
            hi=offset + len(lines[1]) - 20,
        )
        # Pull both through a transport that drops the first transfer
        # mid-stream; the damaged shard survives every re-pull corrupt,
        # so its intact rows are salvaged and the original quarantined.
        inbox = Path(tmp) / "inbox"
        collected = collect_journals(
            [str(p) for p in shards],
            inbox,
            transport=ChaosTransport(LocalDirTransport(), faults=["drop"]),
            sleep=lambda _: None,
        )
        rows = [
            {
                "journal": Path(rec.source).name,
                "status": rec.status,
                "attempts": rec.attempts,
                "bytes": rec.bytes,
                "corrupt records": (
                    len(rec.corruption.events) if rec.corruption else 0
                ),
            }
            for rec in collected.records
        ]
        merged_path = Path(tmp) / "merged.jsonl"
        merge_journals(
            [rec.dest for rec in collected.records], out=merged_path, spec=spec
        )
        refilled = execute_sweep(
            spec, ExecutionPolicy(journal=merged_path, resume=True)
        )
    identical = refilled.rows == single.rows
    return (
        "## Verified journal transport (collect, salvage, refill)\n\n"
        + format_markdown(rows)
        + "\n\nEvery journal row carries a content checksum and every sealed\n"
        + "journal a SHA-256 seal, so a bit flip or dropped transfer is\n"
        + "detected at collection time: intact rows are salvaged, the damaged\n"
        + "original is quarantined with a structured corruption report, and\n"
        + "the missing cells become coverage holes that `repro sweep --resume`\n"
        + "refills deterministically.  Rows after salvage + refill bit-identical\n"
        + "to the undamaged single-host run: "
        + f"**{'yes' if identical else 'NO — INVESTIGATE'}**.\n"
    )


def _section_elastic() -> str:
    """Elastic pull scheduler: leases, heartbeats, speculation, recovery."""
    import json
    import tempfile
    from functools import partial
    from pathlib import Path

    from repro.testing import WorkerChaosPlan
    from repro.workloads.execute import ExecutionPolicy, execute_sweep
    from repro.workloads.sweep import SweepSpec

    spec = SweepSpec(
        epsilons=[0.1, 0.3],
        machine_counts=[1, 2],
        algorithms=["threshold", "greedy"],
        workload=partial(random_instance, 10),
        repetitions=3,
        base_seed=7,
        label="report-elastic",
    )
    single = execute_sweep(spec)
    plan = WorkerChaosPlan(slow_worker=((0, 0.3),), dead_worker=((1, 2),))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "elastic.jsonl"
        result = execute_sweep(
            spec,
            ExecutionPolicy(
                elastic=True,
                workers=3,
                heartbeat_interval=0.05,
                journal=path,
                worker_chaos=plan,
            ),
        )
        stats = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line).get("kind") == "stats"
        ][-1]
    walls = stats["worker_wall_seconds"]
    rows = [
        {
            "worker": slot,
            "cells": stats["worker_cells"][slot],
            "wall (s)": walls[slot],
            "injected fault": {0: "10x slow", 1: "dies mid-sweep"}.get(
                slot, "healthy"
            ),
        }
        for slot in range(stats["workers"])
    ]
    manifest = result.manifest
    identical = result.rows == single.rows
    ratio = max(walls) / (sum(walls) / len(walls)) if walls and sum(walls) else None
    return (
        "## Elastic execution (leases, heartbeats, speculation)\n\n"
        + format_markdown(rows)
        + f"\n\nLeases granted: {stats['leases']} ({stats['speculated']} "
        + f"speculative), heartbeats: {stats['heartbeats']}; "
        + f"{manifest.recovered} cell(s) recovered, {manifest.quarantined} "
        + f"quarantined, {manifest.workers_quarantined} worker(s) quarantined; "
        + "worker straggler ratio "
        + (f"{ratio:.2f}" if ratio is not None else "n/a")
        + " (max/mean per-worker wall-clock).\n"
        + "Workers *pull* cells as revocable leases: heartbeats keep a slow\n"
        + "worker's lease alive while a dead one's cell is re-dispatched, and\n"
        + "the end-game speculatively re-executes stragglers (first verified\n"
        + "result wins, duplicates asserted bit-identical).  Rows bit-identical\n"
        + "to the serial run under worker chaos: "
        + f"**{'yes' if identical else 'NO — INVESTIGATE'}**.\n"
    )


def _section_growth() -> str:
    rows = []
    for m in (2, 3):
        eps = np.geomspace(1e-7, 1e-5, 10)
        from repro.core.params import BoundFunction

        fit = fit_power_law(eps, BoundFunction(m).series(eps))
        rows.append({"m": m, "slope": fit.slope, "predicted": -1.0 / m})
    return "## Dominant-phase growth rate (E14)\n\n" + format_markdown(rows) + "\n"


#: Section name -> builder; public so callers can subset.
SECTIONS: dict[str, Callable[[], str]] = {
    "bounds": _section_bounds,
    "duels": _section_duels,
    "workloads": _section_workloads,
    "commitment-models": _section_commitment_models,
    "randomized": _section_randomized,
    "impossibility": _section_impossibility,
    "growth": _section_growth,
    "planning": _section_planning,
    "engine": _section_engine,
    "resilience": _section_resilience,
    "performance": _section_performance,
    "sharding": _section_sharding,
    "transport": _section_transport,
    "elastic": _section_elastic,
}


def generate_report(sections: list[str] | None = None) -> str:
    """Build the condensed reproduction report as markdown text."""
    chosen = sections if sections is not None else list(SECTIONS)
    unknown = [s for s in chosen if s not in SECTIONS]
    if unknown:
        raise ValueError(f"unknown report sections: {unknown}; known: {list(SECTIONS)}")
    parts = [
        "# Reproduction report — Commitment and Slack for Online Load Maximization",
        "",
        "Condensed re-run of the experiment suite (see EXPERIMENTS.md for the",
        "full-resolution benchmark artefacts).",
        "",
    ]
    for name in chosen:
        parts.append(SECTIONS[name]())
    return "\n".join(parts)
