"""Statistical helpers: bootstrap intervals and power-law slope fits.

Used by the growth-rate benchmark (E14) to verify the paper's
:math:`c(\\varepsilon, m) = O(\\varepsilon^{-1/k})` phase structure from
*measured* forced ratios, and by sweep aggregation to attach confidence
intervals to mean ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import rng_from_any


@dataclass(frozen=True)
class BootstrapCI:
    """A bootstrap confidence interval for the mean."""

    mean: float
    lower: float
    upper: float
    confidence: float

    def contains(self, value: float) -> bool:
        """Whether *value* lies in the interval."""
        return self.lower <= value <= self.upper

    @property
    def halfwidth(self) -> float:
        """Half of the interval width."""
        return 0.5 * (self.upper - self.lower)


def bootstrap_mean(
    samples,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int | np.random.Generator | None = 0,
) -> BootstrapCI:
    """Percentile-bootstrap confidence interval for the mean of *samples*."""
    x = np.asarray(list(samples), dtype=float)
    if len(x) == 0:
        raise ValueError("bootstrap needs at least one sample")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    rng = rng_from_any(seed)
    idx = rng.integers(0, len(x), size=(n_resamples, len(x)))
    means = x[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return BootstrapCI(
        mean=float(x.mean()), lower=float(lo), upper=float(hi), confidence=confidence
    )


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y = a * x^slope`` in log-log space."""

    slope: float
    intercept: float  # log(a)
    r_squared: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the fitted power law."""
        return np.exp(self.intercept) * np.asarray(x, dtype=float) ** self.slope


def fit_power_law(x, y) -> PowerLawFit:
    """Fit ``y ~ a * x^slope`` by linear regression on ``(log x, log y)``.

    Both inputs must be positive.  ``r_squared`` is the coefficient of
    determination in log space.
    """
    x = np.asarray(list(x), dtype=float)
    y = np.asarray(list(y), dtype=float)
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("need at least two matching (x, y) samples")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit requires positive data")
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    residuals = ly - (slope * lx + intercept)
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(slope=float(slope), intercept=float(intercept), r_squared=r2)


def growth_exponent_per_phase(
    epsilons, values, corners
) -> list[tuple[int, PowerLawFit]]:
    """Fit one power law per phase of a sampled ``c(eps, m)`` curve.

    ``corners`` is the full corner tuple ``(0, eps_1, ..., 1)``; samples
    are bucketed by phase and each bucket with >= 3 points is fitted.
    Returns ``[(k, fit), ...]``.

    Phase ``k`` runs the recursion over ranks ``k..m`` — a chain of depth
    ``m - k + 1`` — so deep inside the phase the paper predicts
    ``c ~ eps^{-1/(m-k+1)}`` (the *dominant first phase* is
    ``O(eps^{-1/m})``).  Near corners the local slope is transitional, and
    in the last phase the additive constant ``1 + 1/m`` flattens it;
    subtract it before fitting when targeting the pure exponent.
    """
    epsilons = np.asarray(list(epsilons), dtype=float)
    values = np.asarray(list(values), dtype=float)
    fits: list[tuple[int, PowerLawFit]] = []
    for k in range(1, len(corners)):
        lo, hi = corners[k - 1], corners[k]
        mask = (epsilons > lo) & (epsilons <= hi)
        if mask.sum() >= 3:
            fits.append((k, fit_power_law(epsilons[mask], values[mask])))
    return fits
