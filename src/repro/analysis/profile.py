"""Acceptance profiles: *which* jobs an admission policy lets in.

Two algorithms with similar total accepted load can have very different
acceptance behaviour — greedy fills on whatever comes first, Threshold
filters by deadline-vs-load.  The profile buckets submitted jobs by size
(or laxity) quantiles and reports per-bucket acceptance rates, making the
difference visible in one table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.schedule import Schedule


@dataclass(frozen=True)
class AcceptanceProfile:
    """Per-bucket acceptance statistics of one schedule."""

    dimension: str
    bucket_edges: np.ndarray  # length B+1
    offered_count: np.ndarray  # length B
    accepted_count: np.ndarray
    offered_load: np.ndarray
    accepted_load: np.ndarray

    @property
    def count_rates(self) -> np.ndarray:
        """Accepted/offered job counts per bucket (NaN for empty buckets)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                self.offered_count > 0,
                self.accepted_count / self.offered_count,
                np.nan,
            )

    @property
    def load_rates(self) -> np.ndarray:
        """Accepted/offered load per bucket (NaN for empty buckets)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                self.offered_load > 0,
                self.accepted_load / self.offered_load,
                np.nan,
            )

    def rows(self) -> list[dict]:
        """Table rows for the reporting layer."""
        out = []
        for b in range(len(self.offered_count)):
            out.append(
                {
                    f"{self.dimension}_lo": float(self.bucket_edges[b]),
                    f"{self.dimension}_hi": float(self.bucket_edges[b + 1]),
                    "offered": int(self.offered_count[b]),
                    "accepted": int(self.accepted_count[b]),
                    "count_rate": float(self.count_rates[b]),
                    "load_rate": float(self.load_rates[b]),
                }
            )
        return out


def acceptance_profile(
    schedule: Schedule, dimension: str = "processing", buckets: int = 5
) -> AcceptanceProfile:
    """Bucketed acceptance statistics of *schedule*.

    ``dimension`` selects the bucketing axis: ``processing`` (job size),
    ``laxity`` (`d − r − p`), or ``slack`` (individual `(d−r)/p − 1`).
    Bucket edges are the empirical quantiles of the *offered* jobs.
    """
    extractors = {
        "processing": lambda j: j.processing,
        "laxity": lambda j: j.laxity,
        "slack": lambda j: j.slack(),
    }
    if dimension not in extractors:
        raise ValueError(f"unknown dimension {dimension!r}; choose from {list(extractors)}")
    if buckets < 1:
        raise ValueError(f"buckets must be >= 1, got {buckets}")
    jobs = list(schedule.instance)
    if not jobs:
        edges = np.linspace(0.0, 1.0, buckets + 1)
        zero = np.zeros(buckets)
        return AcceptanceProfile(dimension, edges, zero, zero.copy(), zero.copy(), zero.copy())
    values = np.array([extractors[dimension](j) for j in jobs])
    edges = np.quantile(values, np.linspace(0.0, 1.0, buckets + 1))
    # Guard against degenerate (constant) dimensions.
    edges[-1] += 1e-12
    for i in range(1, len(edges)):
        edges[i] = max(edges[i], edges[i - 1] + 1e-15)

    offered_count = np.zeros(buckets)
    accepted_count = np.zeros(buckets)
    offered_load = np.zeros(buckets)
    accepted_load = np.zeros(buckets)
    idx = np.clip(np.searchsorted(edges, values, side="right") - 1, 0, buckets - 1)
    for job, b in zip(jobs, idx):
        offered_count[b] += 1
        offered_load[b] += job.processing
        if schedule.is_accepted(job.job_id):
            accepted_count[b] += 1
            accepted_load[b] += job.processing
    return AcceptanceProfile(
        dimension=dimension,
        bucket_edges=edges,
        offered_count=offered_count,
        accepted_count=accepted_count,
        offered_load=offered_load,
        accepted_load=accepted_load,
    )


def compare_profiles(
    schedules: dict[str, Schedule], dimension: str = "processing", buckets: int = 5
) -> list[dict]:
    """Side-by-side per-bucket load acceptance rates for several schedules.

    All schedules must be over the same instance; returns one row per
    bucket with one column per algorithm.
    """
    names = list(schedules)
    if not names:
        return []
    base = schedules[names[0]].instance
    for name in names[1:]:
        if schedules[name].instance is not base and len(schedules[name].instance) != len(base):
            raise ValueError("profiles must share one instance")
    profiles = {
        name: acceptance_profile(s, dimension=dimension, buckets=buckets)
        for name, s in schedules.items()
    }
    first = profiles[names[0]]
    rows = []
    for b in range(buckets):
        row = {
            f"{dimension}_lo": float(first.bucket_edges[b]),
            f"{dimension}_hi": float(first.bucket_edges[b + 1]),
            "offered": int(first.offered_count[b]),
        }
        for name in names:
            row[name] = float(profiles[name].load_rates[b])
        rows.append(row)
    return rows
