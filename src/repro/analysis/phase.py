"""Phase structure of the bound function (the Fig. 1 artifacts).

:func:`fig1_series` evaluates :math:`c(\\varepsilon, m)` on a grid for a
set of machine counts together with the phase-transition circles, i.e.
everything needed to redraw Fig. 1 of the paper.  :func:`detect_transitions`
locates the transitions *empirically* from a sampled curve (by the jump in
the third derivative at the corner values, where the closed form changes)
and is cross-checked against the analytic corners in the test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import BoundFunction


@dataclass(frozen=True)
class Fig1Series:
    """One curve of Fig. 1: machine count, grid, values, and corners."""

    m: int
    epsilons: np.ndarray
    values: np.ndarray
    transitions: tuple[tuple[float, float], ...]  # (eps_{k,m}, c at corner)

    def as_dict(self) -> dict:
        """JSON-friendly form."""
        return {
            "m": self.m,
            "epsilons": self.epsilons.tolist(),
            "values": self.values.tolist(),
            "transitions": [list(t) for t in self.transitions],
        }


def log_grid(lo: float = 0.01, hi: float = 1.0, n: int = 200) -> np.ndarray:
    """Logarithmic slack grid matching Fig. 1's visual range."""
    return np.geomspace(lo, hi, n)


def fig1_series(
    machine_counts: tuple[int, ...] = (1, 2, 3, 4),
    epsilons: np.ndarray | None = None,
) -> list[Fig1Series]:
    """Evaluate the Fig. 1 curves for *machine_counts* on *epsilons*."""
    if epsilons is None:
        epsilons = log_grid()
    series = []
    for m in machine_counts:
        bf = BoundFunction(m)
        values = bf.series(epsilons)
        series.append(
            Fig1Series(
                m=m,
                epsilons=np.asarray(epsilons, dtype=float),
                values=values,
                transitions=tuple(bf.transition_points()),
            )
        )
    return series


def detect_transitions(
    epsilons: np.ndarray, values: np.ndarray, threshold: float = 100.0
) -> list[float]:
    """Locate phase transitions from a sampled ``c(eps, m)`` curve.

    The curve is continuous with a kink in higher derivatives at each
    corner; working in ``log(eps)`` (where each phase is smooth and slowly
    varying), the discrete third difference spikes at corners by 3-4
    orders of magnitude — hence the large default threshold (root-solver
    noise sits around 4x the median).  Returns the estimated corner slack
    values, ascending.
    """
    eps = np.asarray(epsilons, dtype=float)
    val = np.asarray(values, dtype=float)
    if len(eps) < 8:
        raise ValueError("need at least 8 samples to detect transitions")
    x = np.log(eps)
    # Third central difference of the curve wrt log-eps.
    d3 = np.abs(np.diff(val, n=3))
    scale = np.median(d3) + 1e-15
    spikes = np.flatnonzero(d3 > threshold * scale)
    if len(spikes) == 0:
        return []
    # Merge adjacent spike indices into one corner estimate each.
    corners: list[float] = []
    group = [spikes[0]]
    for idx in spikes[1:]:
        if idx - group[-1] <= 2:
            group.append(idx)
        else:
            centre = group[len(group) // 2] + 1
            corners.append(float(np.exp(x[centre])))
            group = [idx]
    centre = group[len(group) // 2] + 1
    corners.append(float(np.exp(x[centre])))
    return corners


def phase_profile(m: int, epsilons: np.ndarray | None = None) -> list[dict]:
    """Tabulate (epsilon, k, c, f_k, f_m) along a grid — reporting helper."""
    if epsilons is None:
        epsilons = log_grid(n=25)
    bf = BoundFunction(m)
    rows = []
    for eps in epsilons:
        p = bf.parameters(float(eps))
        rows.append(
            {
                "epsilon": float(eps),
                "k": p.k,
                "c": p.c,
                "f_k": float(p.f[0]),
                "f_m": float(p.f[-1]),
            }
        )
    return rows
