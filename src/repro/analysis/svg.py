"""Dependency-free SVG line charts (publication-grade Fig. 1 output).

The benchmark environment has no plotting stack, but SVG is just text:
this module renders multi-series line charts with optional log-x axes,
circle markers (the Fig. 1 phase transitions), tick labels and a legend —
enough to drop the reproduced Fig. 1 straight into a paper or README.

The geometry is deliberately simple (fixed margins, linear y), and the
output is deterministic, so golden tests can pin structural properties.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

#: Default series colours (colour-blind-safe Okabe–Ito subset).
PALETTE = ("#0072B2", "#E69F00", "#009E73", "#CC79A7", "#56B4E9", "#D55E00")


@dataclass
class SvgChart:
    """Accumulates series and renders an SVG text document."""

    width: int = 640
    height: int = 420
    margin: int = 56
    logx: bool = False
    title: str = ""
    x_label: str = ""
    y_label: str = ""
    _series: list[dict] = field(default_factory=list)
    _markers: list[tuple[float, float, str]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add_series(
        self,
        name: str,
        x: Sequence[float],
        y: Sequence[float],
        color: str | None = None,
        dashed: bool = False,
    ) -> "SvgChart":
        """Add a polyline series; returns ``self`` for chaining."""
        if len(x) != len(y):
            raise ValueError(f"series {name!r}: x and y lengths differ")
        if len(x) < 2:
            raise ValueError(f"series {name!r}: need at least two points")
        color = color or PALETTE[len(self._series) % len(PALETTE)]
        self._series.append(
            {"name": name, "x": list(map(float, x)), "y": list(map(float, y)),
             "color": color, "dashed": dashed}
        )
        return self

    def add_marker(self, x: float, y: float, color: str = "#000000") -> "SvgChart":
        """Add an emphasised circle marker (Fig. 1's transition circles)."""
        self._markers.append((float(x), float(y), color))
        return self

    # ------------------------------------------------------------------
    def _tx(self, x: float) -> float:
        return math.log10(x) if self.logx else x

    def _bounds(self) -> tuple[float, float, float, float]:
        xs = [self._tx(v) for s in self._series for v in s["x"]]
        ys = [v for s in self._series for v in s["y"] if math.isfinite(v)]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        return x_lo, x_hi, y_lo, y_hi

    def _project(self, x: float, y: float, bounds) -> tuple[float, float]:
        x_lo, x_hi, y_lo, y_hi = bounds
        w = self.width - 2 * self.margin
        h = self.height - 2 * self.margin
        px = self.margin + (self._tx(x) - x_lo) / (x_hi - x_lo) * w
        py = self.height - self.margin - (y - y_lo) / (y_hi - y_lo) * h
        return px, py

    @staticmethod
    def _fmt_tick(value: float) -> str:
        if value == 0:
            return "0"
        if abs(value) >= 100 or abs(value) < 0.01:
            return f"{value:.1e}"
        return f"{value:g}"

    def render(self) -> str:
        """Render the chart as a complete SVG document."""
        if not self._series:
            raise ValueError("cannot render an empty chart")
        bounds = self._bounds()
        x_lo, x_hi, y_lo, y_hi = bounds
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
        ]
        # Axes.
        ax0, ay0 = self.margin, self.height - self.margin
        ax1, ay1 = self.width - self.margin, self.margin
        parts.append(
            f'<line x1="{ax0}" y1="{ay0}" x2="{ax1}" y2="{ay0}" stroke="#333"/>'
        )
        parts.append(
            f'<line x1="{ax0}" y1="{ay0}" x2="{ax0}" y2="{ay1}" stroke="#333"/>'
        )
        # Ticks (5 per axis).
        for i in range(5):
            frac = i / 4
            tx_val = x_lo + frac * (x_hi - x_lo)
            x_data = 10**tx_val if self.logx else tx_val
            px = self.margin + frac * (self.width - 2 * self.margin)
            parts.append(
                f'<line x1="{px:.1f}" y1="{ay0}" x2="{px:.1f}" y2="{ay0 + 5}" stroke="#333"/>'
            )
            parts.append(
                f'<text x="{px:.1f}" y="{ay0 + 18}" font-size="11" '
                f'text-anchor="middle" fill="#333">{self._fmt_tick(x_data)}</text>'
            )
            y_val = y_lo + frac * (y_hi - y_lo)
            py = self.height - self.margin - frac * (self.height - 2 * self.margin)
            parts.append(
                f'<line x1="{ax0 - 5}" y1="{py:.1f}" x2="{ax0}" y2="{py:.1f}" stroke="#333"/>'
            )
            parts.append(
                f'<text x="{ax0 - 8}" y="{py + 4:.1f}" font-size="11" '
                f'text-anchor="end" fill="#333">{self._fmt_tick(y_val)}</text>'
            )
        # Series.
        for s in self._series:
            points = " ".join(
                f"{px:.2f},{py:.2f}"
                for px, py in (
                    self._project(x, y, bounds)
                    for x, y in zip(s["x"], s["y"])
                    if math.isfinite(y)
                )
            )
            dash = ' stroke-dasharray="6,4"' if s["dashed"] else ""
            parts.append(
                f'<polyline points="{points}" fill="none" stroke="{s["color"]}" '
                f'stroke-width="1.8"{dash}/>'
            )
        # Markers.
        for x, y, color in self._markers:
            px, py = self._project(x, y, bounds)
            parts.append(
                f'<circle cx="{px:.2f}" cy="{py:.2f}" r="4.5" fill="none" '
                f'stroke="{color}" stroke-width="1.6"/>'
            )
        # Legend.
        for i, s in enumerate(self._series):
            lx = self.width - self.margin - 150
            ly = self.margin + 8 + 18 * i
            parts.append(
                f'<line x1="{lx}" y1="{ly}" x2="{lx + 26}" y2="{ly}" '
                f'stroke="{s["color"]}" stroke-width="2"/>'
            )
            parts.append(
                f'<text x="{lx + 32}" y="{ly + 4}" font-size="12" fill="#222">'
                f'{s["name"]}</text>'
            )
        # Labels.
        if self.title:
            parts.append(
                f'<text x="{self.width / 2:.0f}" y="22" font-size="14" '
                f'text-anchor="middle" fill="#111">{self.title}</text>'
            )
        if self.x_label:
            parts.append(
                f'<text x="{self.width / 2:.0f}" y="{self.height - 10}" '
                f'font-size="12" text-anchor="middle" fill="#333">{self.x_label}</text>'
            )
        if self.y_label:
            parts.append(
                f'<text x="16" y="{self.height / 2:.0f}" font-size="12" '
                f'text-anchor="middle" fill="#333" '
                f'transform="rotate(-90 16 {self.height / 2:.0f})">{self.y_label}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)


def gantt_svg(
    schedule,
    width: int = 720,
    row_height: int = 34,
    title: str = "",
) -> str:
    """Render an audited schedule as a standalone SVG Gantt chart.

    One row per machine; accepted jobs are colored blocks labelled by job
    id; rejected jobs appear as thin hollow outlines spanning their
    feasibility window ``[r, d)`` below the machine rows (the Fig. 3
    blue/orange distinction).  Returns a complete SVG document.
    """
    margin = 48
    machines = schedule.instance.machines
    horizon = max(schedule.makespan(), schedule.instance.horizon, 1e-9)
    rejected = sorted(schedule.rejected)
    height = margin * 2 + row_height * machines + (18 if rejected else 0) + 24

    def px(t: float) -> float:
        return margin + (t / horizon) * (width - 2 * margin)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="20" font-size="13" '
            f'text-anchor="middle" fill="#111">{title}</text>'
        )
    # Machine rows + accepted jobs.
    for machine in range(machines):
        y = margin + machine * row_height
        parts.append(
            f'<line x1="{margin}" y1="{y + row_height - 6}" '
            f'x2="{width - margin}" y2="{y + row_height - 6}" stroke="#ccc"/>'
        )
        parts.append(
            f'<text x="{margin - 6}" y="{y + row_height / 2:.0f}" font-size="11" '
            f'text-anchor="end" fill="#333">m{machine}</text>'
        )
        for job, iv in schedule.machine_timeline(machine):
            x0, x1 = px(iv.start), px(iv.end)
            color = PALETTE[job.job_id % len(PALETTE)]
            parts.append(
                f'<rect x="{x0:.1f}" y="{y + 4}" width="{max(x1 - x0, 1.5):.1f}" '
                f'height="{row_height - 14}" fill="{color}" fill-opacity="0.75" '
                f'stroke="{color}"/>'
            )
            if x1 - x0 > 16:
                parts.append(
                    f'<text x="{(x0 + x1) / 2:.1f}" y="{y + row_height / 2 + 1:.0f}" '
                    f'font-size="10" text-anchor="middle" fill="#fff">'
                    f"{job.job_id}</text>"
                )
    # Rejected windows strip.
    if rejected:
        y = margin + machines * row_height + 6
        parts.append(
            f'<text x="{margin - 6}" y="{y + 9}" font-size="10" '
            f'text-anchor="end" fill="#a33">rej</text>'
        )
        for jid in rejected:
            job = schedule.instance[jid]
            x0, x1 = px(job.release), px(job.deadline)
            parts.append(
                f'<rect x="{x0:.1f}" y="{y}" width="{max(x1 - x0, 1.0):.1f}" '
                f'height="10" fill="none" stroke="#cc3311" stroke-dasharray="3,2"/>'
            )
    # Time axis.
    ax_y = height - 20
    parts.append(
        f'<line x1="{margin}" y1="{ax_y}" x2="{width - margin}" y2="{ax_y}" stroke="#333"/>'
    )
    for i in range(5):
        t = horizon * i / 4
        parts.append(
            f'<text x="{px(t):.1f}" y="{ax_y + 14}" font-size="10" '
            f'text-anchor="middle" fill="#333">{t:.2g}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def fig1_svg(machine_counts: tuple[int, ...] = (1, 2, 3, 4), clip: float = 25.0) -> str:
    """Render the paper's Fig. 1 as an SVG document."""
    import numpy as np

    from repro.analysis.phase import fig1_series, log_grid

    chart = SvgChart(
        logx=True,
        title="Tight competitive ratios c(ε, m) — Fig. 1 reproduction",
        x_label="slack ε (log scale)",
        y_label="competitive ratio",
    )
    series = fig1_series(machine_counts, epsilons=log_grid(0.02, 1.0, 150))
    for s in series:
        chart.add_series(
            f"m = {s.m}",
            s.epsilons,
            np.minimum(s.values, clip),
            dashed=(s.m == 1),  # the paper draws m = 1 dashed
        )
    for i, s in enumerate(series):
        for eps_corner, c_corner in s.transitions:
            if c_corner <= clip:
                chart.add_marker(eps_corner, c_corner, PALETTE[i % len(PALETTE)])
    return chart.render()
