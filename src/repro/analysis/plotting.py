"""Terminal plotting and series export.

The benchmark environment has no display and no plotting library, so the
Fig. 1 reproduction is emitted two ways:

* :func:`ascii_plot` — a braille-free, pure-ASCII scatter of one or more
  series on a shared canvas (log-x support for slack axes), good enough to
  eyeball the phase structure in CI logs;
* :func:`series_to_csv` — CSV text of the same series for external
  plotting.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

#: Glyph per series, cycled.
_GLYPHS = "oxv*#@+%"


def ascii_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 78,
    height: int = 22,
    logx: bool = False,
    markers: Mapping[str, Sequence[tuple[float, float]]] | None = None,
    title: str | None = None,
) -> str:
    """Scatter-plot named ``(x, y)`` series on one ASCII canvas.

    ``markers`` draws additional emphasised points (the Fig. 1 transition
    circles) with ``O``.
    """
    xs_all = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    finite = np.isfinite(ys_all)
    xs_all, ys_all = xs_all[finite], ys_all[finite]
    if len(xs_all) == 0:
        return "(empty plot)"

    def tx(x: np.ndarray) -> np.ndarray:
        return np.log10(x) if logx else x

    x_lo, x_hi = float(tx(xs_all).min()), float(tx(xs_all).max())
    y_lo, y_hi = float(ys_all.min()), float(ys_all.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, glyph: str) -> None:
        if not (math.isfinite(x) and math.isfinite(y)):
            return
        col = int(round((x - x_lo) / x_span * (width - 1)))
        row = int(round((y_hi - y) / y_span * (height - 1)))
        if 0 <= row < height and 0 <= col < width:
            canvas[row][col] = glyph

    legend = []
    for idx, (name, (x, y)) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        legend.append(f"{glyph} = {name}")
        for xi, yi in zip(np.asarray(x, dtype=float), np.asarray(y, dtype=float)):
            if math.isfinite(yi):
                place(float(tx(np.array([xi]))[0]), float(yi), glyph)
    if markers:
        for pts in markers.values():
            for mx, my in pts:
                place(float(tx(np.array([mx]))[0]), float(my), "O")

    lines = []
    if title:
        lines.append(title)
    lines.extend("|" + "".join(row) for row in canvas)
    lines.append("+" + "-" * width)
    x_label = "log10(x)" if logx else "x"
    lines.append(
        f"  {x_label}: [{x_lo:.3g}, {x_hi:.3g}]   y: [{y_lo:.3g}, {y_hi:.3g}]   "
        + "   ".join(legend)
    )
    return "\n".join(lines)


def series_to_csv(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    x_name: str = "x",
) -> str:
    """Export series sharing one x-grid to CSV text.

    All series must be sampled on the same grid (the Fig. 1 series are);
    raises otherwise.
    """
    names = list(series)
    if not names:
        return x_name + "\n"
    base_x = np.asarray(series[names[0]][0], dtype=float)
    for name in names[1:]:
        x = np.asarray(series[name][0], dtype=float)
        if len(x) != len(base_x) or not np.allclose(x, base_x):
            raise ValueError(f"series {name!r} is not on the shared x-grid")
    header = ",".join([x_name] + names)
    rows = [header]
    for i, x in enumerate(base_x):
        rows.append(
            ",".join(
                [f"{x:.10g}"]
                + [f"{float(series[n][1][i]):.10g}" for n in names]
            )
        )
    return "\n".join(rows) + "\n"
