"""Service-level analytics for tagged workloads.

The cloud generator tags every job with its service class; this module
aggregates schedules into the numbers an SLA report quotes: per-class
offered/accepted load and counts, acceptance rates, and mean waiting time
per class.  Works with any schedule whose instance carries a string tag
(default ``"service"``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.schedule import Schedule


@dataclass(frozen=True)
class ClassStats:
    """Acceptance statistics of one service class."""

    service: str
    offered_jobs: int
    accepted_jobs: int
    offered_load: float
    accepted_load: float
    mean_wait: float

    @property
    def job_acceptance_rate(self) -> float:
        """Accepted / offered jobs (1.0 when nothing was offered)."""
        return 1.0 if self.offered_jobs == 0 else self.accepted_jobs / self.offered_jobs

    @property
    def load_acceptance_rate(self) -> float:
        """Accepted / offered load (1.0 when nothing was offered)."""
        return 1.0 if self.offered_load == 0 else self.accepted_load / self.offered_load

    def as_dict(self) -> dict:
        """Flat dict for the table layer."""
        return {
            "service": self.service,
            "offered_jobs": self.offered_jobs,
            "accepted_jobs": self.accepted_jobs,
            "job_rate": self.job_acceptance_rate,
            "load_rate": self.load_acceptance_rate,
            "mean_wait": self.mean_wait,
        }


def service_stats(schedule: Schedule, tag: str = "service") -> list[ClassStats]:
    """Per-class statistics of *schedule*, sorted by class name."""
    offered_jobs: dict[str, int] = {}
    accepted_jobs: dict[str, int] = {}
    offered_load: dict[str, float] = {}
    accepted_load: dict[str, float] = {}
    waits: dict[str, list[float]] = {}
    for job in schedule.instance:
        service = str(job.tag(tag, "untagged"))
        offered_jobs[service] = offered_jobs.get(service, 0) + 1
        offered_load[service] = offered_load.get(service, 0.0) + job.processing
        assignment = schedule.assignments.get(job.job_id)
        if assignment is not None:
            accepted_jobs[service] = accepted_jobs.get(service, 0) + 1
            accepted_load[service] = accepted_load.get(service, 0.0) + job.processing
            waits.setdefault(service, []).append(assignment.start - job.release)
    out = []
    for service in sorted(offered_jobs):
        w = waits.get(service, [])
        out.append(
            ClassStats(
                service=service,
                offered_jobs=offered_jobs[service],
                accepted_jobs=accepted_jobs.get(service, 0),
                offered_load=offered_load[service],
                accepted_load=accepted_load.get(service, 0.0),
                mean_wait=sum(w) / len(w) if w else 0.0,
            )
        )
    return out


def service_table(schedules: dict[str, Schedule], tag: str = "service") -> list[dict]:
    """Load-acceptance rate per class, one row per class, one column per
    algorithm — the cloud comparison table."""
    names = list(schedules)
    per_alg = {name: service_stats(s, tag) for name, s in schedules.items()}
    classes = sorted({c.service for stats in per_alg.values() for c in stats})
    rows = []
    for service in classes:
        row: dict = {"service": service}
        for name in names:
            match = [c for c in per_alg[name] if c.service == service]
            row[name] = match[0].load_acceptance_rate if match else None
        rows.append(row)
    return rows
