"""Developer tooling (API reference generation)."""
