"""repro — reproduction of *Commitment and Slack for Online Load Maximization*.

Jamalabadi, Schwiegelshohn & Schwiegelshohn, SPAA 2020
(DOI 10.1145/3350755.3400271).

The package implements the paper's Threshold admission algorithm
(Algorithm 1), the tight bound function :math:`c(\\varepsilon, m)` with
its phase structure, the three-phase lower-bound adversary, the randomized
single-machine algorithm, five related-work baselines, offline optimum
solvers, workload generators and the full benchmark harness reproducing
Figs. 1–3 and Eq. (1).

Public API re-exports below; see README.md for a guided tour and DESIGN.md
for the full system inventory.
"""

from repro.core import (
    BoundFunction,
    ThresholdParameters,
    ThresholdPolicy,
    AllocationRule,
    ClassifyAndSelect,
    c_bound,
    corner_values,
    phase_index,
    threshold_parameters,
    theorem2_bound,
)
from repro.engine import (
    AdmissionController,
    SimulationRequest,
    audit_run,
    open_session,
    run_simulations,
    simulate,
    simulate_source,
)
from repro.model import Instance, Job, Schedule
from repro.baselines import ALGORITHMS, make_algorithm, run_algorithm
from repro.adversary import ThreePhaseAdversary, duel
from repro.analysis import compare_algorithms, fig1_series
from repro.offline import opt_bracket
from repro.workloads.execute import ExecutionPolicy, execute_sweep

__version__ = "1.0.0"

__all__ = [
    "BoundFunction",
    "ThresholdParameters",
    "ThresholdPolicy",
    "AllocationRule",
    "ClassifyAndSelect",
    "c_bound",
    "corner_values",
    "phase_index",
    "threshold_parameters",
    "theorem2_bound",
    "simulate",
    "simulate_source",
    "audit_run",
    "AdmissionController",
    "open_session",
    "SimulationRequest",
    "run_simulations",
    "ExecutionPolicy",
    "execute_sweep",
    "Instance",
    "Job",
    "Schedule",
    "ALGORITHMS",
    "make_algorithm",
    "run_algorithm",
    "ThreePhaseAdversary",
    "duel",
    "compare_algorithms",
    "fig1_series",
    "opt_bracket",
    "__version__",
]
