"""Baseline algorithms from the paper's related-work section (Section 1.2).

All baselines are built on the same engine substrate as the core algorithm:

* :mod:`repro.baselines.greedy` — greedy admission with list scheduling
  (Kim–Chwa / Goldwasser style), non-preemptive, immediate commitment.
* :mod:`repro.baselines.goldwasser` — the optimal single-machine algorithm
  of Goldwasser–Kerbikov (the ``m = 1`` specialisation of Threshold).
* :mod:`repro.baselines.lee` — a reconstruction of Lee's classify-by-size
  multi-machine algorithm (commitment on admission).
* :mod:`repro.baselines.dasgupta_palis` — preemption without migration,
  accept-iff-EDF-feasible (immediate notification).
* :mod:`repro.baselines.migration` — preemption + migration model with a
  max-flow feasibility oracle (Schwiegelshohn² machine model).
* :mod:`repro.baselines.registry` — name-based factory plus a uniform
  ``run`` entry point dispatching to the right execution engine.
"""

from repro.baselines.greedy import GreedyPolicy
from repro.baselines.goldwasser import GoldwasserKerbikovPolicy
from repro.baselines.lee import LeeStylePolicy
from repro.baselines.dasgupta_palis import DasGuptaPalisPolicy
from repro.baselines.migration import MigrationGreedyScheduler, migration_feasible
from repro.baselines.reference import (
    OraclePolicy,
    RandomAdmissionPolicy,
    run_oracle,
)
from repro.baselines.registry import (
    ALGORITHMS,
    AlgorithmSpec,
    make_algorithm,
    run_algorithm,
    RunResult,
)

__all__ = [
    "GreedyPolicy",
    "GoldwasserKerbikovPolicy",
    "LeeStylePolicy",
    "DasGuptaPalisPolicy",
    "MigrationGreedyScheduler",
    "migration_feasible",
    "OraclePolicy",
    "RandomAdmissionPolicy",
    "run_oracle",
    "ALGORITHMS",
    "AlgorithmSpec",
    "make_algorithm",
    "run_algorithm",
    "RunResult",
]
