"""DasGupta–Palis: preemption without migration, accept-iff-EDF-feasible.

DasGupta and Palis [10] prove a competitive ratio of
:math:`1 + 1/\\varepsilon` for online load maximization when jobs may be
preempted (but never migrated between machines).  Their admission rule is
feasibility-preserving greedy: admit a job iff some machine can still meet
*all* of its commitments plus the new job when scheduling preemptively.

Because admission happens at release time, every active job on a machine
is already released, so per-machine EDF feasibility is the exact test
(EDF is optimal for single-machine preemptive feasibility) — provided by
:func:`repro.engine.preemptive.edf_feasible`.

Placement among feasible machines uses best-fit (largest outstanding
remainder) to mirror the paper's allocation philosophy; ``least-loaded``
is available for ablations.
"""

from __future__ import annotations

from typing import Literal, Sequence

from repro.engine.preemptive import PreemptiveMachine, PreemptivePolicy
from repro.model.job import Job


class DasGuptaPalisPolicy(PreemptivePolicy):
    """Feasibility-greedy admission in the preemptive no-migration model."""

    name = "dasgupta-palis"

    def __init__(self, placement: Literal["best-fit", "least-loaded"] = "best-fit") -> None:
        if placement not in ("best-fit", "least-loaded"):
            raise ValueError(f"unknown placement rule: {placement!r}")
        self.placement = placement
        if placement != "best-fit":
            self.name = f"dasgupta-palis[{placement}]"

    def on_submission(
        self, job: Job, t: float, machines: Sequence[PreemptiveMachine]
    ) -> int | None:
        feasible = [m for m in machines if m.feasible_with(job)]
        if not feasible:
            return None
        if self.placement == "best-fit":
            chosen = max(feasible, key=lambda m: (m.outstanding(), -m.index))
        else:
            chosen = min(feasible, key=lambda m: (m.outstanding(), m.index))
        return chosen.index
