"""Goldwasser–Kerbikov: optimal deterministic single machine.

Goldwasser and Kerbikov [20] give the optimal
:math:`(2 + 1/\\varepsilon)`-competitive deterministic single-machine
algorithm with immediate commitment.  Section 1.1 of the reproduced paper
notes that its Algorithm 1 *matches* this performance at ``m = 1``; indeed
the ``m = 1`` parameterisation collapses to a single multiplier

.. math:: f_1 = \\frac{1 + \\varepsilon}{\\varepsilon},
          \\qquad d_{lim} = t + l \\cdot f_1,

i.e. "accept iff the deadline exceeds the outstanding load stretched by
:math:`(1+\\varepsilon)/\\varepsilon`".  We therefore implement the
baseline as the single-machine specialisation of
:class:`~repro.core.threshold.ThresholdPolicy` under its historical name —
the identity of the two is itself one of the reproduced claims (test-suite:
``tests/baselines/test_goldwasser.py``).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.threshold import ThresholdPolicy
from repro.engine.policy import Decision
from repro.model.job import Job
from repro.model.machine import MachineState


class GoldwasserKerbikovPolicy(ThresholdPolicy):
    """The ``m = 1`` optimal algorithm, as a named baseline."""

    def __init__(self) -> None:
        super().__init__()
        self.name = "goldwasser-kerbikov"

    def reset(self, machines: int, epsilon: float) -> None:
        if machines != 1:
            raise ValueError(
                f"Goldwasser–Kerbikov is a single-machine algorithm; got m={machines}"
            )
        super().reset(machines, epsilon)

    def on_submission(
        self, job: Job, t: float, machines: Sequence[MachineState]
    ) -> Decision:
        decision = super().on_submission(job, t, machines)
        # Surface the classical form of the rule in diagnostics.
        decision.info.setdefault("rule", "d >= t + l*(1+eps)/eps")
        return decision
