"""Greedy admission with list scheduling.

The natural baseline (Fig. 1's ``m = 1`` dashed line generalised): accept a
job whenever *some* machine can still complete it on time, append it to a
machine, start it as early as possible.  Kim and Chwa [23] show this is
:math:`(2 + 1/\\varepsilon)`-competitive on identical machines — i.e. the
greedy approach does not benefit from additional machines, which is
exactly the gap the paper's Threshold algorithm closes.

The placement rule among fitting machines is configurable because the
comparison benches also use greedy as an ablation anchor:

* ``best-fit`` — most loaded fitting machine (default; mirrors Threshold's
  allocation so measured differences isolate the *admission* rule);
* ``first-fit`` — lowest machine index;
* ``least-loaded`` — least loaded fitting machine.
"""

from __future__ import annotations

from typing import Literal, Sequence

from repro.engine.policy import Decision, OnlinePolicy
from repro.model.job import Job
from repro.model.machine import MachineState

PlacementRule = Literal["best-fit", "first-fit", "least-loaded"]


class GreedyPolicy(OnlinePolicy):
    """Accept-if-feasible admission with configurable placement."""

    def __init__(self, placement: PlacementRule = "best-fit") -> None:
        if placement not in ("best-fit", "first-fit", "least-loaded"):
            raise ValueError(f"unknown placement rule: {placement!r}")
        self.placement: PlacementRule = placement
        self.name = "greedy" if placement == "best-fit" else f"greedy[{placement}]"

    def on_submission(
        self, job: Job, t: float, machines: Sequence[MachineState]
    ) -> Decision:
        candidates = [ms for ms in machines if ms.fits(job, t)]
        if not candidates:
            return Decision.reject(reason="no fitting machine")
        if self.placement == "best-fit":
            chosen = max(candidates, key=lambda ms: (ms.outstanding(t), -ms.index))
        elif self.placement == "least-loaded":
            chosen = min(candidates, key=lambda ms: (ms.outstanding(t), ms.index))
        else:  # first-fit
            chosen = min(candidates, key=lambda ms: ms.index)
        return Decision.accept(machine=chosen.index, start=chosen.append_start(job, t))

    def describe(self) -> dict:
        return {"name": self.name, "placement": self.placement}
