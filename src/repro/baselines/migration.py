"""Preemption + migration baseline (the Schwiegelshohn² machine model).

Schwiegelshohn and Schwiegelshohn [29] study immediate commitment on
parallel machines that allow both preemption *and* migration, obtaining a
ratio approaching :math:`(1+\\varepsilon) \\log((1+\\varepsilon)/\\varepsilon)`
for large :math:`m`.  Their exact algorithm is not reproduced in the paper
text; per DESIGN.md's substitution rule we implement the canonical
feasibility-greedy policy of this machine model:

  *admit a job iff the accepted-but-unfinished work, plus the new job, can
  still be completed by all deadlines on* ``m`` *migrating machines.*

Feasibility is decided exactly with Horn's max-flow construction
(:func:`migration_feasible`): since admission happens at release time,
every active job is already released, so the network has one node per
deadline-bounded interval with capacity :math:`m \\cdot |I|`, and
job→interval arcs of capacity :math:`|I|` (a job cannot self-parallelise).

Execution between submissions realises the *flow schedule* fluidly:
the max-flow solution prescribes per-job work amounts per deadline-bounded
interval; running every job at constant rate ``w_{j,l} / |I_l|`` inside
interval ``I_l`` respects both the unit per-job rate cap and the ``m``
total rate cap, hence is realisable by McNaughton wrap-around, and leaves a
residual state that stays feasible.  (Global EDF — the tempting simpler
executor — is *not* optimal for simultaneously released jobs on multiple
machines: the test-suite pins a 7-job, 3-machine counterexample where EDF
misses a deadline on a flow-feasible set.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.model.instance import Instance
from repro.model.job import Job
from repro.utils.tolerances import TIME_EPS, fge, snap

#: Flow amounts below this are treated as zero when comparing to demand.
_FLOW_TOL = 1e-7


def migration_feasible(
    now: float,
    remainders: list[tuple[float, float]],
    machines: int,
) -> bool:
    """Exact feasibility test for released preemptive-migratory work.

    Parameters
    ----------
    now:
        Current time; all work is available from *now*.
    remainders:
        ``(remaining_work, deadline)`` pairs, all with ``deadline >= now``.
    machines:
        Number of identical machines.

    Returns whether a preemptive schedule with migration completes every
    remainder by its deadline.  Horn-style max-flow: feasible iff the
    maximum flow equals the total remaining work.
    """
    work = [(snap(r), d) for r, d in remainders if r > TIME_EPS]
    if not work:
        return True
    if any(d < now - TIME_EPS for _, d in work):
        return False
    total = sum(r for r, _ in work)
    events = sorted({now} | {d for _, d in work})
    intervals = [
        (lo, hi) for lo, hi in zip(events, events[1:]) if hi - lo > TIME_EPS
    ]
    if not intervals:
        return total <= TIME_EPS

    graph = nx.DiGraph()
    for idx, (lo, hi) in enumerate(intervals):
        graph.add_edge(f"I{idx}", "sink", capacity=machines * (hi - lo))
    for jdx, (remaining, deadline) in enumerate(work):
        graph.add_edge("src", f"J{jdx}", capacity=remaining)
        for idx, (lo, hi) in enumerate(intervals):
            if fge(deadline, hi):
                graph.add_edge(f"J{jdx}", f"I{idx}", capacity=hi - lo)
    value, _ = nx.maximum_flow(graph, "src", "sink")
    return value >= total - _FLOW_TOL


def flow_schedule(
    now: float,
    remainders: list[tuple[float, float]],
    machines: int,
) -> tuple[float, list[tuple[float, float, list[float]]]]:
    """Max-flow work plan for released preemptive-migratory jobs.

    Returns ``(flow_value, plan)`` where ``plan`` is a list of
    ``(interval_start, interval_end, per_job_work)`` entries (job order
    matches *remainders*).  Each per-job amount is at most the interval
    length, and each interval's total is at most ``machines`` times its
    length, so the plan is realisable by McNaughton wrap-around within each
    interval — including any time-prefix of an interval at proportional
    rates.
    """
    work = [(max(r, 0.0), d) for r, d in remainders]
    positive = [i for i, (r, _) in enumerate(work) if r > TIME_EPS]
    if not positive:
        return 0.0, []
    events = sorted({now} | {d for i, (_, d) in enumerate(work) if i in positive})
    intervals = [(lo, hi) for lo, hi in zip(events, events[1:]) if hi - lo > TIME_EPS]
    graph = nx.DiGraph()
    for idx, (lo, hi) in enumerate(intervals):
        graph.add_edge(f"I{idx}", "sink", capacity=machines * (hi - lo))
    for j in positive:
        remaining, deadline = work[j]
        graph.add_edge("src", f"J{j}", capacity=remaining)
        for idx, (lo, hi) in enumerate(intervals):
            if fge(deadline, hi):
                graph.add_edge(f"J{j}", f"I{idx}", capacity=hi - lo)
    value, flow = nx.maximum_flow(graph, "src", "sink")
    plan = []
    for idx, (lo, hi) in enumerate(intervals):
        per_job = [0.0] * len(work)
        for j in positive:
            per_job[j] = flow.get(f"J{j}", {}).get(f"I{idx}", 0.0)
        plan.append((lo, hi, per_job))
    return float(value), plan


@dataclass
class _ActiveItem:
    job: Job
    remaining: float


@dataclass
class MigrationOutcome:
    """Result of a migration-model run (mirrors ``PreemptiveOutcome``)."""

    instance: Instance
    algorithm: str
    accepted_ids: set[int] = field(default_factory=set)
    completions: dict[int, float] = field(default_factory=dict)

    @property
    def accepted_load(self) -> float:
        """Objective value over accepted jobs."""
        return float(sum(self.instance[j].processing for j in self.accepted_ids))

    def audit(self) -> None:
        """Every accepted job must have completed by its deadline."""
        for jid in self.accepted_ids:
            job = self.instance[jid]
            done = self.completions.get(jid)
            if done is None:
                raise AssertionError(f"accepted job {jid} never completed")
            if not fge(job.deadline, done):
                raise AssertionError(
                    f"job {jid} completed at {done} after deadline {job.deadline}"
                )


class MigrationGreedyScheduler:
    """Online feasibility-greedy scheduler in the migration model.

    Not an :class:`~repro.engine.policy.OnlinePolicy` — the machine model
    differs (no per-machine commitments) — but exposes the same
    ``run(instance) -> outcome`` surface as
    :func:`repro.engine.preemptive.simulate_preemptive` via
    :meth:`run`.
    """

    name = "migration-greedy"
    immediate_commitment = True  # accept/reject is final; allocation is fluid

    def __init__(self) -> None:
        self._active: list[_ActiveItem] = []
        self._now = 0.0
        self._machines = 0
        self._completions: dict[int, float] = {}

    # ------------------------------------------------------------------
    def _advance(self, t: float) -> None:
        """Execute the fluid flow schedule from the local clock up to *t*.

        Recomputes the max-flow plan from the current remainders (the
        state is feasible by the admission invariant, so the flow saturates
        all remaining work) and executes each plan interval — possibly a
        proportional prefix of the last one — at constant per-job rates.
        """
        if t <= self._now + TIME_EPS:
            self._now = max(self._now, t)
            return
        if not self._active:
            self._now = t
            return
        remainders = [(a.remaining, a.job.deadline) for a in self._active]
        value, plan = flow_schedule(self._now, remainders, self._machines)
        total = sum(r for r, _ in remainders)
        if value < total - _FLOW_TOL:  # pragma: no cover - invariant guard
            raise AssertionError(
                f"migration state became infeasible: flow {value} < work {total}"
            )
        for lo, hi, per_job in plan:
            if lo >= t - TIME_EPS:
                break
            covered = min(hi, t) - lo
            frac = covered / (hi - lo)
            for a, w in zip(self._active, per_job):
                if w <= 0.0 or a.remaining <= TIME_EPS:
                    continue
                executed = min(w * frac, a.remaining)
                before = a.remaining
                a.remaining = snap(a.remaining - executed)
                if a.remaining <= TIME_EPS and a.job.job_id not in self._completions:
                    # Completion instant under the constant-rate execution.
                    rate = w / (hi - lo)
                    self._completions[a.job.job_id] = lo + before / rate
        self._active = [a for a in self._active if a.remaining > TIME_EPS]
        self._now = t

    def run(self, instance: Instance) -> MigrationOutcome:
        """Run the policy online over *instance* and audit the outcome."""
        self._active = []
        self._now = 0.0
        self._machines = instance.machines
        self._completions = {}
        outcome = MigrationOutcome(instance=instance, algorithm=self.name)
        for job in instance:
            self._advance(job.release)
            proposal = [(a.remaining, a.job.deadline) for a in self._active]
            proposal.append((job.processing, job.deadline))
            if migration_feasible(self._now, proposal, self._machines):
                self._active.append(_ActiveItem(job, job.processing))
                outcome.accepted_ids.add(job.job_id)
        if self._active:
            horizon = max(a.job.deadline for a in self._active)
            self._advance(horizon + TIME_EPS)
        outcome.completions = dict(self._completions)
        outcome.audit()
        return outcome
