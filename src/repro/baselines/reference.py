"""Reference policies: the clairvoyant oracle and random admission.

Neither is an online algorithm in the paper's sense; both exist to anchor
benchmark plots:

* :class:`OraclePolicy` replays a precomputed *offline* schedule through
  the online engine — the hindsight upper line.  Its accepted load equals
  the offline schedule's by construction, so plotting it next to the
  online algorithms shows how much of the gap to OPT is *information*
  (closable only by clairvoyance) versus *algorithmic*.
* :class:`RandomAdmissionPolicy` accepts each feasible job independently
  with probability ``q`` — the did-you-even-need-an-algorithm floor.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.engine.policy import Decision, OnlinePolicy
from repro.model.instance import Instance
from repro.model.job import Job
from repro.model.machine import MachineState
from repro.model.schedule import Schedule
from repro.offline.exact import EXACT_JOB_LIMIT, exact_optimum
from repro.offline.heuristics import best_offline_schedule
from repro.utils.rng import rng_from_any


class OraclePolicy(OnlinePolicy):
    """Replays an offline schedule online (hindsight reference).

    The plan is built at :meth:`prime` time (exact optimum when the
    instance is small enough, the heuristic packer otherwise) and the
    online run simply commits each planned job at its planned slot.  The
    engine still audits everything, so the oracle is also a self-check of
    the offline solvers' feasibility.
    """

    name = "oracle"
    immediate_commitment = True  # decisions are final; knowledge is not

    def __init__(self, plan: Schedule | None = None) -> None:
        self._plan = plan

    def prime(self, instance: Instance) -> "OraclePolicy":
        """Compute the offline plan for *instance*; returns ``self``."""
        if len(instance) <= EXACT_JOB_LIMIT:
            self._plan = exact_optimum(instance).schedule
        else:
            self._plan = best_offline_schedule(instance)
        return self

    def reset(self, machines: int, epsilon: float) -> None:
        if self._plan is None:
            raise RuntimeError(
                "OraclePolicy needs prime(instance) (or an explicit plan) "
                "before simulation"
            )

    def on_submission(
        self, job: Job, t: float, machines: Sequence[MachineState]
    ) -> Decision:
        assignment = self._plan.assignments.get(job.job_id)
        if assignment is None:
            return Decision.reject(oracle=True)
        return Decision.accept(
            machine=assignment.machine, start=assignment.start, oracle=True
        )


class RandomAdmissionPolicy(OnlinePolicy):
    """Accept each feasible job with probability ``q`` (coin-flip floor)."""

    def __init__(self, q: float = 0.5, rng: int | np.random.Generator | None = 0) -> None:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"acceptance probability must lie in [0, 1], got {q}")
        self.q = q
        self._rng = rng_from_any(rng)
        self.name = f"random-admission[q={q:g}]"

    def on_submission(
        self, job: Job, t: float, machines: Sequence[MachineState]
    ) -> Decision:
        candidates = [ms for ms in machines if ms.fits(job, t)]
        if not candidates or self._rng.random() >= self.q:
            return Decision.reject()
        chosen = min(candidates, key=lambda ms: (ms.outstanding(t), ms.index))
        return Decision.accept(machine=chosen.index, start=chosen.append_start(job, t))


def run_oracle(instance: Instance) -> Schedule:
    """Convenience: prime and simulate the oracle on *instance*."""
    from repro.engine.simulator import simulate

    return simulate(OraclePolicy().prime(instance), instance)
