"""Lee-style classify-by-size multi-machine baseline (reconstruction).

Lee [26] gives an :math:`O(1 + m + m \\varepsilon^{-1/m})`-competitive
deterministic algorithm on :math:`m` identical machines supporting
*commitment on admission*.  The full pseudocode is not contained in the
reproduced paper, so this module implements a faithful reconstruction of
the stated structure (documented as a substitution in DESIGN.md):

* processing times are partitioned into :math:`m` geometric *size classes*
  of width :math:`\\varepsilon^{-1/m}`, anchored at the first submitted
  job's processing time (the classification is *static*, as in the
  classify-and-select family Lee's algorithm belongs to);
* machine :math:`i` is dedicated to class :math:`i \\bmod m`
  (classes beyond the anchored range wrap around cyclically);
* within its machine, a job is admitted greedily iff appending it after
  the machine's outstanding load still meets its deadline.

The reconstruction supports full immediate commitment (stronger than
Lee's commitment-on-admission requirement), so Theorem 1's lower bound
applies to it — the benches confirm its measured ratio tracks the
:math:`1 + m + m\\varepsilon^{-1/m}` guarantee's shape and never beats
Threshold on adversarial inputs.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.engine.policy import Decision, OnlinePolicy
from repro.model.job import Job
from repro.model.machine import MachineState


class LeeStylePolicy(OnlinePolicy):
    """Static size classification across machines + per-machine greedy."""

    def __init__(self) -> None:
        self.name = "lee-style"
        self._m = 0
        self._epsilon = 1.0
        self._anchor: float | None = None
        self._class_ratio = 1.0

    def reset(self, machines: int, epsilon: float) -> None:
        self._m = machines
        self._epsilon = min(max(epsilon, 1e-12), 1.0)
        self._anchor = None
        # Geometric class width eps^{-1/m} > 1 (equal to 1 only if eps = 1,
        # where a single class per machine degenerates gracefully).
        self._class_ratio = self._epsilon ** (-1.0 / machines)

    # ------------------------------------------------------------------
    def size_class(self, processing: float) -> int:
        """Class index of a processing time (0-based, cyclic over machines).

        The anchor is the first job's processing time; class ``i`` covers
        ``[anchor * ratio^i, anchor * ratio^{i+1})`` for integral ``i`` of
        either sign, wrapped modulo ``m``.
        """
        assert self._anchor is not None, "size_class needs an anchored run"
        if self._class_ratio <= 1.0:
            return 0
        raw = math.floor(math.log(processing / self._anchor, self._class_ratio) + 1e-12)
        return raw % self._m

    def on_submission(
        self, job: Job, t: float, machines: Sequence[MachineState]
    ) -> Decision:
        if self._anchor is None:
            self._anchor = job.processing
        target = machines[self.size_class(job.processing)]
        if target.fits(job, t):
            return Decision.accept(
                machine=target.index,
                start=target.append_start(job, t),
                size_class=target.index,
            )
        return Decision.reject(size_class=target.index, reason="class machine busy")

    def describe(self) -> dict:
        return {
            "name": self.name,
            "machines": self._m,
            "class_ratio": self._class_ratio,
            "anchor": self._anchor,
        }
