"""Uniform algorithm registry and runner.

Benchmarks and examples refer to algorithms by name; the registry maps
names to factories and knows which execution engine each algorithm needs
(non-preemptive commitments, per-machine preemption, or migration).  The
:func:`run_algorithm` entry point returns a homogeneous :class:`RunResult`
so the analysis layer can compare accepted loads across machine models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.baselines.dasgupta_palis import DasGuptaPalisPolicy
from repro.baselines.goldwasser import GoldwasserKerbikovPolicy
from repro.baselines.greedy import GreedyPolicy
from repro.baselines.lee import LeeStylePolicy
from repro.baselines.migration import MigrationGreedyScheduler
from repro.baselines.reference import RandomAdmissionPolicy
from repro.core.randomized import ClassifyAndSelect
from repro.core.threshold import AllocationRule, ThresholdPolicy
from repro.engine.preemptive import simulate_preemptive
from repro.engine.simulator import simulate
from repro.model.instance import Instance


@dataclass(frozen=True)
class AlgorithmSpec:
    """Registry entry: how to build and run one algorithm."""

    name: str
    factory: Callable[..., Any]
    model: str  # "nonpreemptive" | "preemptive" | "migration"
    single_machine_only: bool = False
    randomized: bool = False
    description: str = ""


@dataclass
class RunResult:
    """Outcome of one algorithm on one instance, engine-agnostic."""

    algorithm: str
    instance: Instance
    accepted_load: float
    accepted_count: int
    detail: Any = field(repr=False, default=None)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of submitted jobs accepted."""
        n = len(self.instance)
        return 1.0 if n == 0 else self.accepted_count / n

    @property
    def stats(self) -> Any:
        """Kernel :class:`~repro.engine.kernel.RunStats` of the run.

        ``None`` for engines not yet kernel-backed (the migration model).
        """
        meta = getattr(self.detail, "meta", None)
        return meta.get("stats") if meta is not None else None

    @property
    def events(self) -> Any:
        """Kernel :class:`~repro.engine.kernel.EventStream` when recorded."""
        meta = getattr(self.detail, "meta", None)
        return meta.get("events") if meta is not None else None


def _make_random_admission(**kwargs):
    return RandomAdmissionPolicy(**kwargs)


def _make_delayed_greedy(**kwargs):
    from repro.engine.delayed import DelayedGreedyPolicy

    return DelayedGreedyPolicy(**kwargs)


def _make_admission_greedy(**kwargs):
    from repro.engine.admission import AdmissionGreedyPolicy

    return AdmissionGreedyPolicy(**kwargs)


def _make_admission_lazy(**kwargs):
    from repro.engine.admission import AdmissionLazyPolicy

    return AdmissionLazyPolicy(**kwargs)


def _make_revocable_greedy(**kwargs):
    from repro.engine.penalties import RevocableGreedyPolicy

    return RevocableGreedyPolicy(**kwargs)


ALGORITHMS: dict[str, AlgorithmSpec] = {
    "threshold": AlgorithmSpec(
        "threshold",
        ThresholdPolicy,
        "nonpreemptive",
        description="Algorithm 1 of the paper (Theorem 2).",
    ),
    "threshold[worst-fit]": AlgorithmSpec(
        "threshold[worst-fit]",
        lambda: ThresholdPolicy(allocation=AllocationRule.WORST_FIT),
        "nonpreemptive",
        description="Ablation: Threshold with worst-fit allocation.",
    ),
    "threshold[first-fit]": AlgorithmSpec(
        "threshold[first-fit]",
        lambda: ThresholdPolicy(allocation=AllocationRule.FIRST_FIT),
        "nonpreemptive",
        description="Ablation: Threshold with first-fit allocation.",
    ),
    "greedy": AlgorithmSpec(
        "greedy",
        GreedyPolicy,
        "nonpreemptive",
        description="Accept-if-feasible with best-fit list scheduling (Kim–Chwa).",
    ),
    "greedy[least-loaded]": AlgorithmSpec(
        "greedy[least-loaded]",
        lambda: GreedyPolicy(placement="least-loaded"),
        "nonpreemptive",
        description="Greedy with least-loaded placement.",
    ),
    "goldwasser-kerbikov": AlgorithmSpec(
        "goldwasser-kerbikov",
        GoldwasserKerbikovPolicy,
        "nonpreemptive",
        single_machine_only=True,
        description="Optimal deterministic single machine (2 + 1/eps).",
    ),
    "lee-style": AlgorithmSpec(
        "lee-style",
        LeeStylePolicy,
        "nonpreemptive",
        description="Reconstruction of Lee's classify-by-size algorithm.",
    ),
    "dasgupta-palis": AlgorithmSpec(
        "dasgupta-palis",
        DasGuptaPalisPolicy,
        "preemptive",
        description="Preemptive (no migration) feasibility-greedy (1 + 1/eps).",
    ),
    "migration-greedy": AlgorithmSpec(
        "migration-greedy",
        MigrationGreedyScheduler,
        "migration",
        description="Feasibility-greedy in the preemption+migration model.",
    ),
    "classify-select": AlgorithmSpec(
        "classify-select",
        ClassifyAndSelect,
        "nonpreemptive",
        single_machine_only=True,
        randomized=True,
        description="Randomized single-machine classify-and-select (Corollary 1).",
    ),
    "random-admission": AlgorithmSpec(
        "random-admission",
        _make_random_admission,
        "nonpreemptive",
        randomized=True,
        description="Coin-flip admission floor (accept feasible jobs w.p. q).",
    ),
    "delayed-greedy": AlgorithmSpec(
        "delayed-greedy",
        _make_delayed_greedy,
        "delayed",
        description="δ-delayed commitment: defer maximally, admit by value "
        "(delta defaults to the instance slack).",
    ),
    "admission-greedy": AlgorithmSpec(
        "admission-greedy",
        _make_admission_greedy,
        "admission",
        description="Commitment on admission: start the largest startable pending job.",
    ),
    "admission-lazy": AlgorithmSpec(
        "admission-lazy",
        _make_admission_lazy,
        "admission",
        description="Commitment on admission: wait until forced, then start the largest.",
    ),
    "revocable-greedy": AlgorithmSpec(
        "revocable-greedy",
        _make_revocable_greedy,
        "penalties",
        description="Commitment with penalties: latest-feasible greedy with "
        "profitable swaps (phi defaults to 0.5).",
    ),
}


def make_algorithm(name: str, **kwargs: Any) -> Any:
    """Instantiate a registered algorithm by name."""
    spec = ALGORITHMS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {sorted(ALGORITHMS)}"
        )
    return spec.factory(**kwargs)


def run_algorithm(
    name: str,
    instance: Instance,
    record_events: bool = False,
    **kwargs: Any,
) -> RunResult:
    """Run algorithm *name* on *instance* with the right engine.

    Every kernel-backed model (all but migration) goes through
    :func:`repro.engine.kernel.run_model`, so the result carries identical
    instrumentation regardless of the commitment model:
    ``result.stats`` (always) and ``result.events`` (with
    ``record_events=True``).  ``detail`` carries the engine-native object
    (a :class:`~repro.model.schedule.Schedule`, a ``PreemptiveOutcome`` or
    a ``MigrationOutcome``) for deeper inspection.
    """
    spec = ALGORITHMS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {sorted(ALGORITHMS)}"
        )
    if spec.single_machine_only and instance.machines != 1:
        raise ValueError(f"{name} only runs on single-machine instances")
    # Engine-level kwargs are consumed before the policy factory sees them.
    delta = kwargs.pop("delta", None) if spec.model == "delayed" else None
    phi = kwargs.pop("phi", None) if spec.model == "penalties" else None
    algorithm = spec.factory(**kwargs)
    if spec.model == "nonpreemptive":
        schedule = simulate(algorithm, instance, record_events=record_events)
        return RunResult(
            algorithm=name,
            instance=instance,
            accepted_load=schedule.accepted_load,
            accepted_count=schedule.accepted_count,
            detail=schedule,
        )
    if spec.model == "preemptive":
        outcome = simulate_preemptive(algorithm, instance, record_events=record_events)
        return RunResult(
            algorithm=name,
            instance=instance,
            accepted_load=outcome.accepted_load,
            accepted_count=len(outcome.accepted_ids),
            detail=outcome,
        )
    if spec.model == "migration":
        outcome = algorithm.run(instance)
        return RunResult(
            algorithm=name,
            instance=instance,
            accepted_load=outcome.accepted_load,
            accepted_count=len(outcome.accepted_ids),
            detail=outcome,
        )
    if spec.model == "admission":
        from repro.engine.admission import simulate_admission

        schedule = simulate_admission(algorithm, instance, record_events=record_events)
        return RunResult(
            algorithm=name,
            instance=instance,
            accepted_load=schedule.accepted_load,
            accepted_count=schedule.accepted_count,
            detail=schedule,
        )
    if spec.model == "penalties":
        from repro.engine.batch_penalties import DEFAULT_PHI
        from repro.engine.penalties import simulate_with_penalties

        outcome = simulate_with_penalties(
            algorithm,
            instance,
            DEFAULT_PHI if phi is None else phi,
            record_events=record_events,
        )
        return RunResult(
            algorithm=name,
            instance=instance,
            accepted_load=outcome.completed_load,
            accepted_count=len(outcome.completed),
            detail=outcome,
        )
    if spec.model == "delayed":
        from repro.engine.delayed import simulate_delayed

        if delta is None:
            delta = instance.epsilon
        schedule = simulate_delayed(
            algorithm, instance, min(delta, instance.epsilon), record_events=record_events
        )
        return RunResult(
            algorithm=name,
            instance=instance,
            accepted_load=schedule.accepted_load,
            accepted_count=schedule.accepted_count,
            detail=schedule,
        )
    raise RuntimeError(f"unknown execution model {spec.model!r}")  # pragma: no cover
