"""Verified journal transport: collect shard journals across hosts.

A multi-host sweep (:mod:`repro.workloads.sharding`) ends with N shard
journals scattered over N machines.  Getting them onto one filesystem is
the step the durability story has so far taken on faith: a bit-flip in
transit, a connection dropped mid-file or a half-written NFS copy would
surface — at best — as a confusing load error at merge time, and at
worst as silently missing grid coverage.  This module closes that gap
with an end-to-end integrity pipeline::

    shard hosts ──fetch──▶ staging ──verify/salvage──▶ inbox ──▶ merge

* **Transport backends** implement the tiny :class:`Transport` protocol
  (pull bytes from a source URI into a local file, resumable by byte
  offset).  :class:`LocalDirTransport` covers shared-filesystem setups;
  :class:`CommandTransport` wraps any user-supplied fetch command
  (``scp``, ``rsync``, ``curl`` …) so no network stack is baked in.
* **Retries with bounded exponential backoff** around every pull
  (:func:`fetch_resumable`), with per-transfer timeouts and resumption
  of partial pulls from the byte offset already staged — a flaky link
  costs only the missing suffix, not the whole file.
* **Verification before hand-off**: a staged journal must pass
  :func:`~repro.workloads.journal.verify_journal` (seal + row CRCs)
  before it is atomically renamed into the inbox.  A journal that
  arrives damaged is re-pulled from scratch while transfer retries
  remain; once exhausted it is **salvaged** (intact rows kept, corrupt
  rows quarantined into a ``<name>.corruption.json`` sidecar, damaged
  original preserved under ``inbox/quarantine/``) so one flaky host
  degrades coverage by exactly its damaged cells — never by the shard.

The pipeline is driven by ``repro collect --from <uri>... --inbox
<dir>`` and handed to ``repro merge --verify``; the chaos faults
``bitflip`` and ``drop_transfer`` (:mod:`repro.testing.chaos`) exercise
every path deterministically in the test suite and the CI smoke step.
"""

from __future__ import annotations

import json
import os
import random
import shlex
import subprocess
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from repro.utils.rng import interleave_seeds
from repro.workloads.journal import (
    CorruptionReport,
    JournalError,
    JournalVerification,
    salvage_journal,
    verify_journal,
)


class TransportError(RuntimeError):
    """A transfer attempt failed (network, command, timeout, missing source)."""


class TransferTimeout(TransportError):
    """A transfer attempt exceeded its per-transfer time budget."""


def decorrelated_delay(
    base: float, attempt: int, *, seed: int = 0, salt: int = 0
) -> float:
    """Deterministic decorrelated jitter on a bounded exponential backoff.

    Pure exponential backoff synchronises: N workers that fail against
    the same flaky host at the same moment all sleep exactly
    ``base * 2**(attempt-1)`` and return in lockstep — a retry storm that
    re-creates the overload it is backing off from.  This draws each
    delay uniformly from ``[half, full)`` of the exponential envelope
    (``full = base * 2**(attempt-1)``), so concurrent retriers spread out
    while the bound and the expected growth per attempt are preserved.

    Determinism: the draw depends only on ``(seed, salt, attempt)`` —
    *seed* namespaces a policy, *salt* decorrelates independent retriers
    (one per transfer source, worker slot or cell) — so any chaotic run
    is replayable bit-for-bit.
    """
    if base <= 0:
        return 0.0
    full = base * (2 ** (attempt - 1))
    u = random.Random(interleave_seeds([seed, salt, attempt])).random()
    return full * (0.5 + 0.5 * u)


def transfer_salt(source: str, dest: str | os.PathLike[str] = "") -> int:
    """Stable per-transfer jitter salt (decorrelates concurrent pulls)."""
    return zlib.crc32(f"{source}->{os.fspath(dest)}".encode("utf-8", "replace"))


@dataclass(frozen=True)
class TransferPolicy:
    """Retry/timeout envelope around every pull.

    ``retries`` bounds *extra* attempts (so ``retries=2`` means at most
    three pulls), each delayed by a decorrelated-jittered exponential
    backoff bounded by ``backoff * 2**(attempt-1)`` seconds — the same
    envelope the sweep scheduler uses for failed cells, jittered so N
    workers retrying one flaky host spread out instead of storming it
    (see :func:`decorrelated_delay`; ``jitter=False`` restores the pure
    exponential).  ``timeout`` is a per-transfer wall-clock budget;
    ``None`` waits indefinitely.  Verification failures after a complete
    pull consume transfer attempts too: a journal that keeps arriving
    corrupt is a transfer problem until proven otherwise.
    """

    retries: int = 2
    backoff: float = 0.25
    timeout: float | None = None
    chunk_size: int = 1 << 20
    #: Decorrelate concurrent retriers (deterministic under ``jitter_seed``).
    jitter: bool = True
    #: Namespaces the jitter draws; fixed seed -> bit-identical delays.
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")

    def delay(self, attempt: int, salt: int = 0) -> float:
        """Backoff before retry *attempt* (1-based), jittered per *salt*."""
        if not self.jitter:
            return self.backoff * (2 ** (attempt - 1))
        return decorrelated_delay(
            self.backoff, attempt, seed=self.jitter_seed, salt=salt
        )


@runtime_checkable
class Transport(Protocol):
    """Pull bytes from a source URI into a local file, offset-resumable.

    ``fetch`` must append the source's bytes starting at byte *offset*
    to *dest* (which holds exactly *offset* bytes of a partial earlier
    pull) and return the total size of *dest* afterwards.  Backends that
    cannot seek (plain fetch commands) may ignore *offset* by truncating
    *dest* and re-pulling from zero — correctness first, resumption as
    an optimisation.  Failures raise :class:`TransportError`
    (:class:`TransferTimeout` for budget overruns).
    """

    def fetch(
        self,
        source: str,
        dest: str | os.PathLike[str],
        *,
        offset: int = 0,
        timeout: float | None = None,
    ) -> int:  # pragma: no cover - protocol signature
        ...


class LocalDirTransport:
    """Transport over a locally mounted filesystem (NFS, sshfs, same host).

    Copies in bounded chunks so the per-transfer timeout is enforced even
    for multi-gigabyte journals, and resumes from *offset* so a timed-out
    pull continues where it stopped instead of starting over.
    """

    def __init__(self, chunk_size: int = 1 << 20) -> None:
        self.chunk_size = int(chunk_size)

    def fetch(
        self,
        source: str,
        dest: str | os.PathLike[str],
        *,
        offset: int = 0,
        timeout: float | None = None,
    ) -> int:
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            src = open(source, "rb")
        except OSError as exc:
            raise TransportError(f"{source}: cannot open source: {exc}") from exc
        with src, open(dest, "ab") as out:
            out.truncate(offset)
            src.seek(offset)
            total = offset
            while True:
                if deadline is not None and time.monotonic() > deadline:
                    raise TransferTimeout(
                        f"{source}: transfer exceeded {timeout:.3g}s "
                        f"({total} bytes staged)"
                    )
                chunk = src.read(self.chunk_size)
                if not chunk:
                    break
                out.write(chunk)
                total += len(chunk)
            out.flush()
            os.fsync(out.fileno())
        return total


class CommandTransport:
    """Transport via a user-supplied fetch command (``scp``, ``rsync`` …).

    *template* is a shell-free command template whose ``{source}`` and
    ``{dest}`` placeholders are substituted per transfer, e.g.::

        CommandTransport("scp -q {source} {dest}")
        CommandTransport("rsync -t {source} {dest}")

    The command must leave the complete file at ``{dest}`` and exit 0.
    Offset resumption is delegated to the command when it supports it
    (rsync does); since this layer cannot know, every pull re-fetches
    from zero — *dest* is truncated first so a partial earlier pull can
    never masquerade as a complete transfer.
    """

    def __init__(self, template: str) -> None:
        if "{source}" not in template or "{dest}" not in template:
            raise ValueError(
                "command template must contain {source} and {dest} "
                f"placeholders, got {template!r}"
            )
        self.template = template

    def fetch(
        self,
        source: str,
        dest: str | os.PathLike[str],
        *,
        offset: int = 0,
        timeout: float | None = None,
    ) -> int:
        dest = os.fspath(dest)
        if os.path.exists(dest):
            os.remove(dest)  # commands own the whole file: no stale partials
        argv = [
            part.format(source=source, dest=dest)
            for part in shlex.split(self.template)
        ]
        try:
            proc = subprocess.run(
                argv, capture_output=True, text=True, timeout=timeout
            )
        except subprocess.TimeoutExpired as exc:
            raise TransferTimeout(
                f"{source}: fetch command exceeded {timeout:.3g}s"
            ) from exc
        except OSError as exc:
            raise TransportError(
                f"{source}: fetch command could not run: {exc}"
            ) from exc
        if proc.returncode != 0:
            detail = (proc.stderr or proc.stdout or "").strip()
            raise TransportError(
                f"{source}: fetch command exited {proc.returncode}"
                + (f": {detail}" if detail else "")
            )
        if not os.path.exists(dest):
            raise TransportError(
                f"{source}: fetch command exited 0 but wrote nothing to {dest}"
            )
        return os.path.getsize(dest)


def fetch_resumable(
    transport: Transport,
    source: str,
    dest: str | os.PathLike[str],
    policy: TransferPolicy = TransferPolicy(),
    *,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Pull *source* into *dest* with retries, resuming partial pulls.

    Each retry resumes from the byte offset already staged at *dest*
    (backends that cannot seek simply restart — see
    :class:`CommandTransport`), after a bounded exponential backoff with
    deterministic per-transfer jitter (the ``(source, dest)`` pair salts
    the draw, so concurrent pulls from one flaky host desynchronise).
    Returns the number of attempts used; raises the last
    :class:`TransportError` once ``policy.retries`` extra attempts are
    exhausted.  *sleep* is injectable so tests run at full speed.
    """
    dest = os.fspath(dest)
    salt = transfer_salt(source, dest)
    last: TransportError | None = None
    for attempt in range(1, policy.retries + 2):
        if attempt > 1:
            delay = policy.delay(attempt - 1, salt)
            if delay > 0:
                sleep(delay)
        offset = os.path.getsize(dest) if os.path.exists(dest) else 0
        try:
            transport.fetch(source, dest, offset=offset, timeout=policy.timeout)
            return attempt
        except TransportError as exc:
            last = exc
    assert last is not None
    raise last


# ---------------------------------------------------------------------------
# collection: pull + verify + salvage/quarantine
# ---------------------------------------------------------------------------


@dataclass
class TransferRecord:
    """Outcome of collecting one journal."""

    source: str
    dest: str | None
    #: ``verified`` — sealed and every CRC intact; ``unsealed`` — intact
    #: but integrity unknown (pre-checksum journal); ``salvaged`` —
    #: arrived damaged, intact rows kept, corrupt rows quarantined;
    #: ``quarantined`` — unusable (no readable header), moved aside
    #: whole; ``failed`` — transport never delivered the file.
    status: str
    attempts: int = 0
    bytes: int = 0
    corruption: CorruptionReport | None = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        """True when the journal (or its intact part) reached the inbox."""
        return self.status in ("verified", "unsealed", "salvaged")

    def as_dict(self) -> dict[str, Any]:
        return {
            "source": self.source,
            "dest": self.dest,
            "status": self.status,
            "attempts": self.attempts,
            "bytes": self.bytes,
            "corruption": None if self.corruption is None else self.corruption.as_dict(),
            "detail": self.detail,
        }


@dataclass
class CollectResult:
    """Outcome of :func:`collect_journals` (the ``repro collect`` payload)."""

    inbox: str
    records: list[TransferRecord] = field(default_factory=list)

    @property
    def collected(self) -> list[str]:
        """Inbox paths of every journal that landed (verified or salvaged)."""
        return [r.dest for r in self.records if r.ok and r.dest]

    @property
    def ok(self) -> bool:
        """True when every source arrived fully verified."""
        return bool(self.records) and all(
            r.status == "verified" for r in self.records
        )

    @property
    def degraded(self) -> bool:
        """True when anything was salvaged, quarantined or lost."""
        return any(r.status != "verified" for r in self.records)

    def summary(self) -> str:
        counts: dict[str, int] = {}
        for r in self.records:
            counts[r.status] = counts.get(r.status, 0) + 1
        breakdown = ", ".join(f"{n} {s}" for s, n in sorted(counts.items()))
        lines = [
            f"collected {len(self.collected)}/{len(self.records)} journal(s) "
            f"into {self.inbox} ({breakdown})"
        ]
        for r in self.records:
            extra = f" — {r.detail}" if r.detail else ""
            lines.append(
                f"  {r.source}: {r.status} "
                f"({r.attempts} attempt(s), {r.bytes} bytes){extra}"
            )
        return "\n".join(lines)


def _resolve_transport(
    transport: Transport | None, command: str | None
) -> Transport:
    if transport is not None and command is not None:
        raise ValueError("pass either a transport or a command, not both")
    if transport is not None:
        return transport
    if command is not None:
        return CommandTransport(command)
    return LocalDirTransport()


def collect_journals(
    sources: Sequence[str],
    inbox: str | os.PathLike[str],
    *,
    transport: Transport | None = None,
    command: str | None = None,
    policy: TransferPolicy = TransferPolicy(),
    verify: bool = True,
    salvage: bool = True,
    sleep: Callable[[float], None] = time.sleep,
) -> CollectResult:
    """Pull shard journals into a verified inbox (``repro collect``).

    For each source URI: fetch into ``inbox/.staging`` (retrying with
    backoff, resuming partial pulls), verify the staged file's seal and
    row checksums, and atomically rename it into *inbox*.  A journal
    that arrives corrupt is re-pulled from scratch while transfer
    attempts remain — transient corruption is a transfer problem.  When
    attempts are exhausted and ``salvage`` is set, the damaged original
    is preserved under ``inbox/quarantine/``, the intact rows are
    salvaged into the inbox (resealed, marked ``salvaged``), and the
    quarantined rows are written to a ``<name>.corruption.json`` sidecar
    so ``repro merge`` / ``repro sweep --resume`` can account for every
    missing cell.  Files with no readable header cannot be salvaged and
    are quarantined whole.

    ``verify=False`` skips verification entirely (pull-only mode);
    ``salvage=False`` records persistent corruption as ``failed`` and
    leaves nothing in the inbox for that source.
    """
    inbox = os.fspath(inbox)
    staging = os.path.join(inbox, ".staging")
    quarantine = os.path.join(inbox, "quarantine")
    os.makedirs(staging, exist_ok=True)
    backend = _resolve_transport(transport, command)
    result = CollectResult(inbox=inbox)

    for source in sources:
        name = os.path.basename(source.rstrip("/")) or "journal.jsonl"
        part = os.path.join(staging, name + ".part")
        final = os.path.join(inbox, name)
        if os.path.exists(part):
            os.remove(part)  # stale partial from an aborted earlier collect
        record = TransferRecord(source=source, dest=None, status="failed")
        verification: JournalVerification | None = None
        for attempt in range(1, policy.retries + 2):
            if attempt > 1:
                delay = policy.delay(attempt - 1, transfer_salt(source, part))
                if delay > 0:
                    sleep(delay)
            try:
                record.attempts += fetch_resumable(
                    backend, source, part, policy, sleep=sleep
                )
            except TransportError as exc:
                record.status = "failed"
                record.detail = str(exc)
                verification = None
                break
            record.bytes = os.path.getsize(part)
            if not verify:
                verification = None
                record.status = "unsealed"
                record.detail = "verification skipped"
                break
            verification = verify_journal(part)
            if verification.status != "corrupt":
                record.status = verification.status
                record.detail = verification.detail
                break
            # Arrived damaged: assume transfer trouble and re-pull from
            # scratch while attempts remain; salvage only when the link
            # has had every chance to deliver clean bytes.
            record.detail = verification.detail
            if attempt <= policy.retries:
                os.remove(part)

        if record.status in ("verified", "unsealed"):
            os.replace(part, final)
            record.dest = final
        elif verification is not None and verification.status == "corrupt":
            if not salvage:
                record.status = "failed"
                record.detail = (
                    f"persistently corrupt after {record.attempts} attempt(s): "
                    f"{verification.detail}"
                )
                os.remove(part)
            else:
                os.makedirs(quarantine, exist_ok=True)
                damaged = os.path.join(quarantine, name)
                try:
                    _, report = salvage_journal(part, damaged + ".salvaged")
                except JournalError as exc:
                    # No readable header: not a journal we can repair.
                    os.replace(part, damaged)
                    record.status = "quarantined"
                    record.dest = None
                    record.detail = f"unsalvageable: {exc}"
                else:
                    os.replace(part, damaged)  # keep damaged original bytes
                    os.replace(damaged + ".salvaged", final)
                    report.path = final  # not the transient staging path
                    sidecar = final + ".corruption.json"
                    with open(sidecar, "w", encoding="utf-8") as fh:
                        json.dump(
                            {
                                "source": source,
                                "quarantined_original": damaged,
                                **report.as_dict(),
                            },
                            fh,
                            indent=2,
                        )
                        fh.write("\n")
                    record.status = "salvaged"
                    record.dest = final
                    record.corruption = report
                    record.detail = (
                        f"{report.summary()}; damaged original kept at {damaged}"
                    )
        result.records.append(record)
    return result


__all__ = [
    "CollectResult",
    "CommandTransport",
    "LocalDirTransport",
    "Transport",
    "TransferPolicy",
    "TransferRecord",
    "TransferTimeout",
    "TransportError",
    "collect_journals",
    "decorrelated_delay",
    "fetch_resumable",
    "transfer_salt",
]
