"""Random instance generators with controlled slack.

The generators produce Poisson arrival streams with pluggable processing
time distributions and a *slack profile*: every job receives slack at least
the declared :math:`\\varepsilon`, with a configurable fraction of jobs
pinned exactly at the tight-slack frontier (tight jobs are what make
admission hard; loose jobs are what gives the optimum room to reshuffle).

All randomness flows through a single :class:`numpy.random.Generator` and
sampling is vectorised (releases, processings and slacks are drawn as
arrays in one shot, per the HPC guides) before jobs are materialised.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.model.instance import Instance
from repro.model.job import Job
from repro.utils.rng import rng_from_any


class ProcessingDistribution(str, enum.Enum):
    """Processing-time families used across the benchmark suite."""

    UNIFORM = "uniform"
    LOGNORMAL = "lognormal"
    PARETO = "pareto"
    BIMODAL = "bimodal"
    EXPONENTIAL = "exponential"


def _sample_processing(
    rng: np.random.Generator,
    n: int,
    distribution: ProcessingDistribution,
    p_mean: float,
) -> np.ndarray:
    """Draw *n* positive processing times with approximate mean ``p_mean``."""
    if distribution is ProcessingDistribution.UNIFORM:
        draws = rng.uniform(0.2 * p_mean, 1.8 * p_mean, size=n)
    elif distribution is ProcessingDistribution.LOGNORMAL:
        sigma = 1.0
        draws = rng.lognormal(mean=np.log(p_mean) - sigma**2 / 2.0, sigma=sigma, size=n)
    elif distribution is ProcessingDistribution.PARETO:
        shape = 2.1  # finite mean, heavy tail
        draws = (rng.pareto(shape, size=n) + 1.0) * p_mean * (shape - 1.0) / shape
    elif distribution is ProcessingDistribution.BIMODAL:
        short = rng.uniform(0.1 * p_mean, 0.3 * p_mean, size=n)
        long = rng.uniform(2.0 * p_mean, 4.0 * p_mean, size=n)
        mask = rng.random(n) < 0.8
        draws = np.where(mask, short, long)
    elif distribution is ProcessingDistribution.EXPONENTIAL:
        draws = rng.exponential(p_mean, size=n)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown distribution {distribution!r}")
    return np.maximum(draws, 1e-6)


def random_instance(
    n: int,
    machines: int,
    epsilon: float,
    seed: int | np.random.Generator | None = None,
    arrival_rate: float | None = None,
    distribution: ProcessingDistribution | str = ProcessingDistribution.UNIFORM,
    p_mean: float = 1.0,
    tight_fraction: float = 0.5,
    slack_scale: float = 1.0,
    name: str = "",
) -> Instance:
    """General random instance.

    Parameters
    ----------
    n, machines, epsilon:
        Size, machine count, declared slack.
    arrival_rate:
        Poisson arrival rate; ``None`` targets utilisation ~1.5x capacity
        (``rate = 1.5 * machines / p_mean``) so admission control actually
        has to reject.
    distribution, p_mean:
        Processing-time family and mean.
    tight_fraction:
        Fraction of jobs with *exactly* tight slack ``d = r + (1+eps) p``.
    slack_scale:
        Scale of the exponential extra slack of non-tight jobs (relative to
        each job's processing time).
    """
    rng = rng_from_any(seed)
    distribution = ProcessingDistribution(distribution)
    if arrival_rate is None:
        arrival_rate = 1.5 * machines / p_mean
    gaps = rng.exponential(1.0 / arrival_rate, size=n)
    releases = np.cumsum(gaps)
    processings = _sample_processing(rng, n, distribution, p_mean)
    extra = rng.exponential(slack_scale, size=n) * processings
    tight = rng.random(n) < tight_fraction
    slacks = np.where(tight, epsilon, epsilon + extra)
    deadlines = releases + (1.0 + slacks) * processings
    jobs = [
        Job(float(r), float(p), float(d))
        for r, p, d in zip(releases, processings, deadlines)
    ]
    label = name or f"random[{distribution.value}]"
    return Instance(jobs, machines=machines, epsilon=epsilon, name=label)


def tight_slack_instance(
    n: int,
    machines: int,
    epsilon: float,
    seed: int | np.random.Generator | None = None,
    distribution: ProcessingDistribution | str = ProcessingDistribution.UNIFORM,
    p_mean: float = 1.0,
    arrival_rate: float | None = None,
) -> Instance:
    """All jobs exactly at the slack frontier (hardest admission regime)."""
    return random_instance(
        n=n,
        machines=machines,
        epsilon=epsilon,
        seed=seed,
        arrival_rate=arrival_rate,
        distribution=distribution,
        p_mean=p_mean,
        tight_fraction=1.0,
        name=f"tight[{ProcessingDistribution(distribution).value}]",
    )


def poisson_instance(
    n: int,
    machines: int,
    epsilon: float,
    utilization: float = 1.5,
    seed: int | np.random.Generator | None = None,
    **kwargs,
) -> Instance:
    """Poisson stream with a target offered-load/capacity ratio.

    ``utilization`` is offered load divided by machine capacity; values
    above 1 force rejections (the regime the paper targets).
    """
    p_mean = kwargs.pop("p_mean", 1.0)
    rate = utilization * machines / p_mean
    return random_instance(
        n=n,
        machines=machines,
        epsilon=epsilon,
        seed=seed,
        arrival_rate=rate,
        p_mean=p_mean,
        name=f"poisson[u={utilization:g}]",
        **kwargs,
    )
