"""Remote elastic execution: the lease queue served over a wire.

PR 5 gave the repo verified multi-host *journal* transport and PR 7 an
elastic *local* lease queue; this module joins them.  One sweep spans
machines: the controller serves cells from the same
:class:`~repro.workloads.elastic.CellQueue` to worker processes launched
on other hosts (over ssh, a container exec, or plain subprocesses for
tests), with the lease / heartbeat / speculation semantics unchanged
from the local pool.

The moving parts:

* **Host registry** — ``hosts.json`` (:func:`load_hosts`) names each
  host, its launch command (a ``{python}``-templated transport spec, ssh
  or otherwise), its worker slot count, and optionally a pinned code
  fingerprint.
* **Launch handshake** — a spawned worker's first message is ``hello``
  carrying its :func:`env_fingerprint` (code tree hash, python, numpy,
  protocol version).  The controller verifies it against its own (or the
  registry's pinned value) before any lease is granted; a mismatched
  host is rejected and quarantined — distributed determinism starts with
  refusing to run divergent code.
* **Wire protocol** — NDJSON framing reused from
  :mod:`repro.serve.protocol`, one message per line, each carrying a
  per-message CRC and a per-channel sequence number.  Duplicate delivery
  (a retransmit) is detected by sequence and deduped rather than
  double-charged; a CRC mismatch is loud.
* **Network failure domains** — the host is a failure domain *above*
  the worker slot.  A **dead host** (channel EOF) is charged
  (``host_max_failures``, then quarantine: every lease requeued
  charge-free).  A **partitioned host** just goes quiet: its leases
  expire and re-dispatch with *no* host charge, and if the partition
  heals the stale result is deduped first-verified-wins and asserted
  bit-identical — exactly the local speculation contract.  A **slow
  host** keeps heartbeating and keeps its leases.
* **Graceful degradation** — when every remote host is quarantined the
  sweep falls back to local worker processes driven through the same
  protocol (``manifest.degraded_to_local``); only if the fallback dies
  too are the remaining cells quarantined (kind ``"host"``).

Rows land through the existing journal path with host/transport
provenance *outside* the row CRC, so ``merge_journals``, ``repro
verify`` and resume are unchanged — a chaotic 3-host run merges
bit-identical to the serial scalar run (bench E28).

Network chaos (:class:`repro.testing.chaos.HostChaosPlan`) is applied
controller-side on the inbound path via :class:`HostLink`, a pure state
machine (explicit ``now``) so partition/heal/dedup interleavings are
property-testable without processes.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import platform
import queue as queue_mod
import shlex
import subprocess
import sys
import threading
import time
import zlib
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.offline.cache import BracketCache
from repro.serve.protocol import encode_line
from repro.workloads.elastic import (
    DEFAULT_HEARTBEAT_INTERVAL,
    LEASE_TIMEOUT_BEATS,
    CellQueue,
    Lease,
)
from repro.workloads.journal import row_from_payload
from repro.workloads.resilient import (
    CellFailure,
    FailureManifest,
    HostFailure,
    ResilientSweepResult,
    SweepInterrupted,
    _assemble,
    check_seed_collisions,
    prepare_journal,
    validate_cell_rows,
    validate_sweep_pickles,
)
from repro.workloads.sweep import SweepSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.testing.chaos import ChaosPlan, HostChaosPlan

#: Scheduler poll cadence (seconds) — bounds dispatch/reap latency.
_POLL_INTERVAL = 0.005

#: Grace period between SIGTERM and SIGKILL when reaping a worker.
_KILL_GRACE = 0.5

#: Version of the lease-over-the-wire protocol (part of the handshake).
REMOTE_PROTOCOL_VERSION = 1

#: Wire operations.  Controller -> worker: ``init``, ``reject``,
#: ``lease``, ``stop``.  Worker -> controller: ``hello``, ``ready``,
#: ``heartbeat``, ``result``, ``nack``.
REMOTE_OPS = (
    "hello",
    "init",
    "reject",
    "ready",
    "lease",
    "heartbeat",
    "result",
    "nack",
    "stop",
)

#: Default launch command: a worker on the local machine.  Real hosts
#: prefix it with their transport, e.g.
#: ``"ssh worker-3 {python} -m repro.workloads.remote_worker"``.
DEFAULT_WORKER_COMMAND = "{python} -m repro.workloads.remote_worker"

#: Registry name of the synthesized local-fallback host.
LOCAL_FALLBACK_HOST = "local-fallback"


class RemoteProtocolError(ValueError):
    """A wire message violates the remote protocol (op, CRC, shape)."""


# ---------------------------------------------------------------------------
# wire codec: NDJSON lines (serve framing) + per-message CRC + sequence
# ---------------------------------------------------------------------------


def message_crc(message: Mapping[str, Any]) -> str:
    """8-hex-digit CRC over the canonical JSON of *message* minus ``crc``.

    Canonical = sorted keys, compact separators — stable under field
    reordering, so both endpoints compute the same digest.
    """
    body = {key: value for key, value in message.items() if key != "crc"}
    blob = json.dumps(body, allow_nan=True, separators=(",", ":"), sort_keys=True)
    return format(zlib.crc32(blob.encode("utf-8")) & 0xFFFFFFFF, "08x")


def encode_message(op: str, seq: int, **fields: Any) -> bytes:
    """Frame one wire message: op + sequence number + CRC, one JSON line."""
    if op not in REMOTE_OPS:
        raise RemoteProtocolError(f"unknown op {op!r}")
    message: dict[str, Any] = {"op": op, "seq": int(seq), **fields}
    message["crc"] = message_crc(message)
    try:
        return encode_line(message)
    except ValueError:
        # Injected 'corrupt' chaos rows carry non-finite floats; they
        # must survive the wire so the controller can classify them.
        return (json.dumps(message, allow_nan=True) + "\n").encode("utf-8")


def decode_message(raw: bytes | str) -> dict[str, Any]:
    """Parse + verify one wire line; raises :class:`RemoteProtocolError`."""
    if isinstance(raw, bytes):
        try:
            raw = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise RemoteProtocolError(f"message is not UTF-8: {exc}") from exc
    try:
        message = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise RemoteProtocolError(f"message is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise RemoteProtocolError("message must be a JSON object")
    op = message.get("op")
    if op not in REMOTE_OPS:
        raise RemoteProtocolError(f"unknown op {op!r}; expected one of {list(REMOTE_OPS)}")
    if not isinstance(message.get("seq"), int):
        raise RemoteProtocolError(f"{op}: missing integer seq")
    crc = message.get("crc")
    expected = message_crc(message)
    if crc != expected:
        raise RemoteProtocolError(
            f"{op} seq={message['seq']}: CRC mismatch (got {crc!r}, expected {expected})"
        )
    return message


# ---------------------------------------------------------------------------
# environment fingerprint (the handshake's determinism gate)
# ---------------------------------------------------------------------------


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Short hash of the installed ``repro`` package source tree.

    Two hosts with equal fingerprints run byte-identical code; the
    handshake refuses hosts where they differ, because a silently
    divergent checkout is the one failure bit-identity checks cannot
    localise after the fact.
    """
    root = Path(__file__).resolve().parent.parent  # the repro package
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def env_fingerprint() -> dict[str, Any]:
    """What a worker announces in ``hello`` and a controller verifies."""
    import numpy

    return {
        "code": code_fingerprint(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "protocol": REMOTE_PROTOCOL_VERSION,
    }


def fingerprint_mismatch(
    expected: Mapping[str, Any], actual: Mapping[str, Any]
) -> str | None:
    """First differing handshake field, or ``None`` when compatible."""
    for key in ("protocol", "code", "python", "numpy"):
        if expected.get(key) != actual.get(key):
            return f"{key}: controller has {expected.get(key)!r}, host has {actual.get(key)!r}"
    return None


# ---------------------------------------------------------------------------
# host registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HostSpec:
    """One entry of the host registry (``hosts.json``)."""

    name: str
    #: Launch command template; ``{python}`` expands to the controller's
    #: interpreter.  The command must start a
    #: :mod:`repro.workloads.remote_worker` speaking the wire protocol
    #: on its stdio — everything in front of it is the transport.
    command: str = DEFAULT_WORKER_COMMAND
    #: Concurrent worker processes launched on this host.
    slots: int = 1
    #: Optional pinned ``code`` fingerprint; when set, the host must
    #: announce exactly this value (instead of matching the controller).
    fingerprint: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("host name must be non-empty")
        if self.slots < 1:
            raise ValueError(f"host {self.name!r}: slots must be >= 1, got {self.slots}")
        if not self.command.strip():
            raise ValueError(f"host {self.name!r}: empty launch command")

    def argv(self) -> list[str]:
        """The resolved launch argv for this host's workers."""
        return shlex.split(self.command.format(python=sys.executable))


def load_hosts(path: str | os.PathLike[str]) -> tuple[HostSpec, ...]:
    """Parse a ``hosts.json`` registry into :class:`HostSpec` entries.

    Accepts either a bare JSON list of host objects or an object with a
    ``"hosts"`` list.  Unknown keys are rejected — a typoed ``slots``
    must not silently launch one worker.
    """
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, dict):
        data = data.get("hosts")
    if not isinstance(data, list) or not data:
        raise ValueError(f"{path}: expected a non-empty list of hosts")
    allowed = {"name", "command", "slots", "fingerprint"}
    specs = []
    for entry in data:
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: host entries must be objects, got {entry!r}")
        unknown = set(entry) - allowed
        if unknown:
            raise ValueError(f"{path}: unknown host keys {sorted(unknown)}")
        if "name" not in entry:
            raise ValueError(f"{path}: every host needs a name")
        specs.append(HostSpec(**entry))
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"{path}: duplicate host names in registry")
    return tuple(specs)


def resolve_hosts(
    hosts: str | os.PathLike[str] | tuple[HostSpec, ...] | list[HostSpec],
) -> tuple[HostSpec, ...]:
    """Normalise a policy's ``hosts`` field into :class:`HostSpec` entries."""
    if isinstance(hosts, (str, os.PathLike)):
        return load_hosts(hosts)
    specs = tuple(hosts)
    if not specs:
        raise ValueError("hosts must name at least one host")
    return specs


# ---------------------------------------------------------------------------
# inbound link: CRC + sequence dedup + injected network faults
# ---------------------------------------------------------------------------


class HostLink:
    """Inbound message path of one worker channel: a pure state machine.

    Owns the per-channel delivery guarantees — CRC verification,
    sequence-number dedup of duplicate delivery — and, under test, the
    injected network faults of a :class:`~repro.testing.chaos.HostChaosPlan`
    (drop, duplicate, partition/heal).  Every method takes ``now``
    explicitly and nothing here touches sockets or clocks, so any
    interleaving of partition -> expiry -> re-dispatch -> heal ->
    duplicate delivery is directly property-testable.

    Message indexes for fault targeting are 0-based and count
    post-handshake inbound messages on *this* channel.
    """

    def __init__(
        self,
        host: str,
        chaos: "HostChaosPlan | None" = None,
        *,
        exempt: bool = False,
    ) -> None:
        self.host = host
        self.chaos = None if exempt else chaos
        self.seen: set[int] = set()
        self.msg_index = 0
        self.held: list[dict[str, Any]] = []
        self.first_held_at: float | None = None
        self.healed = False
        self.dropped = 0
        self.duplicates_dropped = 0

    @property
    def partitioned(self) -> bool:
        """Messages are currently being held by an injected partition."""
        return self.first_held_at is not None

    def receive(self, raw: bytes | str, now: float) -> list[dict[str, Any]]:
        """Decode one inbound line; return the messages deliverable *now*.

        Raises :class:`RemoteProtocolError` on garbage/CRC failure.  May
        return zero messages (dropped, partition-held, duplicate seq) or
        more than one (a heal flushing backlog, an injected duplicate).
        """
        message = decode_message(raw)
        index = self.msg_index
        self.msg_index += 1
        copies = 1
        if self.chaos is not None:
            if self.chaos.dropped(self.host, index):
                self.dropped += 1
                return []
            if self.chaos.duplicated(self.host, index):
                copies = 2
            part = self.chaos.partition_for(self.host)
            if part is not None and not self.healed and index >= part[0]:
                if self.first_held_at is None:
                    self.first_held_at = now
                self.held.extend([message] * copies)
                return self.flush(now)
        return self._dedup([message] * copies)

    def flush(self, now: float) -> list[dict[str, Any]]:
        """Deliver the held backlog if the partition has healed by *now*."""
        if self.first_held_at is None or self.chaos is None:
            return []
        part = self.chaos.partition_for(self.host)
        if part is None or now - self.first_held_at < part[1]:
            return []
        backlog, self.held = self.held, []
        self.first_held_at = None
        self.healed = True
        return self._dedup(backlog)

    def _dedup(self, messages: list[dict[str, Any]]) -> list[dict[str, Any]]:
        out = []
        for message in messages:
            seq = message["seq"]
            if seq in self.seen:
                self.duplicates_dropped += 1
                continue
            self.seen.add(seq)
            out.append(message)
        return out


# ---------------------------------------------------------------------------
# controller-side channel / host state
# ---------------------------------------------------------------------------


@dataclass
class _Host:
    """Runtime state of one registry host (the failure domain)."""

    spec: HostSpec
    failures: int = 0
    history: tuple[str, ...] = ()
    quarantined: bool = False
    leases_granted: int = 0
    cells_done: int = 0
    #: the synthesized local-fallback host is exempt from network chaos.
    chaos_exempt: bool = False


@dataclass
class _Channel:
    """One worker process on one host slot, across process generations."""

    worker_id: int
    host: _Host
    slot: int
    process: subprocess.Popen | None = None
    link: HostLink | None = None
    generation: int = 0
    #: ``hello`` (awaiting handshake) or ``active``.
    state: str = "hello"
    hello_deadline: float = 0.0
    idle: bool = False
    out_seq: int = 0
    history: tuple[str, ...] = field(default=())

    @property
    def live(self) -> bool:
        return self.process is not None and not self.host.quarantined

    def send(self, op: str, **fields: Any) -> None:
        """Write one framed message to the worker (best-effort; EOF is
        detected on the inbound path)."""
        if self.process is None or self.process.stdin is None:
            return
        self.out_seq += 1
        try:
            self.process.stdin.write(encode_message(op, self.out_seq, **fields))
            self.process.stdin.flush()
        except (BrokenPipeError, OSError, ValueError):
            pass


def _reader(
    process: subprocess.Popen,
    worker_id: int,
    generation: int,
    inbox: "queue_mod.Queue[tuple[int, int, bytes | None]]",
) -> None:
    """Per-channel reader thread: stdout lines -> inbox, then EOF marker."""
    try:
        assert process.stdout is not None
        for line in process.stdout:
            inbox.put((worker_id, generation, line))
    except (OSError, ValueError):  # pragma: no cover - teardown races
        pass
    finally:
        inbox.put((worker_id, generation, None))


def _kill_process(process: subprocess.Popen | None) -> None:
    if process is None:
        return
    for stream in (process.stdin, process.stdout):
        try:
            if stream is not None:
                stream.close()
        except (OSError, ValueError):  # pragma: no cover
            pass
    if process.poll() is None:
        process.terminate()
        try:
            process.wait(_KILL_GRACE)
        except subprocess.TimeoutExpired:  # pragma: no cover - stubborn worker
            process.kill()
            process.wait()


# ---------------------------------------------------------------------------
# the remote scheduler
# ---------------------------------------------------------------------------


def _execute_remote(
    spec: SweepSpec,
    algorithm_kwargs: dict[str, dict[str, Any]] | None = None,
    *,
    hosts: str | os.PathLike[str] | tuple[HostSpec, ...] | list[HostSpec],
    max_workers: int | None = None,
    timeout: float | None = None,
    max_retries: int = 2,
    journal_path: str | os.PathLike[str] | None = None,
    resume: bool = False,
    chaos: "ChaosPlan | None" = None,
    host_chaos: "HostChaosPlan | None" = None,
    interrupt_after: int | None = None,
    cache: BracketCache | None = None,
    cells: list[tuple[float, int, int]] | None = None,
    shard: tuple[int, int] | None = None,
    salvage: bool = False,
    backend: str = "scalar",
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    lease_timeout: float | None = None,
    speculate: bool = True,
    host_max_failures: int = 2,
    handshake_timeout: float = 30.0,
    local_fallback: bool = True,
) -> ResilientSweepResult:
    """Remote pull-scheduler behind ``ExecutionPolicy(hosts=...)``.

    Mirrors :func:`repro.workloads.elastic._execute_elastic` — same
    journal preparation, seed-collision checks, row validation, result
    assembly — but serves the :class:`CellQueue` to worker processes on
    registry hosts over the wire protocol.  The failure-domain ladder:

    * **cell faults** (``nack``, corrupt rows, hard timeout) charge the
      cell's retry budget, exactly like every other scheduler;
    * **lease expiry** (missed heartbeats) re-queues the cell
      charge-free and charges *nothing* else — the host may merely be
      partitioned, and killing it would forfeit the stale-result
      determinism check when the partition heals;
    * **host faults** (channel EOF, handshake timeout, protocol
      garbage) charge the *host*; past ``host_max_failures`` the host is
      quarantined whole — every channel killed, every lease requeued
      charge-free — and recorded as a
      :class:`~repro.workloads.resilient.HostFailure`;
    * a **fingerprint mismatch** quarantines immediately (retrying
      cannot fix divergent code);
    * with every host quarantined, ``local_fallback`` spawns
      chaos-exempt workers on the controller's own machine through the
      same protocol and sets ``manifest.degraded_to_local``; without a
      fallback the remaining cells quarantine with kind ``"host"``.
    """
    algorithm_kwargs = algorithm_kwargs or {}
    validate_sweep_pickles(spec, algorithm_kwargs)
    if lease_timeout is None:
        lease_timeout = LEASE_TIMEOUT_BEATS * heartbeat_interval
    host_specs = resolve_hosts(hosts)

    cells = list(spec.cells()) if cells is None else list(cells)
    check_seed_collisions(spec, cells)
    manifest = FailureManifest(cells_total=len(cells))
    journal, completed = prepare_journal(
        spec, cells, journal_path, resume=resume, shard=shard, salvage=salvage
    )
    manifest.cells_replayed = len(completed)

    todo = [cell for cell in cells if spec.cell_seed(*cell) not in completed]
    queue = CellQueue(
        [(eps, m, rep, spec.cell_seed(eps, m, rep)) for eps, m, rep in todo],
        retries=max_retries,
        lease_timeout=lease_timeout,
        timeout=timeout,
        speculate=speculate,
    )
    cell_by_seed = {spec.cell_seed(eps, m, rep): (eps, m, rep) for eps, m, rep in cells}

    local_fp = env_fingerprint()
    init_payload = base64.b64encode(
        pickle.dumps((spec, algorithm_kwargs, backend, chaos))
    ).decode("ascii")
    worker_env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parent.parent.parent)
    worker_env["PYTHONPATH"] = (
        src_root + os.pathsep + worker_env["PYTHONPATH"]
        if worker_env.get("PYTHONPATH")
        else src_root
    )

    inbox: "queue_mod.Queue[tuple[int, int, bytes | None]]" = queue_mod.Queue()
    hosts_state = [_Host(spec=hs) for hs in host_specs]
    channels: dict[int, _Channel] = {}
    next_worker_id = 0
    new_cells = 0
    heartbeats_total = 0
    fallback_started = False
    started = time.monotonic()

    def spawn_channel(chan: _Channel) -> None:
        chan.generation += 1
        chan.state = "hello"
        chan.idle = False
        chan.out_seq = 0
        chan.link = HostLink(
            chan.host.spec.name, host_chaos, exempt=chan.host.chaos_exempt
        )
        chan.hello_deadline = time.monotonic() + handshake_timeout
        try:
            chan.process = subprocess.Popen(
                chan.host.spec.argv(),
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                env=worker_env,
            )
        except OSError as exc:
            chan.process = None
            inbox.put((chan.worker_id, chan.generation, None))
            chan.history = chan.history + (f"launch failed: {exc}",)
            return
        threading.Thread(
            target=_reader,
            args=(chan.process, chan.worker_id, chan.generation, inbox),
            daemon=True,
        ).start()

    def add_host(host: _Host) -> None:
        nonlocal next_worker_id
        for slot in range(host.spec.slots):
            chan = _Channel(worker_id=next_worker_id, host=host, slot=slot)
            next_worker_id += 1
            channels[chan.worker_id] = chan
            spawn_channel(chan)

    def live_hosts() -> list[_Host]:
        return [host for host in hosts_state if not host.quarantined]

    def release_channel(chan: _Channel, detail: str) -> None:
        """Revoke the channel's lease charge-free (the cell is innocent)."""
        queue.release(chan.worker_id, detail, charge_cell=False)

    def quarantine_host(host: _Host, detail: str) -> None:
        """Remove a whole host from the pool; its leases requeue charge-free."""
        nonlocal fallback_started
        if host.quarantined:
            return
        host.quarantined = True
        host.history = host.history + (detail,)
        for chan in list(channels.values()):
            if chan.host is host:
                release_channel(chan, detail)
                _kill_process(chan.process)
                chan.process = None
                del channels[chan.worker_id]
        manifest.host_failures.append(
            HostFailure(
                host=host.spec.name,
                failures=host.failures,
                detail=detail,
                history=host.history,
            )
        )
        if live_hosts() or queue.done:
            return
        if local_fallback and not fallback_started:
            fallback_started = True
            manifest.degraded_to_local = True
            slots = max_workers or min(2, os.cpu_count() or 2)
            fallback = _Host(
                spec=HostSpec(name=LOCAL_FALLBACK_HOST, slots=slots),
                chaos_exempt=True,
            )
            hosts_state.append(fallback)
            add_host(fallback)
        else:
            abort_remaining("host: every host quarantined, no fallback left")

    def host_fault(host: _Host, chan: _Channel, detail: str) -> None:
        """Charge the host; respawn the channel or quarantine the domain."""
        host.failures += 1
        host.history = host.history + (detail,)
        release_channel(chan, detail)
        _kill_process(chan.process)
        chan.process = None
        if host.failures > host_max_failures:
            quarantine_host(host, detail)
        else:
            spawn_channel(chan)

    def abort_remaining(detail: str) -> None:
        """Quarantine everything still unfinished as a host-domain loss."""
        for worker_id in list(queue.leases):
            queue.release(worker_id, detail, charge_cell=False)
        while queue.pending:
            task = queue.pending.popleft()
            if task.seed not in queue.remaining:
                continue
            queue.remaining.discard(task.seed)
            failure = CellFailure(
                epsilon=task.eps,
                machines=task.m,
                repetition=task.rep,
                seed=task.seed,
                attempts=max(task.attempt - 1, 0),
                kind="host",
                detail=detail,
                history=task.history + (detail,),
            )
            manifest.failures.append(failure)
            if journal is not None:
                journal.record_failure(failure.as_dict())

    def cell_fault(chan: _Channel, detail: str) -> None:
        """Charge the cell's retry budget (nack / corrupt / hard timeout)."""
        pending_before = len(queue.pending)
        failures_before = len(queue.failures)
        queue.release(chan.worker_id, detail, charge_cell=True)
        if len(queue.pending) > pending_before:
            manifest.retries += 1
        for failure in queue.failures[failures_before:]:
            manifest.failures.append(failure)
            if journal is not None:
                journal.record_failure(failure.as_dict())

    def record_win(chan: _Channel, lease: Lease, rows) -> None:
        nonlocal new_cells
        manifest.cells_completed += 1
        if lease.attempt > 1 or lease.history:
            manifest.recovered += 1
        completed[lease.seed] = rows
        chan.host.cells_done += 1
        if journal is not None:
            journal.record_cell(
                lease.seed,
                lease.eps,
                lease.m,
                lease.rep,
                rows,
                provenance={
                    "host": chan.host.spec.name,
                    "slot": chan.slot,
                    "worker": lease.worker,
                    "attempt": lease.attempt,
                    "heartbeats": lease.heartbeats,
                    "lease_ms": round((time.monotonic() - lease.granted_at) * 1e3, 3),
                    "speculative": lease.speculative,
                    "transport": "remote",
                },
            )
        new_cells += 1
        if (
            interrupt_after is not None
            and new_cells >= interrupt_after
            and not queue.done
        ):
            raise KeyboardInterrupt  # simulated hard kill, same path as SIGINT

    def handle_message(chan: _Channel, message: dict[str, Any]) -> None:
        nonlocal heartbeats_total
        op = message["op"]
        if op == "ready":
            chan.idle = True
        elif op == "heartbeat":
            heartbeats_total += 1
            queue.heartbeat(chan.worker_id, time.monotonic())
        elif op == "result":
            try:
                rows = [row_from_payload(p) for p in message["rows"]]
            except Exception as exc:  # noqa: BLE001 - wire payloads are hostile
                cell_fault(chan, f"corrupt: undecodable result rows ({exc})")
                return
            seed = message.get("seed")
            cell = cell_by_seed.get(seed)
            problem = (
                "unknown cell seed"
                if cell is None
                else validate_cell_rows(spec, *cell, rows)
            )
            if problem is not None:
                lease = queue.leases.get(chan.worker_id)
                if lease is not None and lease.seed == seed:
                    cell_fault(chan, f"corrupt: {problem}")
                return  # corrupt stale/duplicate copies just drop
            outcome, lease = queue.complete(chan.worker_id, seed, rows)
            if outcome == "win":
                record_win(chan, lease, rows)
        elif op == "nack":
            lease = queue.leases.get(chan.worker_id)
            if lease is not None and lease.seed == message.get("seed"):
                cell_fault(chan, f"error: {message.get('detail', 'worker nack')}")
        # hello out of band, anything else ignored (future-proofing)

    def handle_hello(chan: _Channel, raw: bytes) -> None:
        try:
            message = decode_message(raw)
        except RemoteProtocolError as exc:
            host_fault(chan.host, chan, f"protocol: {exc}")
            return
        if message["op"] != "hello":
            host_fault(
                chan.host, chan, f"protocol: expected hello, got {message['op']!r}"
            )
            return
        expected = dict(local_fp)
        if chan.host.spec.fingerprint is not None:
            expected["code"] = chan.host.spec.fingerprint
        mismatch = fingerprint_mismatch(expected, message.get("fingerprint") or {})
        if mismatch is not None:
            chan.send("reject", detail=mismatch)
            chan.host.failures += 1
            quarantine_host(chan.host, f"handshake: fingerprint mismatch ({mismatch})")
            return
        chan.state = "active"
        chan.send(
            "init",
            payload=init_payload,
            host=chan.host.spec.name,
            slot=chan.slot,
            heartbeat_interval=heartbeat_interval,
            slow=(
                0.0
                if host_chaos is None or chan.host.chaos_exempt
                else host_chaos.slow_for(chan.host.spec.name)
            ),
        )

    def journal_stats(interrupted: bool) -> None:
        if journal is None:
            return
        journal.record_stats(
            {
                "wall_seconds": round(time.monotonic() - started, 6),
                "interrupted": interrupted,
                "scheduler": "elastic-remote",
                "hosts": [
                    {
                        "name": host.spec.name,
                        "slots": host.spec.slots,
                        "leases": host.leases_granted,
                        "cells": host.cells_done,
                        "failures": host.failures,
                        "quarantined": host.quarantined,
                    }
                    for host in hosts_state
                ],
                "leases": queue.granted,
                "heartbeats": heartbeats_total,
                "speculated": queue.speculated,
                "cells_completed": manifest.cells_completed,
                "cells_replayed": manifest.cells_replayed,
                "recovered": manifest.recovered,
                "retries": manifest.retries,
                "quarantined": manifest.quarantined,
                "hosts_quarantined": manifest.hosts_quarantined,
                "degraded_to_local": manifest.degraded_to_local,
                "cache": None,
            }
        )

    def kill_all() -> None:
        for chan in channels.values():
            _kill_process(chan.process)
            chan.process = None

    for host in hosts_state:
        add_host(host)

    try:
        while not queue.done:
            now = time.monotonic()
            progressed = False

            # Drain the inbox (reader threads push lines + EOF markers).
            while True:
                try:
                    worker_id, generation, raw = inbox.get_nowait()
                except queue_mod.Empty:
                    break
                chan = channels.get(worker_id)
                if chan is None or generation != chan.generation:
                    continue  # stale line from a killed process generation
                progressed = True
                if raw is None:
                    # Channel EOF: the worker process died — a host fault.
                    detail = (
                        "handshake: worker exited before hello"
                        if chan.state == "hello"
                        else "crash: worker channel closed (host died?)"
                    )
                    host_fault(chan.host, chan, detail)
                    continue
                if chan.state == "hello":
                    handle_hello(chan, raw)
                    continue
                try:
                    messages = chan.link.receive(raw, now)
                except RemoteProtocolError as exc:
                    host_fault(chan.host, chan, f"protocol: {exc}")
                    continue
                for message in messages:
                    handle_message(chan, message)

            now = time.monotonic()
            for chan in list(channels.values()):
                if not chan.live:
                    continue
                # Healed partitions deliver their backlog late.
                if chan.state == "active" and chan.link is not None:
                    for message in chan.link.flush(now):
                        progressed = True
                        handle_message(chan, message)
                # Handshake deadline: a host that cannot say hello in time.
                if chan.state == "hello" and now >= chan.hello_deadline:
                    host_fault(chan.host, chan, "handshake: timed out")
                    progressed = True
                    continue
                # Grant work to idle channels.
                if (
                    chan.state == "active"
                    and chan.idle
                    and chan.worker_id not in queue.leases
                ):
                    lease = queue.next_lease(chan.worker_id, time.monotonic())
                    if lease is not None:
                        chan.idle = False
                        chan.host.leases_granted += 1
                        die = (
                            host_chaos is not None
                            and not chan.host.chaos_exempt
                            and host_chaos.dies_on_lease(
                                chan.host.spec.name, chan.host.leases_granted
                            )
                        )
                        chan.send(
                            "lease",
                            eps=lease.eps,
                            m=lease.m,
                            rep=lease.rep,
                            seed=lease.seed,
                            attempt=lease.attempt,
                            die=bool(die),
                        )
                        progressed = True

            now = time.monotonic()
            # Hard per-cell timeout: the cell is charged; the worker is
            # torn down and the channel relaunched (same as local elastic).
            for lease in queue.overdue(now):
                chan = channels.get(lease.worker)
                if chan is None:
                    continue
                cell_fault(
                    chan, "timeout: cell exceeded its timeout; worker terminated"
                )
                _kill_process(chan.process)
                chan.process = None
                spawn_channel(chan)
                progressed = True
            # Soft lease expiry: missed heartbeats.  The cell requeues
            # charge-free and the host is NOT charged — a partitioned
            # host is indistinguishable from a dead one from here, and
            # the channel is left running so a healed partition can
            # still deliver its stale result (first-verified-wins).
            for lease in queue.expired(now):
                if lease.worker not in queue.leases:
                    continue  # already handled above this tick
                chan = channels.get(lease.worker)
                detail = "expired: lease deadline passed without a heartbeat"
                if chan is None:
                    queue.release(lease.worker, detail, charge_cell=False)
                else:
                    release_channel(chan, detail)
                progressed = True

            if not progressed:
                time.sleep(_POLL_INTERVAL)

        # Drained: stop idle workers gracefully, cut stragglers loose.
        for chan in channels.values():
            if chan.process is not None and chan.idle:
                chan.send("stop")
        deadline = time.monotonic() + 1.0
        for chan in channels.values():
            if chan.process is not None and chan.idle:
                try:
                    chan.process.wait(max(0.0, deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    pass
        kill_all()

        manifest.cells_completed = len(completed) - manifest.cells_replayed
        manifest.speculated = queue.speculated
        journal_stats(interrupted=False)
        if journal is not None:
            journal.record_seal()
    except KeyboardInterrupt:
        kill_all()
        manifest.speculated = queue.speculated
        journal_stats(interrupted=True)
        partial = _assemble(spec, cells, completed, manifest, journal, None)
        raise SweepInterrupted(partial) from None
    except BaseException:
        kill_all()
        raise
    finally:
        if journal is not None:
            journal.close()

    return _assemble(spec, cells, completed, manifest, journal, None)


__all__ = [
    "DEFAULT_WORKER_COMMAND",
    "HostLink",
    "HostSpec",
    "LOCAL_FALLBACK_HOST",
    "REMOTE_OPS",
    "REMOTE_PROTOCOL_VERSION",
    "RemoteProtocolError",
    "code_fingerprint",
    "decode_message",
    "encode_message",
    "env_fingerprint",
    "fingerprint_mismatch",
    "load_hosts",
    "message_crc",
    "resolve_hosts",
]
