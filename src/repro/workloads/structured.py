"""Deterministic structured instance families.

These exercise specific regimes of the algorithms:

* :func:`burst_instance` — batches of simultaneous releases (the adversary
  releases everything at one instant; bursts are the benign cousin);
* :func:`staircase_instance` — geometrically growing jobs mirroring the
  :math:`f_q` ladder of the lower bound;
* :func:`alternating_instance` — long/short alternation, the classic trap
  for greedy admission (a long accepted job blocks many short ones);
* :func:`overload_instance` — far more offered work than capacity;
* :func:`adversarial_like_instance` — a *static* (non-adaptive) replay of
  the three-phase construction's job sequence, usable with any algorithm
  and the offline solvers.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import threshold_parameters
from repro.model.instance import Instance
from repro.model.job import Job, tight_deadline
from repro.utils.rng import rng_from_any


def burst_instance(
    bursts: int,
    jobs_per_burst: int,
    machines: int,
    epsilon: float,
    burst_gap: float = 5.0,
    p_range: tuple[float, float] = (0.5, 2.0),
    seed: int | np.random.Generator | None = None,
) -> Instance:
    """Batches of simultaneously released tight-slack jobs."""
    rng = rng_from_any(seed)
    jobs: list[Job] = []
    for b in range(bursts):
        r = b * burst_gap
        for _ in range(jobs_per_burst):
            p = float(rng.uniform(*p_range))
            jobs.append(Job(r, p, tight_deadline(r, p, epsilon)).with_tags(burst=b))
    return Instance(jobs, machines=machines, epsilon=epsilon, name="burst")


def staircase_instance(
    machines: int,
    epsilon: float,
    steps: int | None = None,
    copies_per_step: int | None = None,
) -> Instance:
    """Geometric job ladder mirroring the lower bound's ``f_q`` growth.

    Step ``q`` releases ``copies_per_step`` jobs of processing time
    :math:`f_q - 1` (using the paper's parameters for the given slack) at
    time 0, all with tight slack.  The resulting size spread is exactly
    the spread the threshold algorithm is tuned for.
    """
    params = threshold_parameters(epsilon, machines)
    if steps is None:
        steps = len(params.f)
    if copies_per_step is None:
        copies_per_step = machines
    jobs: list[Job] = []
    for q in range(min(steps, len(params.f))):
        p = max(float(params.f[q] - 1.0), 1e-3)
        for _ in range(copies_per_step):
            jobs.append(Job(0.0, p, tight_deadline(0.0, p, epsilon)).with_tags(step=q))
    return Instance(jobs, machines=machines, epsilon=epsilon, name="staircase")


def alternating_instance(
    pairs: int,
    machines: int,
    epsilon: float,
    delta: float = 0.01,
) -> Instance:
    """Bait-and-whale rounds: greedy's classic failure mode.

    Each round releases ``m`` unit *bait* jobs with tight slack, then —
    ``delta`` later — ``m`` *whale* jobs of size
    :math:`W = (1 - 2\\delta)/\\varepsilon` with tight slack.  A whale's
    latest start (:math:`t + \\delta + \\varepsilon W < t + 1`) precedes
    every bait's completion, so a machine that took a bait loses its whale.
    Greedy grabs all baits; the threshold algorithm stops accepting baits
    once its admission threshold rises, keeping machines free for whales
    (benchmark E9 quantifies the gap).  Rounds are spaced so they do not
    interact.
    """
    if not 0 < delta < 0.25:
        raise ValueError(f"delta must lie in (0, 0.25), got {delta}")
    eps = min(epsilon, 1.0)
    whale_p = (1.0 - 2.0 * delta) / eps
    jobs: list[Job] = []
    t = 0.0
    for _ in range(pairs):
        for _ in range(machines):
            jobs.append(Job(t, 1.0, tight_deadline(t, 1.0, eps)).with_tags(kind="bait"))
        t_whale = t + delta
        for _ in range(machines):
            jobs.append(
                Job(t_whale, whale_p, tight_deadline(t_whale, whale_p, eps)).with_tags(
                    kind="whale"
                )
            )
        t = t_whale + (1.0 + eps) * whale_p + 1.0
    return Instance(jobs, machines=machines, epsilon=epsilon, name="bait-and-whale")


def overload_instance(
    n: int,
    machines: int,
    epsilon: float,
    overload_factor: float = 5.0,
    seed: int | np.random.Generator | None = None,
) -> Instance:
    """Offered load ``overload_factor`` times the available capacity."""
    rng = rng_from_any(seed)
    horizon = 10.0
    p_mean = overload_factor * machines * horizon / n
    releases = np.sort(rng.uniform(0.0, horizon, size=n))
    processings = np.maximum(rng.exponential(p_mean, size=n), 1e-6)
    jobs = [
        Job(float(r), float(p), tight_deadline(float(r), float(p), epsilon))
        for r, p in zip(releases, processings)
    ]
    return Instance(jobs, machines=machines, epsilon=epsilon, name="overload")


def adversarial_like_instance(
    machines: int,
    epsilon: float,
    t: float = 1.0,
    beta: float = 1e-3,
) -> Instance:
    """Static replay of the three-phase adversary's *full* job sequence.

    Non-adaptive: phase 1's unit job, ``2m`` phase-2 jobs per subphase at
    the Lemma-1 midpoints of a nested interval (as if no job were ever
    accepted), and ``m`` phase-3 jobs per subphase ``k..m``.  Useful as a
    hard fixed benchmark instance where the offline optimum is large but
    online algorithms must commit blind.
    """
    params = threshold_parameters(epsilon, machines)
    jobs: list[Job] = [Job(0.0, 1.0, 8.0 + 4.0 / epsilon).with_tags(adversary_phase=1)]
    lo, hi = t + 1.0 - beta, t + 1.0
    p2 = 0.0
    for sub in range(1, machines + 1):
        p2 = 0.5 * (lo + hi) - t
        for _ in range(2 * machines):
            jobs.append(
                Job(t, p2, t + 2.0 * p2).with_tags(adversary_phase=2, subphase=sub)
            )
        hi = t + p2  # nest as if the job ran at the interval's lower half
    for rank in range(params.k, machines + 1):
        p3 = (params.factor_for_rank(rank) - 1.0) * p2
        for _ in range(machines):
            jobs.append(
                Job(t, p3, t + p2 + p3).with_tags(adversary_phase=3, subphase=rank)
            )
    return Instance(jobs, machines=machines, epsilon=epsilon, name="adversarial-like")
