"""Sharded multi-host sweep execution: partition, run, merge.

A publication-quality ``c(ε, m)`` landscape needs dense grids with many
repetitions — multi-hour work on one machine.  The checkpoint journal is
already the coordination substrate, so horizontal scaling needs exactly
three pieces, all here:

* :class:`ShardPlan` — a **deterministic partition** of a
  :class:`~repro.workloads.sweep.SweepSpec`'s cell set into ``n``
  disjoint shards, balanced by expected cell cost (machine count weights;
  repetitions enter as separate cells) via longest-processing-time-first
  greedy assignment.  The plan is a pure function of the spec's
  structural fingerprint: every host computes the identical partition
  from the spec alone, with no coordination traffic.
* **Per-shard execution** — each host runs
  ``execute_sweep(spec, ExecutionPolicy(shards=n, shard_index=i,
  journal=...))`` (``repro sweep --shards n --shard-index i``), which
  restricts the fault-tolerant scheduler to the shard's cells and writes
  a journal whose header is stamped ``(spec_fingerprint, shard_index,
  n_shards)``.  Cell seeds are shard-independent, so a sharded cell is
  bit-identical to the same cell in a single-host run.
* :func:`merge_journals` — validates that every journal carries the same
  spec fingerprint, detects overlapping and missing cells, deduplicates
  re-executed cells by their deterministic cell seed, and emits a single
  merged journal (itself resumable: ``repro sweep --resume merged.jsonl``
  fills any holes) plus a combined
  :class:`~repro.workloads.resilient.FailureManifest` and merged
  bracket-cache counters.  Coverage is checked against the grid encoded
  in the fingerprint itself — no spec object or workload factory needed
  at merge time.

The same pattern (deterministic partitioner → independent workers →
merge step) drives network-simulation sweeps in PSim; here the journal's
fingerprint/stamp discipline additionally makes every mis-pairing of
shard outputs a loud, early error instead of a silently wrong plot.
"""

from __future__ import annotations

import heapq
import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.offline.cache import CacheStats
from repro.workloads.journal import (
    INTEGRITY_UNKNOWN,
    INTEGRITY_VERIFIED,
    JOURNAL_VERSION,
    CorruptionReport,
    JournalError,
    JournalIntegrityError,
    JournalMismatchError,
    JournalState,
    _write_sealed_lines,
    load_journal,
    row_crc,
    row_to_payload,
    spec_fingerprint,
)
from repro.workloads.resilient import CellFailure, FailureManifest
from repro.workloads.sweep import SweepRow, cell_seed_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.sweep import SweepSpec

#: A grid cell: (epsilon, machines, repetition).
Cell = tuple[float, int, int]


def cell_cost(eps: float, m: int, rep: int) -> float:
    """Expected relative cost of one cell.

    The offline OPT bracket dominates cell cost and scales with the
    machine count (the exact solver's branching factor is ``m`` per job),
    so machine count is the balance weight; repetitions appear as
    separate cells and therefore weight a configuration linearly.
    """
    return float(m)


def fingerprint_cells(fingerprint: dict[str, Any]) -> list[Cell]:
    """The full cell grid encoded in a journal header fingerprint.

    Enables coverage checks at merge time from journals alone: the
    fingerprint carries epsilons, machine counts and repetitions, and
    :func:`repro.workloads.sweep.cell_seed_for` needs nothing else.
    """
    return [
        (float(eps), int(m), rep)
        for eps in fingerprint["epsilons"]
        for m in fingerprint["machine_counts"]
        for rep in range(int(fingerprint["repetitions"]))
    ]


def fingerprint_cell_seed(fingerprint: dict[str, Any], cell: Cell) -> int:
    """Deterministic seed of *cell* under a journal header fingerprint."""
    eps, m, rep = cell
    return cell_seed_for(int(fingerprint["base_seed"]), eps, m, rep)


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic, cost-balanced partition of a sweep grid.

    Built by :meth:`build`; stable under the spec fingerprint — two hosts
    holding specs with equal fingerprints compute byte-identical plans,
    which is what makes coordination-free multi-host execution safe.
    Within each shard, cells keep canonical grid order, so a shard run
    enumerates (and journals) them exactly as a single-host run would.
    """

    n_shards: int
    fingerprint: dict[str, Any]
    #: shard index -> its cells, canonical grid order within each shard.
    shards: tuple[tuple[Cell, ...], ...]

    @classmethod
    def build(cls, spec: "SweepSpec", n_shards: int) -> "ShardPlan":
        """Partition *spec*'s grid into *n_shards* disjoint shards.

        Longest-processing-time-first greedy: cells are taken in
        decreasing :func:`cell_cost` order (canonical grid order breaks
        ties) and each lands on the currently lightest shard (lowest
        index breaks ties).  Deterministic by construction — no RNG, no
        wall clock, no host state.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        cells = list(spec.cells())
        order = sorted(range(len(cells)), key=lambda i: (-cell_cost(*cells[i]), i))
        loads: list[tuple[float, int]] = [(0.0, k) for k in range(n_shards)]
        heapq.heapify(loads)
        assigned: dict[int, int] = {}
        for i in order:
            load, k = heapq.heappop(loads)
            assigned[i] = k
            heapq.heappush(loads, (load + cell_cost(*cells[i]), k))
        shards = tuple(
            tuple(cells[i] for i in range(len(cells)) if assigned[i] == k)
            for k in range(n_shards)
        )
        return cls(
            n_shards=n_shards, fingerprint=spec_fingerprint(spec), shards=shards
        )

    def cells_for(self, shard_index: int) -> list[Cell]:
        """The cells shard *shard_index* executes (canonical grid order)."""
        if not 0 <= shard_index < self.n_shards:
            raise ValueError(
                f"shard_index {shard_index} out of range [0, {self.n_shards})"
            )
        return list(self.shards[shard_index])

    def shard_of(self, cell: Cell) -> int:
        """Which shard owns *cell*; raises ``KeyError`` for foreign cells."""
        for k, shard in enumerate(self.shards):
            if cell in shard:
                return k
        raise KeyError(f"cell {cell!r} is not in this plan's grid")

    def costs(self) -> tuple[float, ...]:
        """Total expected cost per shard (the balance the builder optimised)."""
        return tuple(
            sum(cell_cost(*cell) for cell in shard) for shard in self.shards
        )

    @property
    def balance_ratio(self) -> float:
        """Max over mean shard cost; 1.0 is a perfectly balanced plan."""
        costs = self.costs()
        mean = sum(costs) / len(costs)
        return float("inf") if mean == 0 else max(costs) / mean


# ---------------------------------------------------------------------------
# journal merge
# ---------------------------------------------------------------------------


@dataclass
class ShardJournalInfo:
    """Per-input accounting for one journal in a merge."""

    path: str
    shard_index: int
    n_shards: int
    cells: int
    failures: int
    truncated_tail: bool
    #: cumulative wall-clock over this journal's run/resume cycles, from
    #: its stats trailers; ``None`` for journals without any.
    wall_seconds: float | None
    #: overall integrity verdict from the loader (``verified`` /
    #: ``unknown`` / ``salvaged``); see :class:`~repro.workloads.journal.JournalState`.
    integrity: str = INTEGRITY_UNKNOWN
    #: True when the journal ended in a verified seal record.
    sealed: bool = False
    #: corrupt records quarantined from this journal during the merge load.
    corrupt_rows: int = 0
    #: scheduler that produced this journal (``static`` / ``elastic``),
    #: from its stats trailers; ``None`` for pre-stamp journals.
    scheduler: str | None = None
    #: worker process count from the stats trailers; ``None`` if unstamped.
    workers: int | None = None
    #: per-worker-slot wall-clock (elastic trailers only) — makes the
    #: straggler ratio reproducible from the journal alone.
    worker_wall_seconds: list[float] | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "shard_index": self.shard_index,
            "n_shards": self.n_shards,
            "cells": self.cells,
            "failures": self.failures,
            "truncated_tail": self.truncated_tail,
            "wall_seconds": self.wall_seconds,
            "integrity": self.integrity,
            "sealed": self.sealed,
            "corrupt_rows": self.corrupt_rows,
            "scheduler": self.scheduler,
            "workers": self.workers,
            "worker_wall_seconds": self.worker_wall_seconds,
        }


@dataclass(frozen=True)
class MergeConflict:
    """Two journals disagreed on one cell and a checksum broke the tie.

    Raised as a hard :class:`JournalError` only when both copies carry the
    *same* integrity level (genuinely diverging runs).  When exactly one
    copy is checksum-verified, the verified copy wins, the other is
    presumed transfer-damaged, and the event is reported here instead of
    being silently deduplicated.
    """

    seed: int
    cell: Cell
    winner: str
    loser: str
    winner_integrity: str
    loser_integrity: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "cell": list(self.cell),
            "winner": self.winner,
            "loser": self.loser,
            "winner_integrity": self.winner_integrity,
            "loser_integrity": self.loser_integrity,
        }


@dataclass
class MergeResult:
    """Outcome of :func:`merge_journals`: one dataset plus its provenance."""

    fingerprint: dict[str, Any]
    #: merged rows in canonical grid order (missing cells simply absent).
    rows: list[SweepRow]
    #: combined manifest over the whole grid (quarantines only count for
    #: cells no shard completed).
    manifest: FailureManifest
    #: bracket-cache counters summed across every journal's stats trailers.
    cache_stats: dict[str, Any] | None
    shards: list[ShardJournalInfo]
    #: expected cells absent from every journal, canonical grid order.
    missing: list[Cell] = field(default_factory=list)
    #: cells present in more than one journal with identical rows (deduped).
    duplicates: int = 0
    #: cross-journal disagreements resolved by checksum (verified copy won).
    conflicts: list[MergeConflict] = field(default_factory=list)
    #: per-journal corruption quarantined during the (salvage-mode) load.
    corruption: list[CorruptionReport] = field(default_factory=list)
    out_path: str | None = None

    @property
    def complete(self) -> bool:
        """True when every grid cell is covered and nothing is quarantined."""
        return not self.missing and not self.manifest.failures

    @property
    def straggler_ratio(self) -> float | None:
        """Max over mean shard wall-clock — how unbalanced the run *was*.

        ``None`` when no input journal carried timing trailers.  A ratio
        near 1.0 means the :class:`ShardPlan` cost model predicted real
        cell cost well; a large ratio names the tuning opportunity.
        """
        walls = [s.wall_seconds for s in self.shards if s.wall_seconds is not None]
        if not walls:
            return None
        mean = sum(walls) / len(walls)
        return None if mean == 0 else max(walls) / mean

    @property
    def worker_straggler_ratio(self) -> float | None:
        """Max over mean per-worker wall-clock, across every stamped slot.

        ``None`` unless at least one journal carries per-worker timing
        (elastic trailers).  Where :attr:`straggler_ratio` measures how
        unbalanced the *shard plan* was, this measures how unevenly the
        *worker pool* finished — an elastic run keeps it near 1.0 even
        with a pathologically slow worker, because leases flow to
        whichever slot is free.
        """
        walls = [
            w
            for s in self.shards
            if s.worker_wall_seconds
            for w in s.worker_wall_seconds
        ]
        if not walls:
            return None
        mean = sum(walls) / len(walls)
        return None if mean == 0 else max(walls) / mean

    def coverage_report(self) -> str:
        """Human-readable merge/coverage summary (the ``repro merge`` output)."""
        expected = self.manifest.cells_total
        lines = [
            f"merged {len(self.shards)} journal(s): "
            f"{self.manifest.cells_completed}/{expected} cells "
            f"({len(self.missing)} missing, {self.duplicates} duplicate, "
            f"{self.manifest.quarantined} quarantined)"
        ]
        for info in self.shards:
            wall = (
                "no timing" if info.wall_seconds is None
                else f"{info.wall_seconds:.2f}s"
            )
            tail = ", truncated tail" if info.truncated_tail else ""
            corrupt = (
                f", {info.corrupt_rows} corrupt record(s) quarantined"
                if info.corrupt_rows
                else ""
            )
            crew = (
                ""
                if info.workers is None
                else f", {info.scheduler or 'static'} x{info.workers} workers"
            )
            lines.append(
                f"  shard {info.shard_index}/{info.n_shards}: {info.path} "
                f"({info.cells} cells, {info.failures} failure(s), {wall}, "
                f"{info.integrity}{tail}{corrupt}{crew})"
            )
        ratio = self.straggler_ratio
        if ratio is not None:
            lines.append(f"  straggler ratio: {ratio:.2f} (max/mean shard wall-clock)")
        worker_ratio = self.worker_straggler_ratio
        if worker_ratio is not None:
            lines.append(
                f"  worker straggler ratio: {worker_ratio:.2f} "
                "(max/mean per-worker wall-clock)"
            )
        for conflict in self.conflicts:
            eps, m, rep = conflict.cell
            lines.append(
                f"  conflict on cell (eps={eps}, m={m}, rep={rep}): kept "
                f"{conflict.winner_integrity} copy from {conflict.winner}, "
                f"dropped {conflict.loser_integrity} copy from {conflict.loser}"
            )
        if self.missing:
            preview = ", ".join(
                f"(eps={eps}, m={m}, rep={rep})" for eps, m, rep in self.missing[:5]
            )
            more = "" if len(self.missing) <= 5 else f", … {len(self.missing) - 5} more"
            lines.append(f"  missing cells: {preview}{more}")
        return "\n".join(lines)


def merge_journals(
    paths: Sequence[str | os.PathLike[str]],
    out: str | os.PathLike[str] | None = None,
    spec: "SweepSpec | None" = None,
    *,
    salvage: bool = True,
    require_verified: bool = False,
) -> MergeResult:
    """Merge shard journals into one dataset (and optionally one journal).

    Validation and semantics:

    * every journal's header fingerprint must match the first's (and
      *spec*'s, when given) — :class:`JournalMismatchError` otherwise;
    * a truncated trailing line (hard-killed shard) is tolerated exactly
      as on resume: the partial record is ignored and its cell counts as
      missing;
    * journals load in **salvage mode** by default: corrupt mid-file
      records (bit-flips, failed transfers) are quarantined into
      :attr:`MergeResult.corruption` and their cells count as missing,
      instead of one damaged shard aborting the whole merge
      (``salvage=False`` restores strict fail-fast loading);
    * cells present in several journals (duplicate shard uploads, or a
      cell re-executed after a merge-and-resume) are **deduplicated by
      cell seed** when their rows are bit-identical; differing rows for
      one seed raise :class:`JournalError` — *unless* exactly one copy is
      checksum-verified, in which case the verified copy wins, the other
      is presumed transfer-damaged, and the event is reported in
      :attr:`MergeResult.conflicts` rather than silently deduplicated;
    * ``require_verified=True`` (``repro merge --verify``) insists every
      input is sealed with all row checksums intact —
      :class:`JournalIntegrityError` names the first journal that is not;
    * coverage is computed against the grid encoded in the fingerprint:
      ``result.missing`` lists expected cells no journal completed;
    * failure records only survive for cells *no* journal completed (a
      cell quarantined on one host but completed by a retry elsewhere is
      recovered, not failed);
    * per-journal stats trailers are summed into per-shard wall-clock
      (:attr:`MergeResult.straggler_ratio`) and merged
      ``cache_stats``.

    With *out*, the merged dataset is written as a normal journal —
    header, checksummed cell records in canonical order, unresolved
    failures, one stats trailer, one covering seal — which loads, resumes
    (to fill missing cells), verifies and re-merges like any other
    journal.  Refuses to overwrite an existing non-empty file, mirroring
    :meth:`SweepJournal.create`.
    """
    if not paths:
        raise ValueError("merge_journals needs at least one journal path")
    states: list[tuple[str, JournalState]] = []
    for path in paths:
        fspath = os.fspath(path)
        state = load_journal(path, salvage=salvage)
        if require_verified:
            problems = []
            if state.corruption:
                problems.append(state.corruption.summary())
            if state.truncated_tail:
                problems.append("truncated trailing record")
            if not state.sealed:
                problems.append("no final seal")
            unchecked = sum(
                1
                for v in state.integrity_by_seed.values()
                if v != INTEGRITY_VERIFIED
            )
            if unchecked:
                problems.append(f"{unchecked} cell(s) without checksums")
            if problems:
                raise JournalIntegrityError(
                    f"{fspath}: merge --verify requires sealed, checksum-"
                    f"verified journals: {'; '.join(problems)} — run "
                    "'repro verify' for details, 'repro collect' to "
                    "re-transfer, or merge without --verify to salvage"
                )
        states.append((fspath, state))

    first_path, first_state = states[0]
    fingerprint = first_state.fingerprint
    if spec is not None and spec_fingerprint(spec) != fingerprint:
        raise JournalMismatchError(
            f"{first_path}: journal fingerprint does not match the given spec"
        )
    for path, state in states[1:]:
        if state.fingerprint != fingerprint:
            diffs = [
                key
                for key in sorted(set(state.fingerprint) | set(fingerprint))
                if state.fingerprint.get(key) != fingerprint.get(key)
            ]
            raise JournalMismatchError(
                f"{path}: journal fingerprint does not match {first_path} "
                f"(mismatched fields: {', '.join(diffs)}) — these journals "
                "belong to different sweeps and must not be merged"
            )

    expected = fingerprint_cells(fingerprint)
    seed_to_cell = {fingerprint_cell_seed(fingerprint, c): c for c in expected}

    completed: dict[int, list[SweepRow]] = {}
    completed_from: dict[int, str] = {}
    completed_integrity: dict[int, str] = {}
    duplicates = 0
    conflicts: list[MergeConflict] = []
    corruption: list[CorruptionReport] = []
    failures_by_seed: dict[int, dict[str, Any]] = {}
    infos: list[ShardJournalInfo] = []
    recovered = 0
    retries = 0
    cache_totals: CacheStats | None = None

    for path, state in states:
        if state.corruption:
            corruption.append(state.corruption)
        for seed, rows in state.completed.items():
            level = state.integrity_by_seed.get(seed, INTEGRITY_UNKNOWN)
            if seed not in seed_to_cell:
                raise JournalError(
                    f"{path}: cell seed {seed} is not in the grid its own "
                    "header describes — the journal is corrupt"
                )
            if seed in completed:
                if completed[seed] == rows:
                    duplicates += 1
                    if level == INTEGRITY_VERIFIED:
                        completed_integrity[seed] = level
                    continue
                held = completed_integrity[seed]
                if held == level:
                    # Same integrity level on both sides: nothing breaks
                    # the tie, so this really is diverging data.
                    eps, m, rep = seed_to_cell[seed]
                    raise JournalError(
                        f"conflicting rows for cell (eps={eps}, m={m}, rep={rep}) "
                        f"between {completed_from[seed]} and {path} — the journals "
                        "were produced by diverging runs and cannot be merged"
                    )
                if level == INTEGRITY_VERIFIED:
                    conflicts.append(
                        MergeConflict(
                            seed=seed,
                            cell=seed_to_cell[seed],
                            winner=path,
                            loser=completed_from[seed],
                            winner_integrity=level,
                            loser_integrity=held,
                        )
                    )
                    completed[seed] = rows
                    completed_from[seed] = path
                    completed_integrity[seed] = level
                else:
                    conflicts.append(
                        MergeConflict(
                            seed=seed,
                            cell=seed_to_cell[seed],
                            winner=completed_from[seed],
                            loser=path,
                            winner_integrity=held,
                            loser_integrity=level,
                        )
                    )
                continue
            completed[seed] = rows
            completed_from[seed] = path
            completed_integrity[seed] = level
        for failure in state.failures:
            seed = int(failure.get("seed", -1))
            failures_by_seed[seed] = failure
        wall: float | None = None
        scheduler: str | None = None
        shard_workers: int | None = None
        worker_walls: list[float] | None = None
        for stats in state.stats:
            wall = (wall or 0.0) + float(stats.get("wall_seconds") or 0.0)
            recovered += int(stats.get("recovered") or 0)
            retries += int(stats.get("retries") or 0)
            if stats.get("scheduler"):
                scheduler = str(stats["scheduler"])
            if stats.get("workers"):
                shard_workers = int(stats["workers"])
            if stats.get("worker_wall_seconds"):
                worker_walls = [float(w) for w in stats["worker_wall_seconds"]]
            if stats.get("cache"):
                if cache_totals is None:
                    cache_totals = CacheStats()
                cache_totals.merge(stats["cache"])
        infos.append(
            ShardJournalInfo(
                path=path,
                shard_index=state.shard[0],
                n_shards=state.shard[1],
                cells=len(state.completed),
                failures=len(state.failures),
                truncated_tail=state.truncated_tail,
                wall_seconds=wall,
                integrity=state.integrity,
                sealed=state.sealed,
                corrupt_rows=len(state.corruption.events) if state.corruption else 0,
                scheduler=scheduler,
                workers=shard_workers,
                worker_wall_seconds=worker_walls,
            )
        )

    missing = [c for c in expected if fingerprint_cell_seed(fingerprint, c) not in completed]
    unresolved = [
        failure
        for seed, failure in failures_by_seed.items()
        if seed not in completed
    ]
    manifest = FailureManifest(
        failures=[
            CellFailure(
                epsilon=float(f.get("epsilon", 0.0)),
                machines=int(f.get("machines", 0)),
                repetition=int(f.get("repetition", 0)),
                seed=int(f.get("seed", -1)),
                attempts=int(f.get("attempts", 0)),
                kind=str(f.get("kind", "unknown")),
                detail=str(f.get("detail", "")),
                history=tuple(f.get("history", ())),
            )
            for f in unresolved
        ],
        recovered=recovered,
        retries=retries,
        cells_total=len(expected),
        cells_completed=len(completed),
    )
    rows: list[SweepRow] = []
    for cell in expected:
        rows.extend(completed.get(fingerprint_cell_seed(fingerprint, cell), []))

    result = MergeResult(
        fingerprint=fingerprint,
        rows=rows,
        manifest=manifest,
        cache_stats=None if cache_totals is None else cache_totals.as_dict(),
        shards=infos,
        missing=missing,
        duplicates=duplicates,
        conflicts=conflicts,
        corruption=corruption,
    )
    if out is not None:
        result.out_path = _write_merged_journal(out, result, completed)
    return result


def _write_merged_journal(
    out: str | os.PathLike[str],
    result: MergeResult,
    completed: dict[int, list[SweepRow]],
) -> str:
    """Serialise a :class:`MergeResult` as a sealed (resumable) journal."""
    if os.path.exists(out) and os.path.getsize(out) > 0:
        raise JournalError(
            f"{os.fspath(out)}: merge output already exists; delete it "
            "explicitly to re-merge"
        )
    records: list[dict[str, Any]] = [
        {
            "kind": "header",
            "version": JOURNAL_VERSION,
            "label": "merged",
            "fingerprint": result.fingerprint,
        }
    ]
    cell_count = 0
    for eps, m, rep in fingerprint_cells(result.fingerprint):
        seed = fingerprint_cell_seed(result.fingerprint, (eps, m, rep))
        if seed not in completed:
            continue
        payloads = [row_to_payload(r) for r in completed[seed]]
        cell_count += 1
        records.append(
            {
                "kind": "cell",
                "seed": int(seed),
                "epsilon": float(eps),
                "machines": int(m),
                "repetition": int(rep),
                "rows": payloads,
                "crc": row_crc(int(seed), payloads),
            }
        )
    for failure in result.manifest.failures:
        records.append({"kind": "failure", "failure": failure.as_dict()})
    walls = [s.wall_seconds for s in result.shards if s.wall_seconds is not None]
    workers = [s.workers for s in result.shards if s.workers is not None]
    worker_walls = [
        w
        for s in result.shards
        if s.worker_wall_seconds
        for w in s.worker_wall_seconds
    ]
    records.append(
        {
            "kind": "stats",
            "wall_seconds": round(sum(walls), 6) if walls else 0.0,
            "interrupted": False,
            "cells_completed": result.manifest.cells_completed,
            "cells_replayed": 0,
            "recovered": result.manifest.recovered,
            "retries": result.manifest.retries,
            "quarantined": result.manifest.quarantined,
            "cache": result.cache_stats,
            "merged_from": len(result.shards),
            # Worker provenance survives the merge so straggler ratios stay
            # reproducible from this journal alone.
            "scheduler": "merged",
            "workers": sum(workers) if workers else None,
            "worker_wall_seconds": worker_walls or None,
        }
    )
    raw_lines = [
        (json.dumps(record, allow_nan=False) + "\n").encode("utf-8")
        for record in records
    ]
    # Seal the merged journal like any clean shard exit would: downstream
    # verification and re-merges treat it exactly like a shard journal.
    _write_sealed_lines(
        out,
        raw_lines,
        fingerprint=result.fingerprint,
        shard=None,
        cells=cell_count,
        salvaged=bool(result.corruption) or bool(result.conflicts),
    )
    return os.fspath(out)


def shard_journal_paths(
    base: str | os.PathLike[str], n_shards: int
) -> list[str]:
    """Conventional per-shard journal names: ``base.shard{i}-of-{n}.jsonl``.

    Purely a naming helper for local multi-shard runs (benchmarks, the
    CI smoke test); multi-host runs name journals however they like —
    the header stamp, not the filename, is what merge trusts.
    """
    base = os.fspath(base)
    stem, ext = os.path.splitext(base)
    ext = ext or ".jsonl"
    return [f"{stem}.shard{i}-of-{n_shards}{ext}" for i in range(n_shards)]


__all__ = [
    "Cell",
    "MergeConflict",
    "MergeResult",
    "ShardJournalInfo",
    "ShardPlan",
    "cell_cost",
    "fingerprint_cell_seed",
    "fingerprint_cells",
    "merge_journals",
    "shard_journal_paths",
]
