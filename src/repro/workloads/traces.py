"""Trace I/O: persist instances as CSV job traces.

A production admission-control study replays recorded traces; this module
defines the on-disk format (one job per row: ``release,processing,
deadline[,tag=value;...]``) and round-trips :class:`Instance` objects so
benchmark inputs can be archived, diffed, and shared.
"""

from __future__ import annotations

import io
import pathlib
from typing import Any

from repro.model.instance import Instance
from repro.model.job import Job

HEADER = "release,processing,deadline,tags"


def _encode_tags(job: Job) -> str:
    return ";".join(f"{k}={v}" for k, v in job.tags)


def _decode_tags(cell: str) -> dict[str, Any]:
    tags: dict[str, Any] = {}
    if not cell:
        return tags
    for part in cell.split(";"):
        key, _, raw = part.partition("=")
        value: Any = raw
        for caster in (int, float):
            try:
                value = caster(raw)
                break
            except ValueError:
                continue
        tags[key] = value
    return tags


def instance_to_csv(instance: Instance) -> str:
    """Serialise *instance*'s jobs to CSV text (metadata in the header).

    The first line is a comment carrying machines/epsilon/name so the file
    is self-contained.
    """
    buf = io.StringIO()
    buf.write(
        f"# machines={instance.machines} epsilon={instance.epsilon!r} "
        f"name={instance.name}\n"
    )
    buf.write(HEADER + "\n")
    for job in instance:
        buf.write(
            f"{job.release!r},{job.processing!r},{job.deadline!r},{_encode_tags(job)}\n"
        )
    return buf.getvalue()


def instance_from_csv(text: str) -> Instance:
    """Parse CSV text produced by :func:`instance_to_csv`."""
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines or not lines[0].startswith("#"):
        raise ValueError("trace is missing the '# machines=... epsilon=...' header")
    meta_parts = dict(
        part.split("=", 1) for part in lines[0].lstrip("# ").split(" ") if "=" in part
    )
    machines = int(meta_parts["machines"])
    epsilon = float(meta_parts["epsilon"])
    name = meta_parts.get("name", "")
    if lines[1] != HEADER:
        raise ValueError(f"unexpected column header: {lines[1]!r}")
    jobs = []
    for ln in lines[2:]:
        release, processing, deadline, tags_cell = ln.split(",", 3)
        job = Job(float(release), float(processing), float(deadline))
        tags = _decode_tags(tags_cell)
        if tags:
            job = job.with_tags(**tags)
        jobs.append(job)
    return Instance(jobs, machines=machines, epsilon=epsilon, name=name)


def save_trace(instance: Instance, path: str | pathlib.Path) -> pathlib.Path:
    """Write *instance* to *path* as a CSV trace."""
    path = pathlib.Path(path)
    path.write_text(instance_to_csv(instance))
    return path


def load_trace(path: str | pathlib.Path) -> Instance:
    """Read an instance back from a CSV trace file."""
    return instance_from_csv(pathlib.Path(path).read_text())
