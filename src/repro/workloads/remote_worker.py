"""Stdio worker endpoint of the remote elastic pool.

Launched on a registry host by the controller's transport command
(``python -m repro.workloads.remote_worker``, usually behind ssh), this
process speaks the wire protocol of :mod:`repro.workloads.remote` on its
stdin/stdout: ``hello`` (environment fingerprint) -> ``init`` (pickled
sweep spec) -> pull loop of ``ready`` / ``lease`` / ``heartbeat`` /
``result`` / ``nack`` until ``stop`` or EOF.

Design notes:

* All stdout writes go through one lock — the heartbeat thread and the
  main loop share the pipe, and interleaved partial lines would be
  protocol garbage.
* Rows travel as :func:`repro.workloads.journal.row_to_payload` lists:
  the same canonical serialisation the journal uses, so wire round trips
  are bit-identical by the journal's own contract.
* The worker holds no retry logic, no journal and no cache: it is a
  pure cell evaluator.  Every policy decision (retries, quarantine,
  speculation) lives controller-side where the failure domains are
  visible.
* Injected chaos: the controller ships cell-level
  :class:`~repro.testing.chaos.ChaosPlan` faults in ``init`` (applied
  exactly like the local elastic worker), a ``slow`` delay per cell for
  slow-host emulation, and a per-lease ``die`` directive for dead-host
  emulation (``os._exit``, as a machine loss would appear).
"""

from __future__ import annotations

import base64
import itertools
import os
import pickle
import sys
import threading
import time
from typing import Any, BinaryIO

from repro.workloads.journal import row_to_payload
from repro.workloads.remote import (
    RemoteProtocolError,
    decode_message,
    encode_message,
    env_fingerprint,
)
from repro.workloads.resilient import run_cell, run_cells


def _heartbeat_loop(send, seed: int, interval: float, stop: threading.Event) -> None:
    """One beat per *interval* while the cell computes, until stopped."""
    while not stop.wait(interval):
        try:
            send("heartbeat", seed=seed)
        except (OSError, ValueError):  # pragma: no cover - parent went away
            return


def main(stdin: BinaryIO | None = None, stdout: BinaryIO | None = None) -> int:
    """Run the worker loop over *stdin*/*stdout*; returns the exit code."""
    stdin = stdin if stdin is not None else sys.stdin.buffer
    stdout = stdout if stdout is not None else sys.stdout.buffer
    lock = threading.Lock()
    seq = itertools.count()

    def send(op: str, **fields: Any) -> None:
        with lock:
            stdout.write(encode_message(op, next(seq), **fields))
            stdout.flush()

    send("hello", fingerprint=env_fingerprint())

    line = stdin.readline()
    if not line:
        return 0
    try:
        message = decode_message(line)
    except RemoteProtocolError:
        return 1
    if message["op"] == "stop":
        return 0
    if message["op"] == "reject":
        return 1
    if message["op"] != "init":
        return 1
    spec, algorithm_kwargs, backend, chaos = pickle.loads(
        base64.b64decode(message["payload"])
    )
    heartbeat_interval = float(message.get("heartbeat_interval", 0.1))
    slow = float(message.get("slow", 0.0))

    while True:
        send("ready")
        line = stdin.readline()
        if not line:
            return 0
        try:
            message = decode_message(line)
        except RemoteProtocolError:
            return 1
        if message["op"] == "stop":
            return 0
        if message["op"] != "lease":
            continue
        eps = message["eps"]
        m = message["m"]
        rep = message["rep"]
        seed = message["seed"]
        attempt = message["attempt"]
        if message.get("die"):
            from repro.testing.chaos import CHAOS_EXIT_CODE

            os._exit(CHAOS_EXIT_CODE)  # injected dead host: no cleanup
        stop_beats = threading.Event()
        beats = threading.Thread(
            target=_heartbeat_loop,
            args=(send, seed, heartbeat_interval, stop_beats),
            daemon=True,
        )
        beats.start()
        try:
            if slow:
                time.sleep(slow)  # slow host: heartbeats keep flowing
            fault = None
            if chaos is not None:
                fault = chaos.fault_for(seed, attempt)
                chaos.trigger(fault)  # may _exit, hang, or raise
            if backend == "scalar":
                rows = run_cell(spec, eps, m, rep, algorithm_kwargs, None)
            else:
                rows = run_cells(
                    spec, [(eps, m, rep)], algorithm_kwargs, None, backend=backend
                )[0]
            if fault == "corrupt":
                rows = chaos.corrupt_rows(rows)
            stop_beats.set()
            beats.join()
            send("result", seed=seed, rows=[row_to_payload(row) for row in rows])
        except BaseException as exc:  # noqa: BLE001 - crosses the wire
            stop_beats.set()
            beats.join()
            send("nack", seed=seed, detail=f"{type(exc).__name__}: {exc}")
        finally:
            stop_beats.set()


if __name__ == "__main__":
    try:
        sys.exit(main())
    except (BrokenPipeError, KeyboardInterrupt):  # pragma: no cover - teardown
        sys.exit(0)
