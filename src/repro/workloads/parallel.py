"""Parallel sweep execution (strict wrapper over the resilient runner).

Sweeps are embarrassingly parallel: each grid cell generates its own
instance from a deterministic per-cell seed, so results are independent
of scheduling order.  :func:`run_sweep_parallel` fans cells out over
fresh worker processes and returns rows in the same canonical order as
:func:`repro.workloads.sweep.run_sweep` — the test-suite asserts
bit-identical results between the two paths.  Workers run cells through
the same shared simulation kernel as the serial path, so validation and
instrumentation are identical in both.

Since the fault-tolerance layer landed, this module is a thin *strict*
facade over :func:`repro.workloads.resilient.run_sweep_resilient`: no
retries, no timeout, and any worker failure raises
:class:`~repro.workloads.resilient.SweepExecutionError` instead of
degrading gracefully.  Long or unattended grids should call the
resilient runner directly (or ``repro sweep --journal``) to get
per-cell timeouts, retries, checkpointing and resume.

Notes for HPC-style use (per the project guides):

* the workload factory and every ``algorithm_kwargs`` value must be
  picklable (module-level functions or :func:`functools.partial`, not
  lambdas) — a clear error is raised up front otherwise;
* per-cell seeds come from the spec, not from worker state, so adding
  workers can never change the data;
* chunking is one cell per task — cells are coarse (an offline bracket
  dominates), so scheduling overhead is negligible.
"""

from __future__ import annotations

from typing import Any

from repro.offline.cache import BracketCache
from repro.workloads.resilient import (
    SweepExecutionError,
    run_sweep_resilient,
)
from repro.workloads.sweep import SweepRow, SweepSpec


def run_sweep_parallel(
    spec: SweepSpec,
    algorithm_kwargs: dict[str, dict[str, Any]] | None = None,
    max_workers: int | None = None,
    cache: BracketCache | None = None,
) -> list[SweepRow]:
    """Execute *spec* across worker processes, all-or-nothing.

    Returns rows in canonical grid order (identical to the serial
    :func:`repro.workloads.sweep.run_sweep`).  Raises
    :class:`SweepExecutionError` if any cell fails — callers that want
    partial results and retries should use
    :func:`repro.workloads.resilient.run_sweep_resilient`.
    """
    result = run_sweep_resilient(
        spec,
        algorithm_kwargs,
        max_workers=max_workers,
        timeout=None,
        max_retries=0,
        cache=cache,
    )
    if result.manifest.failures:
        first = result.manifest.failures[0]
        raise SweepExecutionError(
            f"{result.manifest.quarantined} sweep cell(s) failed; first: "
            f"cell (eps={first.epsilon}, m={first.machines}, rep={first.repetition}) "
            f"[{first.kind}] {first.detail}",
            result.manifest,
        )
    return result.rows
