"""Parallel sweep execution.

Sweeps are embarrassingly parallel: each grid cell generates its own
instance from a deterministic per-cell seed, so results are independent
of scheduling order.  :func:`run_sweep_parallel` fans cells out over a
:class:`concurrent.futures.ProcessPoolExecutor` and returns rows in the
same canonical order as :func:`repro.workloads.sweep.run_sweep` — the
test-suite asserts bit-identical results between the two paths.  Workers
run cells through the same shared simulation kernel as the serial path,
so validation and instrumentation are identical in both.

Notes for HPC-style use (per the project guides):

* the workload factory must be picklable (module-level functions or
  :func:`functools.partial`, not lambdas) — a clear error is raised
  otherwise;
* per-cell seeds come from the spec, not from worker state, so adding
  workers can never change the data;
* chunking is one cell per task — cells are coarse (an offline bracket
  dominates), so scheduling overhead is negligible.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.baselines.registry import run_algorithm
from repro.core.guarantees import guarantee_for
from repro.offline.bracket import opt_bracket
from repro.workloads.sweep import SweepRow, SweepSpec


def _run_cell(
    spec: SweepSpec,
    eps: float,
    m: int,
    rep: int,
    algorithm_kwargs: dict[str, dict[str, Any]],
) -> list[SweepRow]:
    """Worker: evaluate one grid cell for every algorithm."""
    seed = spec.cell_seed(eps, m, rep)
    instance = spec.workload(m, eps, seed)
    bracket = opt_bracket(
        instance,
        force_bounds=spec.force_bounds,
        **({"exact_limit": spec.exact_limit} if spec.exact_limit is not None else {}),
    )
    rows = []
    for name in spec.algorithms:
        result = run_algorithm(
            name,
            instance,
            record_events=spec.record_events,
            **algorithm_kwargs.get(name, {}),
        )
        rows.append(
            SweepRow(
                epsilon=eps,
                machines=m,
                repetition=rep,
                algorithm=name,
                accepted_load=result.accepted_load,
                accepted_count=result.accepted_count,
                n_jobs=len(instance),
                opt_lower=bracket.lower,
                opt_upper=bracket.upper,
                opt_exact=bracket.exact,
                guarantee=guarantee_for(name, eps, m),
            )
        )
    return rows


def run_sweep_parallel(
    spec: SweepSpec,
    algorithm_kwargs: dict[str, dict[str, Any]] | None = None,
    max_workers: int | None = None,
) -> list[SweepRow]:
    """Execute *spec* across a process pool.

    Returns rows in canonical grid order (identical to the serial
    :func:`repro.workloads.sweep.run_sweep`).
    """
    algorithm_kwargs = algorithm_kwargs or {}
    try:
        pickle.dumps(spec.workload)
    except Exception as exc:  # pragma: no cover - message content only
        raise TypeError(
            "the sweep workload factory must be picklable for parallel "
            "execution (use a module-level function or functools.partial, "
            f"not a lambda): {exc}"
        ) from exc

    cells = list(spec.cells())
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [
            pool.submit(_run_cell, spec, eps, m, rep, algorithm_kwargs)
            for eps, m, rep in cells
        ]
        results = [f.result() for f in futures]
    rows: list[SweepRow] = []
    for cell_rows in results:
        rows.extend(cell_rows)
    return rows
