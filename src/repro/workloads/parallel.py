"""Parallel sweep execution (deprecated strict facade).

Sweeps are embarrassingly parallel: each grid cell generates its own
instance from a deterministic per-cell seed, so results are independent
of scheduling order.  :func:`run_sweep_parallel` used to be the fan-out
path; it survives as a deprecated shim over
:func:`repro.workloads.execute.execute_sweep` with a *strict* policy —
no retries, no timeout, and any worker failure raises
:class:`~repro.workloads.resilient.SweepExecutionError` instead of
degrading gracefully.  New code should build an
:class:`~repro.workloads.execute.ExecutionPolicy` directly (and long or
unattended grids should add per-cell timeouts, retries, checkpointing
and resume — see ``docs/usage.md``).
"""

from __future__ import annotations

import warnings
from typing import Any

from repro.offline.cache import BracketCache
from repro.workloads.sweep import SweepRow, SweepSpec


def run_sweep_parallel(
    spec: SweepSpec,
    algorithm_kwargs: dict[str, dict[str, Any]] | None = None,
    max_workers: int | None = None,
    cache: BracketCache | None = None,
) -> list[SweepRow]:
    """Execute *spec* across worker processes, all-or-nothing.

    .. deprecated:: 1.0
        Legacy entrypoint, kept as a thin shim; it will be removed in
        version 2.0.  Use :func:`repro.workloads.execute.execute_sweep`
        with ``ExecutionPolicy(parallel=True, retries=0, strict=True)``.
    """
    warnings.warn(
        "run_sweep_parallel is deprecated; use repro.workloads.execute."
        "execute_sweep(spec, ExecutionPolicy(parallel=True, retries=0, "
        "strict=True))",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.workloads.execute import ExecutionPolicy, execute_sweep

    policy = ExecutionPolicy(
        parallel=True, workers=max_workers, retries=0, strict=True, cache=cache
    )
    return execute_sweep(spec, policy, algorithm_kwargs).rows
