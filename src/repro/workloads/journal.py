"""Append-only JSONL checkpoint journal for sweep execution.

A multi-hour sweep grid must survive worker crashes, machine reboots and
``SIGINT``.  The journal is the durability layer behind
:func:`repro.workloads.execute.execute_sweep`: every completed
cell is appended as one self-contained JSON line *before* the runner
moves on, so an interrupted run can be resumed with ``repro sweep
--resume <journal>`` and replay finished cells from disk instead of
recomputing them.

Design notes
------------

* **Keyed by the deterministic cell seed.**  ``SweepSpec.cell_seed`` is a
  pure function of ``(base_seed, epsilon, machines, repetition)``, so the
  seed uniquely identifies a cell across runs and across machines — the
  journal never needs to trust iteration order.
* **Append-only JSONL.**  One record per line, flushed and fsync'd per
  cell.  A hard kill can at worst truncate the *final* line; the loader
  tolerates (and reports) a single trailing partial record, and
  :meth:`SweepJournal.resume` truncates it away before appending so that
  repeated kill/resume cycles never glue records onto the fragment.
* **Fingerprinted header.**  The first line captures a structural
  fingerprint of the :class:`~repro.workloads.sweep.SweepSpec` (grid,
  algorithms, seeds, workload description).  Resuming against a journal
  written for a different spec raises :class:`JournalMismatchError`
  instead of silently mixing incompatible rows.
* **Shard stamp.**  A journal written by one shard of a multi-host sweep
  (see :mod:`repro.workloads.sharding`) additionally stamps its header
  with ``(shard_index, n_shards)``.  Resuming it under different shard
  flags raises :class:`JournalError` naming both stamps — silently
  recomputing a different cell subset would corrupt the eventual merge.
* **Run-stats trailer.**  Each run (initial or resumed) appends one
  ``stats`` record on exit — wall-clock seconds, manifest counters,
  bracket-cache counters — which the merge layer aggregates into
  per-shard timing and a combined cache report.  Loaders that predate
  the record type would reject it, but old journals (without it) load
  unchanged, so the format version is unbumped.
* **Bit-identical replay.**  Rows are stored field-by-field; Python's
  ``json`` emits shortest round-trip float literals, so a replayed
  :class:`~repro.workloads.sweep.SweepRow` compares equal to the row the
  worker originally produced.
"""

from __future__ import annotations

import functools
import io
import json
import os
from dataclasses import dataclass, field, fields
from typing import IO, TYPE_CHECKING, Any

from repro.workloads.sweep import SweepRow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.workloads.sweep import SweepSpec

#: Journal format version; bumped on incompatible record changes.
JOURNAL_VERSION = 1

#: Ordered SweepRow constructor fields (the serialization schema).
ROW_FIELDS: tuple[str, ...] = tuple(f.name for f in fields(SweepRow))


class JournalError(RuntimeError):
    """A journal file is unreadable or structurally invalid."""


class JournalMismatchError(JournalError):
    """A journal's header fingerprint does not match the current spec."""


def describe_workload(workload: Any) -> dict[str, Any]:
    """Stable, address-free description of a workload factory.

    ``repr(partial(...))`` embeds the wrapped function's memory address,
    which would make every fingerprint unique; this flattens partials to
    ``module.qualname`` plus bound-argument reprs instead.
    """
    if isinstance(workload, functools.partial):
        return {
            "partial": describe_workload(workload.func),
            "args": [repr(a) for a in workload.args],
            "kwargs": {k: repr(v) for k, v in sorted((workload.keywords or {}).items())},
        }
    name = getattr(workload, "__qualname__", None) or type(workload).__qualname__
    module = getattr(workload, "__module__", None) or type(workload).__module__
    return {"callable": f"{module}.{name}"}


def spec_fingerprint(spec: "SweepSpec") -> dict[str, Any]:
    """Structural identity of a sweep spec (what the journal binds to)."""
    return {
        "epsilons": [float(e) for e in spec.epsilons],
        "machine_counts": [int(m) for m in spec.machine_counts],
        "algorithms": list(spec.algorithms),
        "repetitions": int(spec.repetitions),
        "base_seed": int(spec.base_seed),
        "force_bounds": bool(spec.force_bounds),
        "exact_limit": spec.exact_limit,
        "record_events": bool(spec.record_events),
        "workload": describe_workload(spec.workload),
    }


def row_to_payload(row: SweepRow) -> list[Any]:
    """Serialise one row as a compact field-ordered list (see ROW_FIELDS)."""
    return [getattr(row, name) for name in ROW_FIELDS]


def row_from_payload(payload: list[Any]) -> SweepRow:
    """Inverse of :func:`row_to_payload`; bit-identical round trip."""
    if len(payload) != len(ROW_FIELDS):
        raise JournalError(
            f"row payload has {len(payload)} fields, expected {len(ROW_FIELDS)}"
        )
    return SweepRow(**dict(zip(ROW_FIELDS, payload)))


@dataclass
class JournalState:
    """Everything :func:`load_journal` recovers from disk."""

    fingerprint: dict[str, Any]
    #: cell seed -> replayed rows, in the order they were journaled.
    completed: dict[int, list[SweepRow]]
    #: quarantine records observed in the journal (observability only —
    #: resumed runs re-execute these cells rather than trusting old verdicts).
    failures: list[dict[str, Any]]
    #: ``(shard_index, n_shards)`` stamp from the header; ``(0, 1)`` for
    #: unsharded journals (including every journal written before sharding).
    shard: tuple[int, int] = (0, 1)
    #: run-stats trailer records (one per run/resume cycle), oldest first.
    stats: list[dict[str, Any]] = field(default_factory=list)
    #: True when the final line was cut off mid-write (hard kill).
    truncated_tail: bool = False
    #: byte offset of the end of the last complete record; everything past
    #: it is the truncated tail, which :meth:`SweepJournal.resume` chops
    #: off before appending (a new record glued onto a partial line would
    #: corrupt the journal for every later load).
    valid_bytes: int = 0


def load_journal(path: str | os.PathLike[str]) -> JournalState:
    """Read a journal back; tolerates one truncated trailing line."""
    completed: dict[int, list[SweepRow]] = {}
    failures: list[dict[str, Any]] = []
    stats: list[dict[str, Any]] = []
    fingerprint: dict[str, Any] | None = None
    shard = (0, 1)
    truncated = False
    valid_bytes = 0
    with open(path, "rb") as fh:
        data = fh.read()
    # (raw line, byte offset just past its newline), blank lines dropped.
    lines: list[tuple[bytes, int]] = []
    pos = 0
    while pos < len(data):
        newline = data.find(b"\n", pos)
        end = len(data) if newline == -1 else newline + 1
        raw = data[pos:end]
        if raw.strip():
            lines.append((raw, end))
        pos = end
    for i, (raw, end) in enumerate(lines):
        try:
            record = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            if i == len(lines) - 1:
                truncated = True  # hard kill mid-append; cell simply re-runs
                break
            raise JournalError(f"{path}: corrupt journal record on line {i + 1}") from exc
        kind = record.get("kind")
        if kind == "header":
            if record.get("version") != JOURNAL_VERSION:
                raise JournalError(
                    f"{path}: journal version {record.get('version')!r} is not "
                    f"supported (expected {JOURNAL_VERSION})"
                )
            fingerprint = record["fingerprint"]
            if "shard" in record:
                shard = (int(record["shard"]["index"]), int(record["shard"]["of"]))
        elif kind == "cell":
            completed[int(record["seed"])] = [
                row_from_payload(p) for p in record["rows"]
            ]
        elif kind == "failure":
            if "failure" not in record:
                raise JournalError(
                    f"{path}: failure record on line {i + 1} has no 'failure' field"
                )
            failures.append(record["failure"])
        elif kind == "stats":
            stats.append({k: v for k, v in record.items() if k != "kind"})
        else:
            raise JournalError(f"{path}: unknown journal record kind {kind!r}")
        valid_bytes = end
    if fingerprint is None:
        raise JournalError(f"{path}: journal has no header record")
    return JournalState(
        fingerprint=fingerprint,
        completed=completed,
        failures=failures,
        shard=shard,
        stats=stats,
        truncated_tail=truncated,
        valid_bytes=valid_bytes,
    )


class SweepJournal:
    """Writer handle for an append-only sweep checkpoint journal.

    Use :meth:`create` for a fresh journal or :meth:`resume` to reopen an
    existing one (validating its fingerprint and recovering completed
    cells).  Records are flushed and fsync'd per append so that completed
    work survives a hard kill.
    """

    def __init__(self, path: str, fh: IO[str]) -> None:
        self.path = path
        self._fh = fh

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | os.PathLike[str],
        spec: "SweepSpec",
        shard: tuple[int, int] | None = None,
    ) -> "SweepJournal":
        """Start a fresh journal; refuses to clobber an existing one.

        A journal is the only durable copy of hours of completed cells, so
        silently truncating one (e.g. a ``--journal`` run where the user
        forgot ``--resume``) would destroy exactly the work it exists to
        protect.  Raises :class:`JournalError` if *path* already holds data.

        ``shard=(shard_index, n_shards)`` stamps a shard-scoped journal so
        that resume and merge can verify which slice of the grid it holds.
        """
        try:
            fh = open(path, "x", encoding="utf-8")
        except FileExistsError:
            if os.path.getsize(path) > 0:
                raise JournalError(
                    f"{os.fspath(path)}: journal already exists; resume from it "
                    "(repro sweep --resume) or delete it explicitly to start over"
                ) from None
            fh = open(path, "w", encoding="utf-8")
        journal = cls(os.fspath(path), fh)
        header = {
            "kind": "header",
            "version": JOURNAL_VERSION,
            "label": spec.label,
            "fingerprint": spec_fingerprint(spec),
        }
        if shard is not None:
            header["shard"] = {"index": int(shard[0]), "of": int(shard[1])}
        journal._append(header)
        return journal

    @classmethod
    def resume(
        cls,
        path: str | os.PathLike[str],
        spec: "SweepSpec",
        shard: tuple[int, int] | None = None,
    ) -> tuple["SweepJournal", JournalState]:
        """Reopen *path* for append, returning the recovered state.

        Raises :class:`JournalMismatchError` when the journal belongs to a
        different spec — resuming would otherwise silently mix rows from
        incompatible grids — and :class:`JournalError` when its shard
        stamp disagrees with the requested ``(shard_index, n_shards)``:
        the completed-cell set on disk belongs to a *different slice* of
        the grid, so continuing would silently recompute the wrong subset
        and poison the eventual merge.

        A hard kill can leave a partial trailing line; appending straight
        after it would glue the next record onto the fragment, silently
        dropping that record and corrupting the journal for every later
        load.  The tail is therefore truncated back to the last complete
        record before the file is reopened for append.
        """
        state = load_journal(path)
        current = spec_fingerprint(spec)
        if state.fingerprint != current:
            diffs = [
                key
                for key in sorted(set(state.fingerprint) | set(current))
                if state.fingerprint.get(key) != current.get(key)
            ]
            raise JournalMismatchError(
                f"{os.fspath(path)}: journal was written for a different sweep "
                f"spec (mismatched fields: {', '.join(diffs)})"
            )
        wanted = (0, 1) if shard is None else (int(shard[0]), int(shard[1]))
        if state.shard != wanted:
            raise JournalError(
                f"{os.fspath(path)}: journal is stamped shard_index={state.shard[0]} "
                f"of n_shards={state.shard[1]}, but this run requests "
                f"shard_index={wanted[0]} of n_shards={wanted[1]}; resume a shard "
                "journal with the same --shards/--shard-index it was written with"
            )
        if state.truncated_tail:
            with open(path, "r+b") as trunc:
                trunc.truncate(state.valid_bytes)
        fh = open(path, "a", encoding="utf-8")
        return cls(os.fspath(path), fh), state

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- records -------------------------------------------------------

    def record_cell(
        self, seed: int, eps: float, m: int, rep: int, rows: list[SweepRow]
    ) -> None:
        """Checkpoint one completed cell (durable once this returns)."""
        self._append(
            {
                "kind": "cell",
                "seed": int(seed),
                "epsilon": float(eps),
                "machines": int(m),
                "repetition": int(rep),
                "rows": [row_to_payload(r) for r in rows],
            }
        )

    def record_failure(self, failure: dict[str, Any]) -> None:
        """Log a quarantined cell (observability; re-run on resume).

        The payload is nested under ``"failure"`` — it carries its own
        ``"kind"`` (crash/timeout/error/corrupt), which must not collide
        with the record-level ``"kind"`` the loader dispatches on.
        """
        self._append({"kind": "failure", "failure": dict(failure)})

    def record_stats(self, stats: dict[str, Any]) -> None:
        """Append a run-stats trailer (wall clock, counters, cache stats).

        One is written per run or resume cycle; the merge layer sums them
        per journal, so cumulative per-shard timing survives any number of
        interruptions.
        """
        self._append({"kind": "stats", **stats})

    def _append(self, record: dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, allow_nan=False) + "\n")
        self._fh.flush()
        try:
            os.fsync(self._fh.fileno())
        except (OSError, ValueError, io.UnsupportedOperation):  # pragma: no cover
            pass  # non-seekable/mock sinks: flush is the best we can do
