"""Append-only JSONL checkpoint journal for sweep execution.

A multi-hour sweep grid must survive worker crashes, machine reboots and
``SIGINT``.  The journal is the durability layer behind
:func:`repro.workloads.execute.execute_sweep`: every completed
cell is appended as one self-contained JSON line *before* the runner
moves on, so an interrupted run can be resumed with ``repro sweep
--resume <journal>`` and replay finished cells from disk instead of
recomputing them.

Design notes
------------

* **Keyed by the deterministic cell seed.**  ``SweepSpec.cell_seed`` is a
  pure function of ``(base_seed, epsilon, machines, repetition)``, so the
  seed uniquely identifies a cell across runs and across machines — the
  journal never needs to trust iteration order.
* **Append-only JSONL.**  One record per line, flushed and fsync'd per
  cell.  A hard kill can at worst truncate the *final* line; the loader
  tolerates (and reports) a single trailing partial record, and
  :meth:`SweepJournal.resume` truncates it away before appending so that
  repeated kill/resume cycles never glue records onto the fragment.
* **Fingerprinted header.**  The first line captures a structural
  fingerprint of the :class:`~repro.workloads.sweep.SweepSpec` (grid,
  algorithms, seeds, workload description).  Resuming against a journal
  written for a different spec raises :class:`JournalMismatchError`
  instead of silently mixing incompatible rows.
* **Shard stamp.**  A journal written by one shard of a multi-host sweep
  (see :mod:`repro.workloads.sharding`) additionally stamps its header
  with ``(shard_index, n_shards)``.  Resuming it under different shard
  flags raises :class:`JournalError` naming both stamps — silently
  recomputing a different cell subset would corrupt the eventual merge.
* **Run-stats trailer.**  Each run (initial or resumed) appends one
  ``stats`` record on exit — wall-clock seconds, manifest counters,
  bracket-cache counters — which the merge layer aggregates into
  per-shard timing and a combined cache report.  Loaders that predate
  the record type would reject it, but old journals (without it) load
  unchanged, so the format version is unbumped.
* **Lease provenance.**  A ``cell`` record may carry a ``prov`` object —
  which worker slot computed it, on which attempt, how many heartbeats
  the lease saw, how long it was held, and whether the winning copy was
  a speculative duplicate (see :mod:`repro.workloads.elastic`).
  Provenance is *outside* the row CRC (it describes the execution, not
  the data), is preserved by salvage (byte-for-byte record copies) and
  ignored by merge dedup; journals without it load unchanged.
* **Row checksums.**  Every ``cell`` record carries a short content CRC
  over ``(seed, rows)``, computed from a canonical JSON serialisation so
  it survives reformatting.  A bit-flip in transit (or at rest) is
  detected at load time instead of silently poisoning the dataset.
  Journals written before the CRC existed load unchanged with
  ``integrity="unknown"`` — the checksum is additive, so the format
  version is unbumped.
* **Seal records.**  A run that exits cleanly appends a ``seal`` record:
  a SHA-256 over the byte stream of every preceding line, the record and
  cell counts, a digest of the spec fingerprint and the shard stamp.
  :func:`verify_journal` (``repro verify``) and the merge layer check it
  — a sealed journal whose seal verifies is guaranteed bit-identical to
  what the writer produced.  Appending after a seal (a resumed run)
  simply leaves the journal *unsealed* until the next clean exit appends
  a fresh seal covering everything, earlier seals included.
* **Salvage mode.**  ``load_journal(path, salvage=True)`` quarantines
  corrupt or checksum-failing lines *mid-file* into a structured
  :class:`CorruptionReport` instead of raising: intact rows survive and
  the damaged cells simply count as missing (coverage holes a resumed
  sweep refills).  The default strict mode keeps the historical
  fail-fast behaviour.  :func:`salvage_journal` rewrites a damaged
  journal keeping only the intact records (original bytes, original
  order) and appends a fresh seal marked ``salvaged``.
* **Bit-identical replay.**  Rows are stored field-by-field; Python's
  ``json`` emits shortest round-trip float literals, so a replayed
  :class:`~repro.workloads.sweep.SweepRow` compares equal to the row the
  worker originally produced.
"""

from __future__ import annotations

import functools
import hashlib
import io
import json
import os
import zlib
from dataclasses import dataclass, field, fields
from typing import IO, TYPE_CHECKING, Any

from repro.workloads.sweep import SweepRow

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.workloads.sweep import SweepSpec

#: Journal format version; bumped on incompatible record changes.
JOURNAL_VERSION = 1

#: Ordered SweepRow constructor fields (the serialization schema).
ROW_FIELDS: tuple[str, ...] = tuple(f.name for f in fields(SweepRow))

#: Integrity verdicts for a loaded journal / cell record.
INTEGRITY_VERIFIED = "verified"
INTEGRITY_UNKNOWN = "unknown"
INTEGRITY_SALVAGED = "salvaged"


class JournalError(RuntimeError):
    """A journal file is unreadable or structurally invalid."""


class JournalMismatchError(JournalError):
    """A journal's header fingerprint does not match the current spec."""


class JournalIntegrityError(JournalError):
    """A checksum or seal failed: the journal's bytes have been altered."""


def describe_workload(workload: Any) -> dict[str, Any]:
    """Stable, address-free description of a workload factory.

    ``repr(partial(...))`` embeds the wrapped function's memory address,
    which would make every fingerprint unique; this flattens partials to
    ``module.qualname`` plus bound-argument reprs instead.
    """
    if isinstance(workload, functools.partial):
        return {
            "partial": describe_workload(workload.func),
            "args": [repr(a) for a in workload.args],
            "kwargs": {k: repr(v) for k, v in sorted((workload.keywords or {}).items())},
        }
    name = getattr(workload, "__qualname__", None) or type(workload).__qualname__
    module = getattr(workload, "__module__", None) or type(workload).__module__
    return {"callable": f"{module}.{name}"}


def spec_fingerprint(spec: "SweepSpec") -> dict[str, Any]:
    """Structural identity of a sweep spec (what the journal binds to)."""
    return {
        "epsilons": [float(e) for e in spec.epsilons],
        "machine_counts": [int(m) for m in spec.machine_counts],
        "algorithms": list(spec.algorithms),
        "repetitions": int(spec.repetitions),
        "base_seed": int(spec.base_seed),
        "force_bounds": bool(spec.force_bounds),
        "exact_limit": spec.exact_limit,
        "record_events": bool(spec.record_events),
        "workload": describe_workload(spec.workload),
    }


def fingerprint_sha256(fingerprint: dict[str, Any]) -> str:
    """Canonical digest of a spec fingerprint (stored inside seals)."""
    blob = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def row_to_payload(row: SweepRow) -> list[Any]:
    """Serialise one row as a compact field-ordered list (see ROW_FIELDS)."""
    return [getattr(row, name) for name in ROW_FIELDS]


def row_from_payload(payload: list[Any]) -> SweepRow:
    """Inverse of :func:`row_to_payload`; bit-identical round trip."""
    if len(payload) != len(ROW_FIELDS):
        raise JournalError(
            f"row payload has {len(payload)} fields, expected {len(ROW_FIELDS)}"
        )
    return SweepRow(**dict(zip(ROW_FIELDS, payload)))


def row_crc(seed: int, payloads: list[list[Any]]) -> str:
    """Content CRC of one cell record: 8 hex digits over ``(seed, rows)``.

    Computed from a *canonical* JSON serialisation (fixed separators,
    sorted nothing — lists only), so the checksum is stable under record
    reformatting and under a JSON round trip (shortest-repr floats).
    """
    blob = json.dumps([int(seed), payloads], allow_nan=False, separators=(",", ":"))
    return format(zlib.crc32(blob.encode("utf-8")) & 0xFFFFFFFF, "08x")


# ---------------------------------------------------------------------------
# corruption accounting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CorruptionEvent:
    """One damaged journal line, quarantined during a salvage load."""

    line: int  # 1-based line number in the file
    kind: str  # unparsable | crc-mismatch | seal-mismatch | bad-record | unknown-kind
    detail: str
    #: cell seed the damaged record claimed, when recoverable.
    seed: int | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "line": self.line,
            "kind": self.kind,
            "detail": self.detail,
            "seed": self.seed,
        }


@dataclass
class CorruptionReport:
    """Structured account of everything quarantined from one journal."""

    path: str
    events: list[CorruptionEvent] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def quarantined_seeds(self) -> set[int]:
        """Cell seeds whose records were dropped (recoverable ones only)."""
        return {e.seed for e in self.events if e.seed is not None}

    def as_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "events": [e.as_dict() for e in self.events],
        }

    def summary(self) -> str:
        if not self.events:
            return f"{self.path}: no corruption"
        kinds: dict[str, int] = {}
        for e in self.events:
            kinds[e.kind] = kinds.get(e.kind, 0) + 1
        breakdown = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
        return (
            f"{self.path}: {len(self.events)} corrupt record(s) quarantined "
            f"({breakdown})"
        )


@dataclass
class JournalState:
    """Everything :func:`load_journal` recovers from disk."""

    fingerprint: dict[str, Any]
    #: cell seed -> replayed rows, in the order they were journaled.
    completed: dict[int, list[SweepRow]]
    #: quarantine records observed in the journal (observability only —
    #: resumed runs re-execute these cells rather than trusting old verdicts).
    failures: list[dict[str, Any]]
    #: ``(shard_index, n_shards)`` stamp from the header; ``(0, 1)`` for
    #: unsharded journals (including every journal written before sharding).
    shard: tuple[int, int] = (0, 1)
    #: run-stats trailer records (one per run/resume cycle), oldest first.
    stats: list[dict[str, Any]] = field(default_factory=list)
    #: True when the final line was cut off mid-write (hard kill).
    truncated_tail: bool = False
    #: byte offset of the end of the last complete record; everything past
    #: it is the truncated tail, which :meth:`SweepJournal.resume` chops
    #: off before appending (a new record glued onto a partial line would
    #: corrupt the journal for every later load).
    valid_bytes: int = 0
    #: header label (``spec.label`` at creation time; ``"merged"`` etc.).
    label: str | None = None
    #: overall verdict: ``verified`` (seal checked out, every row CRC
    #: matched), ``salvaged`` (corrupt records were quarantined) or
    #: ``unknown`` (pre-integrity journal, or unsealed).
    integrity: str = INTEGRITY_UNKNOWN
    #: True when the final record is a seal that verified.
    sealed: bool = False
    #: the final verified seal record, when ``sealed``.
    seal: dict[str, Any] | None = None
    #: per-cell integrity: seed -> ``verified`` | ``unknown`` (cells whose
    #: CRC failed are quarantined and never reach ``completed``).
    integrity_by_seed: dict[int, str] = field(default_factory=dict)
    #: per-cell execution provenance (worker slot, attempt, heartbeats,
    #: lease duration, speculative flag) for journals written by the
    #: elastic scheduler; empty for push-scheduler journals.
    provenance: dict[int, dict[str, Any]] = field(default_factory=dict)
    #: corrupt lines quarantined during a salvage load (empty when clean).
    corruption: CorruptionReport | None = None


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------


def _split_lines(data: bytes) -> list[tuple[bytes, int]]:
    """(raw line, byte offset just past its newline), blank lines dropped."""
    lines: list[tuple[bytes, int]] = []
    pos = 0
    while pos < len(data):
        newline = data.find(b"\n", pos)
        end = len(data) if newline == -1 else newline + 1
        raw = data[pos:end]
        if raw.strip():
            lines.append((raw, end))
        pos = end
    return lines


def _scan_journal(
    path: str | os.PathLike[str], salvage: bool, collect_lines: bool
) -> tuple[JournalState, list[bytes]]:
    """Shared loader core; optionally collects the intact raw lines.

    ``collect_lines`` gathers the verbatim bytes of every surviving
    record *except* seals (a rewrite changes the byte stream, so any old
    seal would be stale) — the input to :func:`salvage_journal`.
    """
    completed: dict[int, list[SweepRow]] = {}
    provenance: dict[int, dict[str, Any]] = {}
    failures: list[dict[str, Any]] = []
    stats: list[dict[str, Any]] = []
    fingerprint: dict[str, Any] | None = None
    label: str | None = None
    shard = (0, 1)
    truncated = False
    valid_bytes = 0
    integrity_by_seed: dict[int, str] = {}
    report = CorruptionReport(path=os.fspath(path))
    kept: list[bytes] = []
    hasher = hashlib.sha256()
    last_seal: dict[str, Any] | None = None
    last_seal_index: int | None = None
    cells_seen = 0

    with open(path, "rb") as fh:
        data = fh.read()
    lines = _split_lines(data)

    def _quarantine(i: int, kind: str, detail: str, seed: int | None = None) -> None:
        if not salvage:
            if kind in ("crc-mismatch", "seal-mismatch"):
                raise JournalIntegrityError(
                    f"{os.fspath(path)}: {detail} on line {i + 1}; the journal's "
                    "bytes were altered after writing — re-transfer it, or load "
                    "with salvage to quarantine the damaged records"
                )
            raise JournalError(f"{path}: corrupt journal record on line {i + 1}")
        report.events.append(CorruptionEvent(line=i + 1, kind=kind, detail=detail, seed=seed))

    for i, (raw, end) in enumerate(lines):
        keep_line = False
        try:
            record = json.loads(raw.decode("utf-8"))
            if not isinstance(record, dict):
                raise JournalError("record is not a JSON object")
        except (json.JSONDecodeError, UnicodeDecodeError, JournalError) as exc:
            if i == len(lines) - 1:
                truncated = True  # hard kill mid-append; cell simply re-runs
                break
            _quarantine(i, "unparsable", f"undecodable record: {exc}")
            hasher.update(raw)
            valid_bytes = end
            continue
        kind = record.get("kind")
        if kind == "header":
            if record.get("version") != JOURNAL_VERSION:
                # Not salvageable: an unknown format cannot be interpreted.
                raise JournalError(
                    f"{path}: journal version {record.get('version')!r} is not "
                    f"supported (expected {JOURNAL_VERSION})"
                )
            fingerprint = record["fingerprint"]
            label = record.get("label")
            if "shard" in record:
                shard = (int(record["shard"]["index"]), int(record["shard"]["of"]))
            keep_line = True
        elif kind == "cell":
            try:
                seed = int(record["seed"])
                payloads = record["rows"]
                rows = [row_from_payload(p) for p in payloads]
            except (KeyError, TypeError, ValueError, JournalError) as exc:
                _quarantine(
                    i,
                    "bad-record",
                    f"malformed cell record: {exc}",
                    seed=int(record["seed"])
                    if isinstance(record.get("seed"), (int, float))
                    else None,
                )
            else:
                cells_seen += 1
                crc = record.get("crc")
                if crc is None:
                    completed[seed] = rows
                    integrity_by_seed[seed] = INTEGRITY_UNKNOWN
                    keep_line = True
                elif crc == row_crc(seed, payloads):
                    completed[seed] = rows
                    integrity_by_seed[seed] = INTEGRITY_VERIFIED
                    keep_line = True
                else:
                    _quarantine(
                        i,
                        "crc-mismatch",
                        f"row checksum mismatch (cell seed {seed}): stored "
                        f"{crc!r} != computed {row_crc(seed, payloads)!r}",
                        seed=seed,
                    )
                if seed in completed and isinstance(record.get("prov"), dict):
                    provenance[seed] = record["prov"]
        elif kind == "failure":
            if "failure" not in record:
                _quarantine(i, "bad-record", "failure record has no 'failure' field")
            else:
                failures.append(record["failure"])
                keep_line = True
        elif kind == "stats":
            stats.append({k: v for k, v in record.items() if k != "kind"})
            keep_line = True
        elif kind == "seal":
            problems = []
            if record.get("stream_sha256") != hasher.hexdigest():
                problems.append("stream hash mismatch")
            if record.get("records") != i:
                problems.append(
                    f"record count mismatch (seal says {record.get('records')}, "
                    f"stream has {i})"
                )
            if fingerprint is None:
                problems.append("seal precedes the header")
            elif record.get("fingerprint_sha256") != fingerprint_sha256(fingerprint):
                problems.append("fingerprint digest mismatch")
            if problems:
                _quarantine(
                    i, "seal-mismatch", "seal verification failed: " + "; ".join(problems)
                )
            else:
                last_seal = record
                last_seal_index = i
            # Never kept: a rewrite invalidates every pre-existing seal.
        else:
            if not salvage:
                raise JournalError(
                    f"{path}: unknown journal record kind {kind!r}"
                )
            _quarantine(i, "unknown-kind", f"unknown journal record kind {kind!r}")
        hasher.update(raw)
        valid_bytes = end
        if keep_line and collect_lines:
            kept.append(raw if raw.endswith(b"\n") else raw + b"\n")
    if fingerprint is None:
        raise JournalError(f"{path}: journal has no header record")
    sealed = last_seal is not None and last_seal_index == len(lines) - 1 and not truncated
    if report.events:
        integrity = INTEGRITY_SALVAGED
    elif sealed and all(
        v == INTEGRITY_VERIFIED for v in integrity_by_seed.values()
    ):
        integrity = INTEGRITY_VERIFIED
    else:
        integrity = INTEGRITY_UNKNOWN
    state = JournalState(
        fingerprint=fingerprint,
        completed=completed,
        provenance=provenance,
        failures=failures,
        shard=shard,
        stats=stats,
        truncated_tail=truncated,
        valid_bytes=valid_bytes,
        label=label,
        integrity=integrity,
        sealed=sealed,
        seal=last_seal if sealed else None,
        integrity_by_seed=integrity_by_seed,
        corruption=report,
    )
    return state, kept


def load_journal(
    path: str | os.PathLike[str], *, salvage: bool = False
) -> JournalState:
    """Read a journal back; tolerates one truncated trailing line.

    In the default strict mode a corrupt mid-file record raises
    :class:`JournalError` (:class:`JournalIntegrityError` when a row CRC
    or seal fails).  With ``salvage=True`` damaged lines are quarantined
    into ``state.corruption`` instead: intact rows survive, and the
    affected cells simply count as missing so a resumed sweep refills
    them.
    """
    state, _ = _scan_journal(path, salvage=salvage, collect_lines=False)
    return state


# ---------------------------------------------------------------------------
# verification and salvage
# ---------------------------------------------------------------------------


@dataclass
class JournalVerification:
    """Outcome of :func:`verify_journal` (the ``repro verify`` payload)."""

    path: str
    #: ``verified`` | ``unsealed`` | ``corrupt``
    status: str
    cells: int = 0
    detail: str = ""
    corruption: CorruptionReport | None = None
    state: JournalState | None = None

    @property
    def ok(self) -> bool:
        return self.status == "verified"

    def summary(self) -> str:
        extra = f" — {self.detail}" if self.detail else ""
        return f"{self.path}: {self.status} ({self.cells} cell(s)){extra}"


def verify_journal(path: str | os.PathLike[str]) -> JournalVerification:
    """Check a journal's integrity end to end without loading it strictly.

    ``verified``: the final record is a seal whose stream hash, record
    count and fingerprint digest all check out, and every cell CRC
    matched — the file is bit-identical to what its writer produced.
    ``unsealed``: no damage found, but there is no (final) seal and/or
    some records predate the checksum, so integrity is unknown.
    ``corrupt``: at least one record is damaged (or the file is not a
    journal at all).
    """
    path = os.fspath(path)
    try:
        state = load_journal(path, salvage=True)
    except (JournalError, OSError) as exc:
        return JournalVerification(
            path=path, status="corrupt", detail=str(exc),
            corruption=CorruptionReport(path=path),
        )
    if state.corruption:
        detail = state.corruption.summary()
        if state.truncated_tail:
            detail += "; truncated tail"
        return JournalVerification(
            path=path, status="corrupt", cells=len(state.completed),
            detail=detail, corruption=state.corruption, state=state,
        )
    if state.truncated_tail:
        return JournalVerification(
            path=path, status="corrupt", cells=len(state.completed),
            detail="truncated trailing record", corruption=state.corruption,
            state=state,
        )
    if state.integrity == INTEGRITY_VERIFIED:
        detail = "sealed"
        if state.seal and state.seal.get("salvaged"):
            detail = "sealed (salvaged upstream)"
        return JournalVerification(
            path=path, status="verified", cells=len(state.completed),
            detail=detail, corruption=state.corruption, state=state,
        )
    reasons = []
    if not state.sealed:
        reasons.append("no final seal")
    unknown = sum(
        1 for v in state.integrity_by_seed.values() if v != INTEGRITY_VERIFIED
    )
    if unknown:
        reasons.append(f"{unknown} cell(s) without checksums")
    return JournalVerification(
        path=path, status="unsealed", cells=len(state.completed),
        detail="; ".join(reasons) or "integrity unknown",
        corruption=state.corruption, state=state,
    )


def _write_sealed_lines(
    dest: str | os.PathLike[str],
    raw_lines: list[bytes],
    *,
    fingerprint: dict[str, Any],
    shard: tuple[int, int] | None,
    cells: int,
    salvaged: bool,
) -> None:
    """Write raw record lines plus a fresh covering seal, atomically."""
    dest = os.fspath(dest)
    hasher = hashlib.sha256()
    tmp = dest + ".tmp"
    with open(tmp, "wb") as fh:
        for raw in raw_lines:
            fh.write(raw)
            hasher.update(raw)
        seal = make_seal(
            stream_sha256=hasher.hexdigest(),
            records=len(raw_lines),
            cells=cells,
            fingerprint=fingerprint,
            shard=shard,
            salvaged=salvaged,
        )
        fh.write((json.dumps(seal, allow_nan=False) + "\n").encode("utf-8"))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, dest)


def salvage_journal(
    src: str | os.PathLike[str], dest: str | os.PathLike[str] | None = None
) -> tuple[JournalState, CorruptionReport]:
    """Rewrite a damaged journal keeping only its intact records.

    Surviving records are copied *byte-for-byte* in their original order
    (so replay stays bit-identical); corrupt lines, the truncated tail
    and stale seals are dropped, and a fresh seal marked ``salvaged`` is
    appended.  ``dest=None`` rewrites in place (atomic replace).  Returns
    the pre-salvage state and the corruption report describing everything
    that was quarantined.

    Raises :class:`JournalError` when the journal cannot be salvaged at
    all (no readable header) — that is a file for quarantine, not repair.
    """
    src = os.fspath(src)
    dest = src if dest is None else os.fspath(dest)
    state, kept = _scan_journal(src, salvage=True, collect_lines=True)
    cells = sum(1 for _ in state.completed)
    shard = None if state.shard == (0, 1) else state.shard
    _write_sealed_lines(
        dest,
        kept,
        fingerprint=state.fingerprint,
        shard=shard,
        cells=cells,
        salvaged=bool(state.corruption) or state.truncated_tail,
    )
    assert state.corruption is not None
    return state, state.corruption


def make_seal(
    *,
    stream_sha256: str,
    records: int,
    cells: int,
    fingerprint: dict[str, Any],
    shard: tuple[int, int] | None = None,
    salvaged: bool = False,
) -> dict[str, Any]:
    """Build a seal record covering *records* preceding lines."""
    seal: dict[str, Any] = {
        "kind": "seal",
        "algo": "sha256",
        "stream_sha256": stream_sha256,
        "records": int(records),
        "cells": int(cells),
        "fingerprint_sha256": fingerprint_sha256(fingerprint),
        "salvaged": bool(salvaged),
    }
    if shard is not None:
        seal["shard"] = {"index": int(shard[0]), "of": int(shard[1])}
    return seal


# ---------------------------------------------------------------------------
# the writer
# ---------------------------------------------------------------------------


class SweepJournal:
    """Writer handle for an append-only sweep checkpoint journal.

    Use :meth:`create` for a fresh journal or :meth:`resume` to reopen an
    existing one (validating its fingerprint and recovering completed
    cells).  Records are flushed and fsync'd per append so that completed
    work survives a hard kill.  The writer keeps a running SHA-256 over
    everything it has written so :meth:`record_seal` can close a run with
    a verifiable seal.
    """

    def __init__(
        self,
        path: str,
        fh: IO[str],
        *,
        fingerprint: dict[str, Any] | None = None,
        shard: tuple[int, int] | None = None,
    ) -> None:
        self.path = path
        self._fh = fh
        self._fingerprint = fingerprint or {}
        self._shard = shard
        self._hasher = hashlib.sha256()
        self._records = 0
        self._cells = 0

    def _prime_from_disk(self) -> None:
        """Re-establish the running hash/counters from the file's bytes."""
        with open(self.path, "rb") as fh:
            data = fh.read()
        self._hasher = hashlib.sha256()
        self._records = 0
        self._cells = 0
        for raw, _ in _split_lines(data):
            self._hasher.update(raw)
            self._records += 1
            try:
                if json.loads(raw.decode("utf-8")).get("kind") == "cell":
                    self._cells += 1
            except (json.JSONDecodeError, UnicodeDecodeError, AttributeError):
                pass  # salvage-mode leftovers; counted as records only

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | os.PathLike[str],
        spec: "SweepSpec",
        shard: tuple[int, int] | None = None,
    ) -> "SweepJournal":
        """Start a fresh journal; refuses to clobber an existing one.

        A journal is the only durable copy of hours of completed cells, so
        silently truncating one (e.g. a ``--journal`` run where the user
        forgot ``--resume``) would destroy exactly the work it exists to
        protect.  Raises :class:`JournalError` if *path* already holds data.

        ``shard=(shard_index, n_shards)`` stamps a shard-scoped journal so
        that resume and merge can verify which slice of the grid it holds.
        """
        try:
            fh = open(path, "x", encoding="utf-8")
        except FileExistsError:
            if os.path.getsize(path) > 0:
                raise JournalError(
                    f"{os.fspath(path)}: journal already exists; resume from it "
                    "(repro sweep --resume) or delete it explicitly to start over"
                ) from None
            fh = open(path, "w", encoding="utf-8")
        fingerprint = spec_fingerprint(spec)
        journal = cls(os.fspath(path), fh, fingerprint=fingerprint, shard=shard)
        header = {
            "kind": "header",
            "version": JOURNAL_VERSION,
            "label": spec.label,
            "fingerprint": fingerprint,
        }
        if shard is not None:
            header["shard"] = {"index": int(shard[0]), "of": int(shard[1])}
        journal._append(header)
        return journal

    @classmethod
    def resume(
        cls,
        path: str | os.PathLike[str],
        spec: "SweepSpec",
        shard: tuple[int, int] | None = None,
        salvage: bool = False,
    ) -> tuple["SweepJournal", JournalState]:
        """Reopen *path* for append, returning the recovered state.

        Raises :class:`JournalMismatchError` when the journal belongs to a
        different spec — resuming would otherwise silently mix rows from
        incompatible grids — and :class:`JournalError` when its shard
        stamp disagrees with the requested ``(shard_index, n_shards)``:
        the completed-cell set on disk belongs to a *different slice* of
        the grid, so continuing would silently recompute the wrong subset
        and poison the eventual merge.

        A hard kill can leave a partial trailing line; appending straight
        after it would glue the next record onto the fragment, silently
        dropping that record and corrupting the journal for every later
        load.  The tail is therefore truncated back to the last complete
        record before the file is reopened for append.

        With ``salvage=True`` a journal damaged *mid-file* (bit-flips,
        failed transfers) is repaired first — intact records are kept
        byte-for-byte, corrupt ones quarantined (their cells re-run) —
        instead of raising :class:`JournalIntegrityError`.
        """
        state = load_journal(path, salvage=salvage)
        current = spec_fingerprint(spec)
        if state.fingerprint != current:
            diffs = [
                key
                for key in sorted(set(state.fingerprint) | set(current))
                if state.fingerprint.get(key) != current.get(key)
            ]
            raise JournalMismatchError(
                f"{os.fspath(path)}: journal was written for a different sweep "
                f"spec (mismatched fields: {', '.join(diffs)})"
            )
        wanted = (0, 1) if shard is None else (int(shard[0]), int(shard[1]))
        if state.shard != wanted:
            raise JournalError(
                f"{os.fspath(path)}: journal is stamped shard_index={state.shard[0]} "
                f"of n_shards={state.shard[1]}, but this run requests "
                f"shard_index={wanted[0]} of n_shards={wanted[1]}; resume a shard "
                "journal with the same --shards/--shard-index it was written with"
            )
        if salvage and state.corruption:
            # Rewrite the journal clean (atomic) before appending: corrupt
            # lines must not stay behind to poison every later strict load.
            salvage_journal(path)
        elif state.truncated_tail:
            with open(path, "r+b") as trunc:
                trunc.truncate(state.valid_bytes)
        fh = open(path, "a", encoding="utf-8")
        journal = cls(
            os.fspath(path),
            fh,
            fingerprint=state.fingerprint,
            shard=None if state.shard == (0, 1) else state.shard,
        )
        journal._prime_from_disk()
        return journal, state

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- records -------------------------------------------------------

    def record_cell(
        self,
        seed: int,
        eps: float,
        m: int,
        rep: int,
        rows: list[SweepRow],
        provenance: dict[str, Any] | None = None,
    ) -> None:
        """Checkpoint one completed cell (durable once this returns).

        ``provenance`` attaches execution metadata (worker slot, attempt,
        heartbeat count, lease duration, speculative flag) outside the row
        CRC — it describes how the cell ran, never what it produced.
        """
        payloads = [row_to_payload(r) for r in rows]
        record: dict[str, Any] = {
            "kind": "cell",
            "seed": int(seed),
            "epsilon": float(eps),
            "machines": int(m),
            "repetition": int(rep),
            "rows": payloads,
            "crc": row_crc(int(seed), payloads),
        }
        if provenance is not None:
            record["prov"] = dict(provenance)
        self._append(record)

    def record_failure(self, failure: dict[str, Any]) -> None:
        """Log a quarantined cell (observability; re-run on resume).

        The payload is nested under ``"failure"`` — it carries its own
        ``"kind"`` (crash/timeout/error/corrupt), which must not collide
        with the record-level ``"kind"`` the loader dispatches on.
        """
        self._append({"kind": "failure", "failure": dict(failure)})

    def record_stats(self, stats: dict[str, Any]) -> None:
        """Append a run-stats trailer (wall clock, counters, cache stats).

        One is written per run or resume cycle; the merge layer sums them
        per journal, so cumulative per-shard timing survives any number of
        interruptions.
        """
        self._append({"kind": "stats", **stats})

    def record_seal(self, *, salvaged: bool = False) -> None:
        """Close the run with a seal covering every line written so far.

        Appended on clean exit (the journal stays resumable — records
        appended later simply leave it unsealed until the next clean exit
        seals it again, earlier seals included in the new stream hash).
        """
        self._append(
            make_seal(
                stream_sha256=self._hasher.hexdigest(),
                records=self._records,
                cells=self._cells,
                fingerprint=self._fingerprint,
                shard=self._shard,
                salvaged=salvaged,
            )
        )

    def _append(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, allow_nan=False) + "\n"
        self._fh.write(line)
        self._fh.flush()
        self._hasher.update(line.encode("utf-8"))
        self._records += 1
        if record.get("kind") == "cell":
            self._cells += 1
        try:
            os.fsync(self._fh.fileno())
        except (OSError, ValueError, io.UnsupportedOperation):  # pragma: no cover
            pass  # non-seekable/mock sinks: flush is the best we can do
