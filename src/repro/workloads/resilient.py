"""Fault-tolerant sweep execution.

The scheduler core here is the production path for long benchmark grids,
reached through :func:`repro.workloads.execute.execute_sweep` (the
deprecated :func:`run_sweep_resilient` shim remains for old callers).
Where :func:`repro.workloads.parallel.run_sweep_parallel` was
all-or-nothing — one crashed or hung worker raised out of the pool and
discarded every completed cell — this runner treats cell failure as a
normal event:

* each cell runs in a **fresh worker process** with an optional per-cell
  **timeout** (hung workers are terminated, not waited on);
* failed cells are **retried** with exponential backoff, up to
  ``max_retries`` times, each retry in a brand-new process;
* cells that exhaust their budget are **quarantined** and reported in a
  structured :class:`FailureManifest` — the sweep still returns every
  completed row (graceful degradation) instead of throwing them away;
* results are **validated** before acceptance, so a worker returning
  corrupted rows counts as a failure rather than polluting the dataset;
* completed cells are checkpointed to an append-only JSONL **journal**
  (:mod:`repro.workloads.journal`); ``resume=True`` replays them from
  disk and re-executes only the remainder, bit-identical to an
  uninterrupted run;
* ``SIGINT`` raises :class:`SweepInterrupted` carrying the partial
  result, after flushing the journal — nothing finished is ever lost.

Determinism is unchanged from the serial path: cells draw their
instances from :meth:`SweepSpec.cell_seed`, so retries, worker death and
resumption cannot alter the data.  The chaos harness
(:mod:`repro.testing.chaos`) injects crashes, hangs, transient errors
and corrupted rows to prove it.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import pickle
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.baselines.registry import run_algorithm
from repro.core.guarantees import guarantee_for
from repro.offline.cache import BracketCache, CacheStats
from repro.workloads.journal import SweepJournal, spec_fingerprint
from repro.workloads.sweep import SweepRow, SweepSpec, cell_bracket
from repro.workloads.transport import decorrelated_delay

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.testing.chaos import ChaosPlan

#: How long the scheduler sleeps between reap polls (seconds).
_POLL_INTERVAL = 0.005

#: Grace period between SIGTERM and SIGKILL when reaping a worker.
_KILL_GRACE = 0.5


class SweepExecutionError(RuntimeError):
    """Raised by strict callers when a resilient sweep quarantined cells."""

    def __init__(self, message: str, manifest: "FailureManifest") -> None:
        super().__init__(message)
        self.manifest = manifest


class SweepInterrupted(KeyboardInterrupt):
    """SIGINT during a resilient sweep; carries the flushed partial result."""

    def __init__(self, result: "ResilientSweepResult") -> None:
        super().__init__("sweep interrupted")
        self.result = result


@dataclass(frozen=True)
class CellFailure:
    """One quarantined cell: where it died and how, attempt by attempt."""

    epsilon: float
    machines: int
    repetition: int
    seed: int
    attempts: int
    kind: str  # final failure kind: crash | timeout | error | corrupt
    detail: str
    #: per-attempt "kind: detail" records, oldest first.
    history: tuple[str, ...] = ()

    def as_dict(self) -> dict[str, Any]:
        return {
            "epsilon": self.epsilon,
            "machines": self.machines,
            "repetition": self.repetition,
            "seed": self.seed,
            "attempts": self.attempts,
            "kind": self.kind,
            "detail": self.detail,
            "history": list(self.history),
        }


@dataclass(frozen=True)
class WorkerFailure:
    """One quarantined worker *slot* (elastic mode), failure by failure.

    Cell failures quarantine cells; worker failures quarantine the slot —
    a host/process position that keeps crashing, hanging or missing
    heartbeats is removed from the pool (down to a floor of one) while
    its leased cells are re-dispatched to healthy slots.
    """

    slot: int
    failures: int
    detail: str  # final failure: why the slot was quarantined
    #: per-failure "kind: detail" records, oldest first.
    history: tuple[str, ...] = ()

    def as_dict(self) -> dict[str, Any]:
        return {
            "slot": self.slot,
            "failures": self.failures,
            "detail": self.detail,
            "history": list(self.history),
        }


@dataclass(frozen=True)
class HostFailure:
    """One quarantined remote *host* (remote-elastic mode).

    A whole machine is a failure domain above the worker slot: when a
    host dies (every channel EOF), repeatedly fails its handshake, or
    keeps losing workers, the entire host is quarantined at once and
    every lease it held is requeued charge-free — the cells were never
    at fault.
    """

    host: str
    failures: int
    detail: str  # final failure: why the host was quarantined
    #: per-failure "kind: detail" records, oldest first.
    history: tuple[str, ...] = ()

    def as_dict(self) -> dict[str, Any]:
        return {
            "host": self.host,
            "failures": self.failures,
            "detail": self.detail,
            "history": list(self.history),
        }


@dataclass
class FailureManifest:
    """Structured account of everything that went wrong in a sweep."""

    failures: list[CellFailure] = field(default_factory=list)
    #: cells that succeeded only after >= 1 retry (transient faults).
    recovered: int = 0
    #: total extra attempts spent across all cells.
    retries: int = 0
    cells_total: int = 0
    cells_completed: int = 0
    #: cells replayed from a checkpoint journal instead of re-executed.
    cells_replayed: int = 0
    #: worker slots quarantined after exhausting their failure budget
    #: (elastic mode only; the pool shrinks gracefully to a floor of 1).
    worker_failures: list[WorkerFailure] = field(default_factory=list)
    #: speculative duplicate executions launched during the end-game.
    speculated: int = 0
    #: repetitions skipped by adaptive repetitions (CI already tight).
    cells_skipped: int = 0
    #: remote hosts quarantined as whole failure domains (remote mode
    #: only; their leases were requeued charge-free).
    host_failures: list[HostFailure] = field(default_factory=list)
    #: the remote pool was lost entirely and the sweep finished on the
    #: local fallback workers (graceful degradation, not data loss).
    degraded_to_local: bool = False

    @property
    def quarantined(self) -> int:
        return len(self.failures)

    @property
    def workers_quarantined(self) -> int:
        return len(self.worker_failures)

    @property
    def hosts_quarantined(self) -> int:
        return len(self.host_failures)

    def as_dict(self) -> dict[str, Any]:
        return {
            "cells_total": self.cells_total,
            "cells_completed": self.cells_completed,
            "cells_replayed": self.cells_replayed,
            "cells_skipped": self.cells_skipped,
            "recovered": self.recovered,
            "retries": self.retries,
            "speculated": self.speculated,
            "quarantined": self.quarantined,
            "failures": [f.as_dict() for f in self.failures],
            "workers_quarantined": self.workers_quarantined,
            "worker_failures": [w.as_dict() for w in self.worker_failures],
            "hosts_quarantined": self.hosts_quarantined,
            "host_failures": [h.as_dict() for h in self.host_failures],
            "degraded_to_local": self.degraded_to_local,
        }

    def summary(self) -> str:
        extras = ""
        if self.cells_skipped:
            extras += f", {self.cells_skipped} skipped by adaptive repetitions"
        if self.speculated:
            extras += f", {self.speculated} speculated"
        if self.worker_failures:
            extras += f", {self.workers_quarantined} worker(s) quarantined"
        if self.host_failures:
            extras += f", {self.hosts_quarantined} host(s) quarantined"
        if self.degraded_to_local:
            extras += ", degraded to local pool"
        return (
            f"{self.cells_completed}/{self.cells_total} cells completed "
            f"({self.cells_replayed} replayed from journal, "
            f"{self.recovered} recovered via retry, "
            f"{self.quarantined} quarantined{extras})"
        )


@dataclass
class ResilientSweepResult:
    """Rows in canonical grid order plus the failure manifest."""

    rows: list[SweepRow]
    manifest: FailureManifest
    journal_path: str | None = None
    #: aggregated bracket-cache counters across all workers (dict form of
    #: :class:`repro.offline.cache.CacheStats`); ``None`` without a cache.
    cache_stats: dict[str, Any] | None = None

    @property
    def complete(self) -> bool:
        return not self.manifest.failures


# ---------------------------------------------------------------------------
# cell evaluation (shared with the thin pool-compatible wrapper)
# ---------------------------------------------------------------------------


def run_cell(
    spec: SweepSpec,
    eps: float,
    m: int,
    rep: int,
    algorithm_kwargs: dict[str, dict[str, Any]],
    cache: BracketCache | None = None,
) -> list[SweepRow]:
    """Evaluate one grid cell for every algorithm (worker-side)."""
    seed = spec.cell_seed(eps, m, rep)
    instance = spec.workload(m, eps, seed)
    bracket = cell_bracket(spec, instance, cache)
    rows = []
    for name in spec.algorithms:
        result = run_algorithm(
            name,
            instance,
            record_events=spec.record_events,
            **algorithm_kwargs.get(name, {}),
        )
        rows.append(
            SweepRow(
                epsilon=eps,
                machines=m,
                repetition=rep,
                algorithm=name,
                accepted_load=result.accepted_load,
                accepted_count=result.accepted_count,
                n_jobs=len(instance),
                opt_lower=bracket.lower,
                opt_upper=bracket.upper,
                opt_exact=bracket.exact,
                guarantee=guarantee_for(name, eps, m),
            )
        )
    return rows


def run_cells(
    spec: SweepSpec,
    cells: list[tuple[float, int, int]],
    algorithm_kwargs: dict[str, dict[str, Any]],
    cache: BracketCache | None = None,
    backend: str = "scalar",
) -> list[list[SweepRow]]:
    """Evaluate several grid cells, optionally through the batch backend.

    With ``backend="scalar"`` this is exactly ``[run_cell(...) for cell in
    cells]``.  Otherwise all of the group's simulations are routed through
    :func:`repro.engine.backend.run_simulations` in one call, so compatible
    cells (same algorithm, machine count and job count) step through the
    structure-of-arrays kernel together.  Rows are bit-identical either way
    — the backend seam guarantees it — so journals, resumes and shard
    merges are unaffected by the backend choice.
    """
    if backend == "scalar":
        return [
            run_cell(spec, eps, m, rep, algorithm_kwargs, cache)
            for eps, m, rep in cells
        ]
    from repro.engine.backend import SimulationRequest, run_simulations

    instances = []
    brackets = []
    for eps, m, rep in cells:
        instance = spec.workload(m, eps, spec.cell_seed(eps, m, rep))
        instances.append(instance)
        brackets.append(cell_bracket(spec, instance, cache))
    requests = [
        SimulationRequest(
            name,
            instance,
            algorithm_kwargs.get(name, {}),
            record_events=spec.record_events,
        )
        for instance in instances
        for name in spec.algorithms
    ]
    results = run_simulations(requests, backend=backend)
    rows_per_cell: list[list[SweepRow]] = []
    i = 0
    for (eps, m, rep), instance, bracket in zip(cells, instances, brackets):
        rows = []
        for name in spec.algorithms:
            result = results[i]
            i += 1
            rows.append(
                SweepRow(
                    epsilon=eps,
                    machines=m,
                    repetition=rep,
                    algorithm=name,
                    accepted_load=result.accepted_load,
                    accepted_count=result.accepted_count,
                    n_jobs=len(instance),
                    opt_lower=bracket.lower,
                    opt_upper=bracket.upper,
                    opt_exact=bracket.exact,
                    guarantee=guarantee_for(name, eps, m),
                )
            )
        rows_per_cell.append(rows)
    return rows_per_cell


def validate_sweep_pickles(
    spec: SweepSpec, algorithm_kwargs: dict[str, dict[str, Any]]
) -> None:
    """Fail fast on unpicklable inputs instead of deep inside a worker.

    Checks the workload factory *and* every ``algorithm_kwargs`` value —
    an unpicklable kwarg used to surface as an opaque pool error.
    """
    try:
        pickle.dumps(spec.workload)
    except Exception as exc:
        raise TypeError(
            "the sweep workload factory must be picklable for parallel "
            "execution (use a module-level function or functools.partial, "
            f"not a lambda): {exc}"
        ) from exc
    for name, kwargs in algorithm_kwargs.items():
        try:
            pickle.dumps(kwargs)
        except Exception as exc:
            raise TypeError(
                f"algorithm_kwargs[{name!r}] must be picklable for parallel "
                f"execution (module-level callables and plain data only): {exc}"
            ) from exc


def validate_cell_rows(
    spec: SweepSpec, eps: float, m: int, rep: int, rows: object
) -> str | None:
    """Structural validation of a worker's result; ``None`` means clean.

    Guards the journal (and the returned dataset) against corrupted
    results from a sick worker: wrong shape, misaligned identity fields,
    non-finite or negative measurements, or an inverted OPT bracket.
    """
    if not isinstance(rows, list):
        return f"result is {type(rows).__name__}, not a list of rows"
    if len(rows) != len(spec.algorithms):
        return f"expected {len(spec.algorithms)} rows, got {len(rows)}"
    for row, name in zip(rows, spec.algorithms):
        if not isinstance(row, SweepRow):
            return f"row is {type(row).__name__}, not SweepRow"
        if (row.epsilon, row.machines, row.repetition) != (eps, m, rep):
            return (
                f"row identity {(row.epsilon, row.machines, row.repetition)} "
                f"does not match cell {(eps, m, rep)}"
            )
        if row.algorithm != name:
            return f"row algorithm {row.algorithm!r} misaligned (expected {name!r})"
        if not (math.isfinite(row.accepted_load) and row.accepted_load >= 0.0):
            return f"accepted_load {row.accepted_load!r} is not finite and >= 0"
        if not isinstance(row.accepted_count, int) or not (
            0 <= row.accepted_count <= row.n_jobs
        ):
            return f"accepted_count {row.accepted_count!r} out of range [0, {row.n_jobs}]"
        if not (math.isfinite(row.opt_lower) and math.isfinite(row.opt_upper)):
            return "OPT bracket is not finite"
        if row.opt_lower > row.opt_upper + 1e-9:
            return f"OPT bracket inverted: [{row.opt_lower}, {row.opt_upper}]"
    return None


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------


def _cell_worker(
    conn,
    spec: SweepSpec,
    eps: float,
    m: int,
    rep: int,
    algorithm_kwargs: dict[str, dict[str, Any]],
    chaos: "ChaosPlan | None",
    attempt: int,
    cache: BracketCache | None = None,
) -> None:
    """Run one cell in a dedicated process; report over a pipe.

    Sends ``("ok", rows, cache_stats)`` or ``("error", detail, None)``.
    A crash (or an injected one) sends nothing — the parent detects the
    dead process.  ``cache_stats`` is the worker's bracket-cache counter
    dict (the cache object itself ships as configuration only, so each
    fresh process opens the shared disk tier with zeroed stats).
    """
    try:
        fault = None
        if chaos is not None:
            fault = chaos.fault_for(spec.cell_seed(eps, m, rep), attempt)
            chaos.trigger(fault)  # may _exit, hang, or raise
        rows = run_cell(spec, eps, m, rep, algorithm_kwargs, cache)
        if fault == "corrupt":
            rows = chaos.corrupt_rows(rows)
        conn.send(("ok", rows, None if cache is None else cache.stats.as_dict()))
    except BaseException as exc:  # noqa: BLE001 - must cross the process boundary
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}", None))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


def _group_worker(
    conn,
    spec: SweepSpec,
    cells: list[tuple[float, int, int]],
    algorithm_kwargs: dict[str, dict[str, Any]],
    backend: str,
    cache: BracketCache | None = None,
) -> None:
    """Run a *group lease* of cells in one process; report over a pipe.

    Sends ``("ok", [rows, ...], cache_stats)`` with one row list per cell
    in order.  Group leases exist so the batch backend amortises its
    structure-of-arrays setup over many compatible cells per process; the
    parent demotes a failed group to per-cell scalar attempts, so fault
    isolation is unchanged.
    """
    try:
        rows_per_cell = run_cells(spec, cells, algorithm_kwargs, cache, backend=backend)
        conn.send(
            ("ok", rows_per_cell, None if cache is None else cache.stats.as_dict())
        )
    except BaseException as exc:  # noqa: BLE001 - must cross the process boundary
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}", None))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


#: Cells per group lease when the resilient scheduler may batch.
_GROUP_CELLS = 8


@dataclass
class _Attempt:
    """One scheduled execution of a cell (or of a group lease of cells)."""

    eps: float
    m: int
    rep: int
    seed: int
    attempt: int  # 1-based
    ready_at: float  # monotonic time before which this must not launch
    history: tuple[str, ...] = ()
    #: group lease: (eps, m, rep, seed) per member; ``None`` = single cell.
    group: tuple[tuple[float, int, int, int], ...] | None = None


@dataclass
class _Active:
    task: _Attempt
    process: mp.process.BaseProcess
    conn: Any
    deadline: float | None


def _reap(active: _Active) -> tuple[str, Any, Any] | None:
    """Non-blocking check of a worker; returns an outcome or ``None``.

    Outcomes: ``("ok", rows, cache_stats)``, ``("error", detail, None)``,
    ``("crash", detail, None)``, ``("timeout", detail, None)``.
    """
    if active.conn.poll():
        try:
            status, payload, extra = active.conn.recv()
        except (EOFError, OSError):
            status, payload, extra = (
                "crash",
                "worker closed the pipe without a result",
                None,
            )
        active.process.join()
        return (status, payload, extra)
    if not active.process.is_alive():
        # Exited without sending: died before (or while) reporting.
        code = active.process.exitcode
        return ("crash", f"worker process died with exit code {code}", None)
    if active.deadline is not None and time.monotonic() >= active.deadline:
        _terminate(active.process)
        return ("timeout", "cell exceeded its timeout; worker terminated", None)
    return None


def _terminate(
    process: mp.process.BaseProcess, grace: float = _KILL_GRACE
) -> None:
    """Bounded SIGTERM -> SIGKILL escalation; always reaps the child.

    SIGTERM first (a cooperative worker exits promptly), SIGKILL once the
    grace period expires (a worker that ignores or blocks SIGTERM — e.g.
    one stuck in native code mid-group-lease — must not outlive the
    scheduler).  Every join is bounded, so teardown can never hang on an
    unkillable child; the final join after SIGKILL reaps the process so
    no zombie survives the sweep.
    """
    if not process.is_alive():
        process.join(grace)  # already exited: just reap
        return
    process.terminate()
    process.join(grace)
    if process.is_alive():
        process.kill()
        process.join(grace)


def _terminate_all(
    processes: list[mp.process.BaseProcess], grace: float = _KILL_GRACE
) -> None:
    """Tear down many workers with one shared grace period.

    Signals every process *first*, then waits — escalating serially would
    spend ``grace`` per worker and stretch a SIGINT teardown linearly in
    the pool size.
    """
    for process in processes:
        if process.is_alive():
            process.terminate()
    deadline = time.monotonic() + grace
    for process in processes:
        process.join(max(0.0, deadline - time.monotonic()))
    for process in processes:
        if process.is_alive():
            process.kill()
    for process in processes:
        process.join(grace)


# ---------------------------------------------------------------------------
# shared scheduler plumbing (push scheduler here, pull scheduler in elastic)
# ---------------------------------------------------------------------------


def check_seed_collisions(
    spec: SweepSpec, cells: list[tuple[float, int, int]]
) -> list[int]:
    """Refuse to run a grid whose cell seeds collide; returns the seeds.

    The journal and the completed-cell map key by seed; a collision would
    silently conflate two cells' results.
    """
    seeds = [spec.cell_seed(*cell) for cell in cells]
    if len(set(seeds)) != len(seeds):
        raise ValueError(
            "sweep grid produces colliding cell seeds; refusing to run — "
            "check SweepSpec.cell_seed inputs"
        )
    return seeds


def prepare_journal(
    spec: SweepSpec,
    cells: list[tuple[float, int, int]],
    journal_path: str | os.PathLike[str] | None,
    *,
    resume: bool = False,
    shard: tuple[int, int] | None = None,
    salvage: bool = False,
) -> tuple[SweepJournal | None, dict[int, list[SweepRow]]]:
    """Open (or create) the checkpoint journal and replay completed cells.

    Shared by the push scheduler here and the pull scheduler in
    :mod:`repro.workloads.elastic`, so both modes get identical journal
    creation, resume validation, salvage and replay semantics.  Returns
    ``(journal, completed)`` where ``completed`` maps cell seed to the
    rows replayed from disk (restricted to *cells* — a merged journal may
    hold more than this shard executes).
    """
    completed: dict[int, list[SweepRow]] = {}
    journal: SweepJournal | None = None
    if journal_path is not None:
        if resume:
            journal, state = SweepJournal.resume(
                journal_path, spec, shard=shard, salvage=salvage
            )
            valid_seeds = {spec.cell_seed(*cell) for cell in cells}
            completed = {
                seed: rows
                for seed, rows in state.completed.items()
                if seed in valid_seeds
            }
        else:
            journal = SweepJournal.create(journal_path, spec, shard=shard)
    elif resume:
        raise ValueError("resume=True requires a journal_path")
    return journal, completed


# ---------------------------------------------------------------------------
# the scheduler
# ---------------------------------------------------------------------------


def run_sweep_resilient(
    spec: SweepSpec,
    algorithm_kwargs: dict[str, dict[str, Any]] | None = None,
    *,
    max_workers: int | None = None,
    timeout: float | None = None,
    max_retries: int = 2,
    backoff: float = 0.25,
    journal_path: str | os.PathLike[str] | None = None,
    resume: bool = False,
    chaos: "ChaosPlan | None" = None,
    interrupt_after: int | None = None,
    cache: BracketCache | None = None,
) -> ResilientSweepResult:
    """Execute *spec* fault-tolerantly across fresh worker processes.

    .. deprecated:: 1.0
        Legacy entrypoint, kept as a thin shim; it will be removed in
        version 2.0.  Use :func:`repro.workloads.execute.execute_sweep`
        with an :class:`~repro.workloads.execute.ExecutionPolicy` — it
        carries these keyword arguments as policy fields and adds
        sharding.
    """
    warnings.warn(
        "run_sweep_resilient is deprecated; use "
        "repro.workloads.execute.execute_sweep(spec, ExecutionPolicy(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    if resume and journal_path is None:
        raise ValueError("resume=True requires a journal_path")
    from repro.workloads.execute import ExecutionPolicy, execute_sweep

    policy = ExecutionPolicy(
        parallel=True,
        workers=max_workers,
        timeout=timeout,
        retries=max_retries,
        backoff=backoff,
        journal=journal_path,
        resume=resume,
        cache=cache,
        chaos=chaos,
        interrupt_after=interrupt_after,
    )
    return execute_sweep(spec, policy, algorithm_kwargs)


def _execute_resilient(
    spec: SweepSpec,
    algorithm_kwargs: dict[str, dict[str, Any]] | None = None,
    *,
    max_workers: int | None = None,
    timeout: float | None = None,
    max_retries: int = 2,
    backoff: float = 0.25,
    journal_path: str | os.PathLike[str] | None = None,
    resume: bool = False,
    chaos: "ChaosPlan | None" = None,
    interrupt_after: int | None = None,
    cache: BracketCache | None = None,
    cells: list[tuple[float, int, int]] | None = None,
    shard: tuple[int, int] | None = None,
    salvage: bool = False,
    backend: str = "scalar",
) -> ResilientSweepResult:
    """Scheduler core behind :func:`repro.workloads.execute.execute_sweep`.

    Parameters beyond the classic runner:

    ``timeout``
        per-cell wall-clock budget in seconds; a cell that exceeds it is
        terminated and counted as a ``timeout`` failure (then retried).
    ``max_retries``
        extra attempts per cell after the first, each in a fresh process,
        delayed by a decorrelated-jittered exponential backoff bounded
        by ``backoff * 2**(attempt-1)`` seconds (salted by the cell seed
        under ``spec.base_seed``, so concurrent retries desynchronise
        deterministically — see
        :func:`repro.workloads.transport.decorrelated_delay`).
    ``journal_path`` / ``resume``
        checkpoint completed cells to an append-only JSONL journal; with
        ``resume=True`` the journal is validated against the spec and its
        completed cells are replayed from disk, bit-identically.
    ``chaos``
        a :class:`repro.testing.chaos.ChaosPlan` shipped to every worker
        (fault-injection for tests; ``None`` in production).
    ``interrupt_after``
        testing hook: raise :class:`SweepInterrupted` — through the same
        flush path as a real ``SIGINT`` — once this many *new* cells have
        been journaled.
    ``cache``
        a :class:`repro.offline.cache.BracketCache` shared by every
        worker.  Only its configuration is pickled to workers — each
        fresh process opens the shared on-disk tier itself (atomic-rename
        writes make concurrent writers safe) — and the per-worker
        hit/miss counters are aggregated into ``result.cache_stats``.
    ``cells``
        restrict execution to this subset of the grid (a shard produced
        by :class:`repro.workloads.sharding.ShardPlan`); ``None`` runs
        the full grid.  Cell seeds are unchanged — a sharded cell is
        bit-identical to the same cell in a single-host run.
    ``shard``
        ``(shard_index, n_shards)`` stamp written into (and validated
        against) the journal header, so shard journals can never be
        resumed under different shard flags or merged into the wrong run.
    ``salvage``
        with ``resume=True``, repair a journal damaged mid-file (bit
        flips, failed transfers) instead of raising
        :class:`~repro.workloads.journal.JournalIntegrityError`: corrupt
        records are quarantined, the file is rewritten clean, and the
        affected cells are simply re-executed.

    ``backend``
        kernel backend for the simulations (see
        :mod:`repro.engine.backend`).  With a non-scalar backend — and no
        chaos plan or interrupt hook — pending cells are dispatched as
        *group leases* of up to ``_GROUP_CELLS`` cells per worker so the
        batch kernel amortises across compatible cells.  A failed lease is
        demoted to independent per-cell scalar attempts, so retry
        semantics, validation and journaling stay per-cell.

    Returns a :class:`ResilientSweepResult`; never raises for individual
    cell failures (see ``result.manifest``).
    """
    algorithm_kwargs = algorithm_kwargs or {}
    validate_sweep_pickles(spec, algorithm_kwargs)

    cells = list(spec.cells()) if cells is None else list(cells)
    check_seed_collisions(spec, cells)
    manifest = FailureManifest(cells_total=len(cells))
    journal, completed = prepare_journal(
        spec, cells, journal_path, resume=resume, shard=shard, salvage=salvage
    )
    manifest.cells_replayed = len(completed)

    todo = [
        (eps, m, rep, seed)
        for eps, m, rep in cells
        if (seed := spec.cell_seed(eps, m, rep)) not in completed
    ]
    grouping = backend != "scalar" and chaos is None and interrupt_after is None
    pending: deque[_Attempt] = deque()
    if grouping:
        for lo in range(0, len(todo), _GROUP_CELLS):
            members = tuple(todo[lo : lo + _GROUP_CELLS])
            eps, m, rep, seed = members[0]
            pending.append(
                _Attempt(eps, m, rep, seed, attempt=1, ready_at=0.0, group=members)
            )
    else:
        pending.extend(
            _Attempt(eps, m, rep, seed, attempt=1, ready_at=0.0)
            for eps, m, rep, seed in todo
        )
    workers = max_workers or min(len(pending) or 1, os.cpu_count() or 2)
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    active: list[_Active] = []
    new_cells = 0
    cache_totals = CacheStats() if cache is not None else None
    started = time.monotonic()

    def partial_result() -> ResilientSweepResult:
        return _assemble(spec, cells, completed, manifest, journal, cache_totals)

    def journal_stats(interrupted: bool) -> None:
        if journal is None:
            return
        journal.record_stats(
            {
                "wall_seconds": round(time.monotonic() - started, 6),
                "interrupted": interrupted,
                "scheduler": "static",
                "workers": workers,
                "cells_completed": manifest.cells_completed,
                "cells_replayed": manifest.cells_replayed,
                "recovered": manifest.recovered,
                "retries": manifest.retries,
                "quarantined": manifest.quarantined,
                "cache": None if cache_totals is None else cache_totals.as_dict(),
            }
        )

    try:
        while pending or active:
            now = time.monotonic()
            # Launch ready attempts into free slots.
            while len(active) < workers and pending:
                launchable = next((t for t in pending if t.ready_at <= now), None)
                if launchable is None:
                    break
                pending.remove(launchable)
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                if launchable.group is not None:
                    proc = ctx.Process(
                        target=_group_worker,
                        args=(
                            child_conn,
                            spec,
                            [(e, mm, r) for e, mm, r, _ in launchable.group],
                            algorithm_kwargs,
                            backend,
                            cache,
                        ),
                        daemon=True,
                    )
                    budget = None if timeout is None else timeout * len(launchable.group)
                else:
                    proc = ctx.Process(
                        target=_cell_worker,
                        args=(
                            child_conn,
                            spec,
                            launchable.eps,
                            launchable.m,
                            launchable.rep,
                            algorithm_kwargs,
                            chaos,
                            launchable.attempt,
                            cache,
                        ),
                        daemon=True,
                    )
                    budget = timeout
                proc.start()
                child_conn.close()
                deadline = None if budget is None else now + budget
                active.append(_Active(launchable, proc, parent_conn, deadline))

            # Reap finished / dead / overdue workers.
            still_active: list[_Active] = []
            for entry in active:
                outcome = _reap(entry)
                if outcome is None:
                    still_active.append(entry)
                    continue
                entry.conn.close()
                status, payload, worker_cache = outcome
                task = entry.task
                if task.group is not None:
                    if status == "ok":
                        good, bad = _split_group_payload(spec, task, payload)
                        if cache_totals is not None and worker_cache and good:
                            cache_totals.merge(worker_cache)
                        for (g_eps, g_m, g_rep, g_seed), rows in good:
                            completed[g_seed] = rows
                            manifest.cells_completed += 1
                            if journal is not None:
                                journal.record_cell(g_seed, g_eps, g_m, g_rep, rows)
                            new_cells += 1
                        demote = [(member, detail) for member, detail in bad]
                    else:
                        demote = [
                            (member, f"{status}: {payload}") for member in task.group
                        ]
                    # Demote failed lease members to independent per-cell
                    # attempts with a fresh budget; the lease itself spends
                    # no retries (each member's own failures count).
                    for (g_eps, g_m, g_rep, g_seed), detail in demote:
                        pending.append(
                            _Attempt(
                                g_eps,
                                g_m,
                                g_rep,
                                g_seed,
                                attempt=1,
                                ready_at=time.monotonic()
                                + decorrelated_delay(
                                    backoff, 1, seed=spec.base_seed, salt=g_seed
                                ),
                                history=(f"group-lease {detail}",),
                            )
                        )
                    continue
                if status == "ok":
                    problem = validate_cell_rows(spec, task.eps, task.m, task.rep, payload)
                    if problem is None:
                        completed[task.seed] = payload
                        if cache_totals is not None and worker_cache:
                            cache_totals.merge(worker_cache)
                        manifest.cells_completed += 1
                        if task.attempt > 1 or task.history:
                            manifest.recovered += 1
                        if journal is not None:
                            journal.record_cell(
                                task.seed, task.eps, task.m, task.rep, payload
                            )
                        new_cells += 1
                        if (
                            interrupt_after is not None
                            and new_cells >= interrupt_after
                            and len(completed) < len(cells)
                        ):
                            # Simulated hard kill: in-flight workers are
                            # abandoned exactly as a real SIGINT would.
                            raise KeyboardInterrupt
                        continue
                    status, payload = "corrupt", problem
                # A failure (error / crash / timeout / corrupt): retry or quarantine.
                history = task.history + (f"{status}: {payload}",)
                if task.attempt <= max_retries:
                    manifest.retries += 1
                    pending.append(
                        _Attempt(
                            task.eps,
                            task.m,
                            task.rep,
                            task.seed,
                            attempt=task.attempt + 1,
                            ready_at=time.monotonic()
                            + decorrelated_delay(
                                backoff,
                                task.attempt,
                                seed=spec.base_seed,
                                salt=task.seed,
                            ),
                            history=history,
                        )
                    )
                else:
                    failure = CellFailure(
                        epsilon=task.eps,
                        machines=task.m,
                        repetition=task.rep,
                        seed=task.seed,
                        attempts=task.attempt,
                        kind=status,
                        detail=str(payload),
                        history=history,
                    )
                    manifest.failures.append(failure)
                    if journal is not None:
                        journal.record_failure(failure.as_dict())
            active = still_active
            if pending or active:
                time.sleep(_POLL_INTERVAL)
        manifest.cells_completed = len(completed) - manifest.cells_replayed
        journal_stats(interrupted=False)
        if journal is not None:
            # Clean exit: seal the journal so the transport/merge layer can
            # verify it arrived bit-identical (repro verify / collect).
            journal.record_seal()
    except KeyboardInterrupt:
        _terminate_all([entry.process for entry in active])
        for entry in active:
            entry.conn.close()
        journal_stats(interrupted=True)
        raise SweepInterrupted(partial_result()) from None
    finally:
        if journal is not None:
            journal.close()

    return _assemble(spec, cells, completed, manifest, journal, cache_totals)


def _split_group_payload(
    spec: SweepSpec, task: _Attempt, payload: object
) -> tuple[list, list]:
    """Validate a group lease's payload; (good, bad) member lists.

    ``good`` holds ``(member, rows)`` for cells whose rows validate;
    ``bad`` holds ``(member, detail)`` for the rest.  A malformed payload
    (wrong type or length) condemns every member.
    """
    members = task.group or ()
    if not isinstance(payload, list) or len(payload) != len(members):
        size = len(payload) if isinstance(payload, list) else "n/a"
        detail = (
            f"corrupt: group payload is {type(payload).__name__} of length "
            f"{size}, expected {len(members)} row lists"
        )
        return [], [(member, detail) for member in members]
    good, bad = [], []
    for member, rows in zip(members, payload):
        g_eps, g_m, g_rep, _ = member
        problem = validate_cell_rows(spec, g_eps, g_m, g_rep, rows)
        if problem is None:
            good.append((member, rows))
        else:
            bad.append((member, f"corrupt: {problem}"))
    return good, bad


def _assemble(
    spec: SweepSpec,
    cells: list[tuple[float, int, int]],
    completed: dict[int, list[SweepRow]],
    manifest: FailureManifest,
    journal: SweepJournal | None,
    cache_totals: CacheStats | None = None,
) -> ResilientSweepResult:
    """Rows in canonical grid order; quarantined cells are simply absent."""
    rows: list[SweepRow] = []
    for eps, m, rep in cells:
        rows.extend(completed.get(spec.cell_seed(eps, m, rep), []))
    return ResilientSweepResult(
        rows=rows,
        manifest=manifest,
        journal_path=None if journal is None else journal.path,
        cache_stats=None if cache_totals is None else cache_totals.as_dict(),
    )


__all__ = [
    "CellFailure",
    "FailureManifest",
    "HostFailure",
    "ResilientSweepResult",
    "SweepExecutionError",
    "SweepInterrupted",
    "WorkerFailure",
    "check_seed_collisions",
    "prepare_journal",
    "run_cell",
    "run_cells",
    "run_sweep_resilient",
    "spec_fingerprint",
    "validate_cell_rows",
    "validate_sweep_pickles",
]
