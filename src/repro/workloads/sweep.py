"""Parameter sweeps: the benchmark harness's workhorse.

A :class:`SweepSpec` is a declarative grid — slack values, machine counts,
repetitions, a workload factory and a list of algorithm names — executed
with per-cell deterministic seeds (derived via ``SeedSequence``-style
folding so results are independent of execution order) into flat rows
ready for the table/plot layer.  Execution itself lives in
:func:`repro.workloads.execute.execute_sweep`; the historical
:func:`run_sweep` remains as a deprecated serial shim.

Every run goes through :func:`repro.baselines.registry.run_algorithm` and
therefore through the shared simulation kernel: sweep cells carry exactly
the same validation and instrumentation as single runs (set
``SweepSpec.record_events`` to capture per-decision event streams in each
run's ``detail.meta``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.model.instance import Instance
from repro.offline.bracket import OptBracket
from repro.offline.cache import BracketCache, cached_opt_bracket
from repro.utils.rng import interleave_seeds

#: Signature of a workload factory: (machines, epsilon, seed) -> Instance.
WorkloadFactory = Callable[[int, float, int], Instance]


def cell_seed_for(base_seed: int, eps: float, m: int, rep: int) -> int:
    """Deterministic per-cell seed, independent of iteration order.

    The single source of truth for cell identity: :class:`SweepSpec`, the
    checkpoint journal and the shard/merge layer all derive seeds through
    this function, so a cell keeps the same key across hosts, resumes and
    shard boundaries.  Notably it is computable from a journal's header
    fingerprint alone (``base_seed`` plus the grid values) — no workload
    factory or spec object required.

    The epsilon hash is folded at full 64-bit width: float hashes of
    dyadic rationals (0.5, 0.25, …) are high powers of two, so a 32-bit
    mask used to collapse them all to 0 and distinct epsilons could
    collide on one seed — fatal for the checkpoint journal, which keys
    completed cells by this value.
    """
    return interleave_seeds(
        [base_seed, hash(round(eps, 12)) & 0xFFFFFFFFFFFFFFFF, m, rep]
    )


@dataclass(frozen=True)
class SweepRow:
    """One (epsilon, m, repetition, algorithm) measurement."""

    epsilon: float
    machines: int
    repetition: int
    algorithm: str
    accepted_load: float
    accepted_count: int
    n_jobs: int
    opt_lower: float
    opt_upper: float
    opt_exact: bool
    guarantee: float | None

    @property
    def ratio_upper(self) -> float:
        """Conservative empirical ratio estimate ``opt_upper / load``.

        This *over*-estimates the true competitive ratio, so staying below
        a theoretical guarantee with this number is a certified check.
        """
        return float("inf") if self.accepted_load <= 0 else self.opt_upper / self.accepted_load

    @property
    def ratio_lower(self) -> float:
        """Optimistic ratio estimate ``opt_lower / load`` (``<=`` truth)."""
        return float("inf") if self.accepted_load <= 0 else self.opt_lower / self.accepted_load

    def as_dict(self) -> dict[str, Any]:
        """Flat dict form (CSV/JSON-friendly)."""
        return {
            "epsilon": self.epsilon,
            "machines": self.machines,
            "repetition": self.repetition,
            "algorithm": self.algorithm,
            "accepted_load": self.accepted_load,
            "accepted_count": self.accepted_count,
            "n_jobs": self.n_jobs,
            "opt_lower": self.opt_lower,
            "opt_upper": self.opt_upper,
            "opt_exact": self.opt_exact,
            "ratio_upper": self.ratio_upper,
            "ratio_lower": self.ratio_lower,
            "guarantee": self.guarantee,
        }


@dataclass
class SweepSpec:
    """Declarative sweep grid."""

    epsilons: Sequence[float]
    machine_counts: Sequence[int]
    algorithms: Sequence[str]
    workload: WorkloadFactory
    repetitions: int = 3
    base_seed: int = 2020
    force_bounds: bool = False
    exact_limit: int | None = None
    label: str = "sweep"
    #: Capture kernel event streams for every run (identical serial/parallel).
    record_events: bool = False

    def cells(self) -> Iterable[tuple[float, int, int]]:
        """Iterate the grid: (epsilon, machines, repetition)."""
        for eps in self.epsilons:
            for m in self.machine_counts:
                for rep in range(self.repetitions):
                    yield eps, m, rep

    def cell_seed(self, eps: float, m: int, rep: int) -> int:
        """Deterministic per-cell seed (see :func:`cell_seed_for`)."""
        return cell_seed_for(self.base_seed, eps, m, rep)


def cell_bracket(
    spec: SweepSpec, instance: Instance, cache: BracketCache | None = None
) -> OptBracket:
    """Offline bracket for one sweep cell, through an optional cache.

    The single place the sweep layer turns a cell instance into its OPT
    reference — both the serial path and the resilient runner's workers
    route through it, so a cache hit is bit-identical to a recompute by
    construction.
    """
    return cached_opt_bracket(
        instance,
        force_bounds=spec.force_bounds,
        cache=cache,
        **({"exact_limit": spec.exact_limit} if spec.exact_limit is not None else {}),
    )


def run_sweep(
    spec: SweepSpec,
    algorithm_kwargs: dict[str, dict[str, Any]] | None = None,
    cache: BracketCache | None = None,
) -> list[SweepRow]:
    """Execute *spec* serially; returns one row per (cell, algorithm).

    .. deprecated:: 1.0
        Legacy entrypoint, kept as a thin shim; it will be removed in
        version 2.0.  Use :func:`repro.workloads.execute.execute_sweep` —
        the default :class:`~repro.workloads.execute.ExecutionPolicy` is
        exactly this serial in-process path and the rows are
        bit-identical.
    """
    warnings.warn(
        "run_sweep is deprecated; use repro.workloads.execute.execute_sweep"
        "(spec) — the default ExecutionPolicy is the serial path",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.workloads.execute import ExecutionPolicy, execute_sweep

    return execute_sweep(spec, ExecutionPolicy(cache=cache), algorithm_kwargs).rows


def rows_to_csv(rows: Iterable[SweepRow]) -> str:
    """Serialise sweep rows to CSV text (archival / external plotting)."""
    rows = list(rows)
    columns = [
        "epsilon",
        "machines",
        "repetition",
        "algorithm",
        "accepted_load",
        "accepted_count",
        "n_jobs",
        "opt_lower",
        "opt_upper",
        "opt_exact",
        "ratio_upper",
        "ratio_lower",
        "guarantee",
    ]
    lines = [",".join(columns)]
    for row in rows:
        data = row.as_dict()
        lines.append(
            ",".join(
                "" if data[col] is None else f"{data[col]!r}".strip("'")
                for col in columns
            )
        )
    return "\n".join(lines) + "\n"


def aggregate_rows(rows: Iterable[SweepRow]) -> list[dict[str, Any]]:
    """Average repetitions: one summary dict per (epsilon, m, algorithm)."""
    groups: dict[tuple[float, int, str], list[SweepRow]] = {}
    for row in rows:
        groups.setdefault((row.epsilon, row.machines, row.algorithm), []).append(row)
    out = []
    for (eps, m, name), grp in sorted(groups.items()):
        loads = [r.accepted_load for r in grp]
        ratios = [r.ratio_upper for r in grp if r.accepted_load > 0]
        out.append(
            {
                "epsilon": eps,
                "machines": m,
                "algorithm": name,
                "mean_load": sum(loads) / len(loads),
                "mean_ratio_upper": sum(ratios) / len(ratios) if ratios else float("inf"),
                "max_ratio_upper": max(ratios) if ratios else float("inf"),
                "guarantee": grp[0].guarantee,
                "repetitions": len(grp),
            }
        )
    return out
