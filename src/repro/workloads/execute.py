"""Unified sweep execution: one entrypoint, one policy object.

The sweep surface historically grew three overlapping entrypoints —
``run_sweep`` (serial), ``run_sweep_parallel`` (strict multiprocess) and
``run_sweep_resilient`` (fault-tolerant, journaled) — each with its own
drifting keyword set.  :func:`execute_sweep` replaces all three behind a
single contract:

* **what** to run is the :class:`~repro.workloads.sweep.SweepSpec`;
* **how** to run it is the :class:`ExecutionPolicy`, a frozen dataclass
  unifying the scattered kwargs (workers, timeout, retries, journal,
  resume, cache, shards, …);
* the result is always a
  :class:`~repro.workloads.resilient.ResilientSweepResult` — rows in
  canonical grid order, a :class:`~repro.workloads.resilient.FailureManifest`
  and merged bracket-cache counters — whichever path executed.

Determinism is policy-independent: every cell draws its instance from
:func:`repro.workloads.sweep.cell_seed_for`, so the serial path, the
multiprocess path and any shard of a multi-host run produce bit-identical
rows for the same spec.  The legacy entrypoints remain as thin shims that
build a policy and emit ``DeprecationWarning``.

Examples
--------

Serial, in-process (the old ``run_sweep``)::

    result = execute_sweep(spec)

Fault-tolerant production run (the old ``run_sweep_resilient``)::

    policy = ExecutionPolicy(workers=8, timeout=120.0, retries=2,
                             journal="sweep.jsonl")
    result = execute_sweep(spec, policy)

Shard 2 of a 4-host run (see :mod:`repro.workloads.sharding`)::

    policy = ExecutionPolicy(shards=4, shard_index=2,
                             journal="shard2.jsonl")
    result = execute_sweep(spec, policy)
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

from repro.engine.backend import BACKEND_CHOICES
from repro.offline.cache import BracketCache
from repro.workloads.resilient import (
    FailureManifest,
    ResilientSweepResult,
    SweepExecutionError,
    _execute_resilient,
    run_cells,
)
from repro.workloads.sweep import SweepSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.testing.chaos import ChaosPlan, HostChaosPlan, WorkerChaosPlan


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a sweep runs: every execution knob in one frozen value object.

    The default policy is the serial in-process path (cheapest for small
    grids and interactive use).  Setting any multiprocess-only field —
    ``parallel``, ``workers``, ``timeout``, ``journal``, ``resume``,
    ``shards`` (> 1), ``chaos`` or ``interrupt_after`` — routes execution
    through the fault-tolerant scheduler (fresh worker processes,
    retries, quarantine, checkpoint journal).  ``retries``/``backoff``
    only apply on that path.
    """

    #: Force the fault-tolerant multiprocess scheduler even with defaults
    #: elsewhere (implied by workers/timeout/journal/resume/shards/chaos).
    parallel: bool = False
    #: Worker process count; ``None`` sizes to the pending cells / CPUs.
    workers: int | None = None
    #: Per-cell wall-clock budget in seconds; hung workers are terminated.
    timeout: float | None = None
    #: Extra attempts per failed cell, each in a fresh process.
    retries: int = 2
    #: Base retry delay in seconds, doubled per attempt.
    backoff: float = 0.25
    #: Append-only JSONL checkpoint journal path (None = no journal).
    journal: str | os.PathLike[str] | None = None
    #: Replay completed cells from ``journal`` and run only the remainder.
    resume: bool = False
    #: With ``resume``: repair a journal damaged mid-file (bit flips,
    #: failed transfers) instead of raising — corrupt records are
    #: quarantined, the file is rewritten clean, and their cells re-run.
    salvage: bool = False
    #: Bracket cache: a ready :class:`~repro.offline.cache.BracketCache`,
    #: ``True`` for the default directory, or ``None``/``False`` for off.
    cache: BracketCache | bool | None = None
    #: Cache directory (implies caching when set and ``cache`` is unset).
    cache_dir: str | os.PathLike[str] | None = None
    #: Partition the grid into this many disjoint shards (1 = no sharding).
    shards: int = 1
    #: Which shard this host executes (required when ``shards > 1``).
    shard_index: int | None = None
    #: Raise :class:`~repro.workloads.resilient.SweepExecutionError` if any
    #: cell is quarantined instead of degrading gracefully.
    strict: bool = False
    #: Fault-injection plan shipped to workers (tests only).
    chaos: "ChaosPlan | None" = None
    #: Testing hook: simulate a hard kill after this many new cells.
    interrupt_after: int | None = None
    #: Kernel backend for the simulations: ``"auto"`` (batch where it
    #: pays off), ``"scalar"`` (golden reference) or ``"batch"`` (loud
    #: fallback for unsupported algorithms).  See
    #: :mod:`repro.engine.backend` and ``docs/engine_backends.md``.
    backend: str = "auto"
    #: Run the immediate-model batch kernels through the optional
    #: numba-jitted inner loop (:mod:`repro.engine.jit`): exports
    #: ``REPRO_NUMBA=1`` for the duration of the sweep so worker
    #: processes inherit it.  Falls back loudly
    #: (:class:`~repro.engine.backend.BackendFallbackWarning`) when numba
    #: is not installed — results are identical either way.
    jit: bool = False
    #: Pull-based elastic scheduler (:mod:`repro.workloads.elastic`):
    #: persistent workers lease cells from a shared queue, heartbeats
    #: separate slow workers from hung ones, dead workers are respawned
    #: (then quarantined) and their leases re-dispatched.
    elastic: bool = False
    #: With ``elastic``: speculatively re-execute straggler cells once
    #: the queue runs dry (first verified result wins; duplicates are
    #: asserted bit-identical).
    speculate: bool = True
    #: With ``elastic``: issue repetitions lazily and skip the remainder
    #: of a grid config once the bootstrap CI of every algorithm's mean
    #: accepted load is tight (see ``adaptive_rel_tol``).
    adaptive_reps: bool = False
    #: Repetitions always executed per config before the CI is consulted.
    adaptive_min_reps: int = 2
    #: Relative CI halfwidth below which remaining reps are skipped.
    adaptive_rel_tol: float = 0.01
    #: Worker heartbeat cadence in seconds (elastic only).
    heartbeat_interval: float = 0.1
    #: Lease deadline in seconds; a lease whose worker misses heartbeats
    #: for this long is presumed dead and re-dispatched.  ``None`` uses
    #: 10x ``heartbeat_interval``.
    lease_timeout: float | None = None
    #: Worker-slot failures tolerated before the slot is quarantined.
    worker_max_failures: int = 3
    #: Worker-level fault-injection plan (tests only; implies elastic).
    worker_chaos: "WorkerChaosPlan | None" = None
    #: Remote elastic execution (:mod:`repro.workloads.remote`): a
    #: ``hosts.json`` registry path or a tuple of
    #: :class:`~repro.workloads.remote.HostSpec` entries.  The sweep's
    #: lease queue is served to worker processes on these hosts over the
    #: wire protocol (handshake-verified, CRC'd, seq-deduped).
    hosts: Any = None
    #: Network-level fault-injection plan (tests only; requires hosts).
    host_chaos: "HostChaosPlan | None" = None
    #: Host failures (channel EOF, handshake timeout, protocol garbage)
    #: tolerated per host before the whole host is quarantined.
    host_max_failures: int = 2
    #: Seconds a freshly launched remote worker has to say ``hello``.
    handshake_timeout: float = 30.0
    #: When every remote host is quarantined, finish the sweep on local
    #: fallback workers (recorded as ``manifest.degraded_to_local``)
    #: instead of quarantining the remaining cells.
    local_fallback: bool = True

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_CHOICES:
            raise ValueError(
                f"unknown backend {self.backend!r}: expected one of "
                f"{BACKEND_CHOICES}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.shards > 1 and self.shard_index is None:
            raise ValueError(
                f"a sharded policy (shards={self.shards}) requires shard_index"
            )
        if self.shard_index is not None and not 0 <= self.shard_index < self.shards:
            raise ValueError(
                f"shard_index {self.shard_index} out of range [0, {self.shards})"
            )
        if self.resume and self.journal is None:
            raise ValueError("resume=True requires a journal path")
        if self.salvage and not self.resume:
            raise ValueError("salvage=True requires resume=True")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.cache is False and self.cache_dir is not None:
            raise ValueError("cache=False conflicts with an explicit cache_dir")
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, got {self.heartbeat_interval}"
            )
        if self.lease_timeout is not None and self.lease_timeout <= self.heartbeat_interval:
            raise ValueError(
                f"lease_timeout ({self.lease_timeout}) must exceed the "
                f"heartbeat_interval ({self.heartbeat_interval}) — a lease "
                "must survive at least one missed beat"
            )
        if self.worker_max_failures < 1:
            raise ValueError(
                f"worker_max_failures must be >= 1, got {self.worker_max_failures}"
            )
        if self.adaptive_min_reps < 2:
            raise ValueError(
                "adaptive_min_reps must be >= 2 (the bootstrap CI needs at "
                f"least two samples), got {self.adaptive_min_reps}"
            )
        if self.adaptive_rel_tol <= 0:
            raise ValueError(
                f"adaptive_rel_tol must be positive, got {self.adaptive_rel_tol}"
            )
        if not self.elastic:
            if self.adaptive_reps:
                raise ValueError("adaptive_reps=True requires elastic=True")
            if self.worker_chaos is not None:
                raise ValueError("worker_chaos requires elastic=True")
        if self.host_max_failures < 1:
            raise ValueError(
                f"host_max_failures must be >= 1, got {self.host_max_failures}"
            )
        if self.handshake_timeout <= 0:
            raise ValueError(
                f"handshake_timeout must be positive, got {self.handshake_timeout}"
            )
        if self.hosts is None:
            if self.host_chaos is not None:
                raise ValueError("host_chaos requires hosts")
        else:
            if self.worker_chaos is not None:
                raise ValueError("worker_chaos is slot-level (local elastic); "
                                 "use host_chaos with hosts")
            if self.adaptive_reps:
                raise ValueError("adaptive_reps is not supported with hosts")

    # -- derived views -------------------------------------------------

    @property
    def sharded(self) -> bool:
        """True when this policy executes one shard of a larger grid."""
        return self.shards > 1

    @property
    def needs_processes(self) -> bool:
        """True when any field demands the fault-tolerant scheduler."""
        return (
            self.parallel
            or self.elastic
            or self.hosts is not None
            or self.workers is not None
            or self.timeout is not None
            or self.journal is not None
            or self.resume
            or self.sharded
            or self.chaos is not None
            or self.interrupt_after is not None
        )

    def resolve_cache(self) -> BracketCache | None:
        """Materialise the policy's bracket cache (``None`` = caching off)."""
        if isinstance(self.cache, BracketCache):
            return self.cache
        if self.cache is True or (self.cache is None and self.cache_dir is not None):
            return BracketCache(self.cache_dir)
        return None

    def with_shard(self, shard_index: int) -> "ExecutionPolicy":
        """Copy of this policy pointed at a different shard index."""
        return replace(self, shard_index=shard_index)


#: Cells per :func:`repro.workloads.resilient.run_cells` call on the serial
#: path — bounds batch working-set memory while amortising kernel setup.
_SERIAL_GROUP = 32


def _execute_serial(
    spec: SweepSpec,
    algorithm_kwargs: dict[str, dict[str, Any]],
    cache: BracketCache | None,
    backend: str = "auto",
) -> ResilientSweepResult:
    """In-process fast path: no worker processes, no journal, no retries."""
    cells = list(spec.cells())
    rows = []
    for lo in range(0, len(cells), _SERIAL_GROUP):
        group = cells[lo : lo + _SERIAL_GROUP]
        for cell_rows in run_cells(spec, group, algorithm_kwargs, cache, backend):
            rows.extend(cell_rows)
    manifest = FailureManifest(cells_total=len(cells), cells_completed=len(cells))
    return ResilientSweepResult(
        rows=rows,
        manifest=manifest,
        journal_path=None,
        cache_stats=None if cache is None else cache.stats.as_dict(),
    )


def execute_sweep(
    spec: SweepSpec,
    policy: ExecutionPolicy | None = None,
    algorithm_kwargs: dict[str, dict[str, Any]] | None = None,
) -> ResilientSweepResult:
    """Execute *spec* under *policy*; the single sweep entrypoint.

    Dispatches between the serial in-process path and the fault-tolerant
    multiprocess scheduler based on the policy (see
    :class:`ExecutionPolicy`), restricting to the policy's shard when
    ``shards > 1``.  Rows are bit-identical across paths for the same
    spec — the choice of policy is purely operational.

    Raises :class:`~repro.workloads.resilient.SweepExecutionError` when
    ``policy.strict`` and any cell was quarantined; the serial path
    propagates cell exceptions directly (it has no quarantine machinery).
    """
    policy = policy if policy is not None else ExecutionPolicy()
    algorithm_kwargs = algorithm_kwargs or {}
    cache = policy.resolve_cache()
    if policy.jit:
        from repro.engine import jit as _jit

        if not _jit.numba_available():
            import warnings

            from repro.engine.backend import BackendFallbackWarning

            warnings.warn(
                BackendFallbackWarning(
                    "ExecutionPolicy(jit=True) requests the numba-jitted "
                    "batch kernel but numba is not installed; the sweep "
                    "runs on the NumPy kernel instead (results are "
                    "identical, throughput is not)"
                ),
                stacklevel=2,
            )
        prior = os.environ.get(_jit.JIT_ENV)
        os.environ[_jit.JIT_ENV] = "1"
        try:
            return _execute_with_policy(spec, policy, algorithm_kwargs, cache)
        finally:
            if prior is None:
                os.environ.pop(_jit.JIT_ENV, None)
            else:
                os.environ[_jit.JIT_ENV] = prior
    return _execute_with_policy(spec, policy, algorithm_kwargs, cache)


def _execute_with_policy(
    spec: SweepSpec,
    policy: ExecutionPolicy,
    algorithm_kwargs: dict[str, dict[str, Any]],
    cache: BracketCache | None,
) -> ResilientSweepResult:
    """The policy dispatch body of :func:`execute_sweep` (post jit setup)."""
    if policy.needs_processes:
        cells = None
        shard = None
        if policy.sharded:
            from repro.workloads.sharding import ShardPlan

            plan = ShardPlan.build(spec, policy.shards)
            cells = plan.cells_for(policy.shard_index)
            shard = (policy.shard_index, policy.shards)
        if policy.hosts is not None:
            from repro.workloads.remote import _execute_remote

            result = _execute_remote(
                spec,
                algorithm_kwargs,
                hosts=policy.hosts,
                max_workers=policy.workers,
                timeout=policy.timeout,
                max_retries=policy.retries,
                journal_path=policy.journal,
                resume=policy.resume,
                salvage=policy.salvage,
                chaos=policy.chaos,
                host_chaos=policy.host_chaos,
                interrupt_after=policy.interrupt_after,
                cache=cache,
                cells=cells,
                shard=shard,
                backend=policy.backend,
                heartbeat_interval=policy.heartbeat_interval,
                lease_timeout=policy.lease_timeout,
                speculate=policy.speculate,
                host_max_failures=policy.host_max_failures,
                handshake_timeout=policy.handshake_timeout,
                local_fallback=policy.local_fallback,
            )
        elif policy.elastic:
            from repro.workloads.elastic import _execute_elastic

            result = _execute_elastic(
                spec,
                algorithm_kwargs,
                max_workers=policy.workers,
                timeout=policy.timeout,
                max_retries=policy.retries,
                journal_path=policy.journal,
                resume=policy.resume,
                salvage=policy.salvage,
                chaos=policy.chaos,
                worker_chaos=policy.worker_chaos,
                interrupt_after=policy.interrupt_after,
                cache=cache,
                cells=cells,
                shard=shard,
                backend=policy.backend,
                heartbeat_interval=policy.heartbeat_interval,
                lease_timeout=policy.lease_timeout,
                speculate=policy.speculate,
                adaptive_reps=policy.adaptive_reps,
                adaptive_min_reps=policy.adaptive_min_reps,
                adaptive_rel_tol=policy.adaptive_rel_tol,
                worker_max_failures=policy.worker_max_failures,
            )
        else:
            result = _execute_resilient(
                spec,
                algorithm_kwargs,
                max_workers=policy.workers,
                timeout=policy.timeout,
                max_retries=policy.retries,
                backoff=policy.backoff,
                journal_path=policy.journal,
                resume=policy.resume,
                salvage=policy.salvage,
                chaos=policy.chaos,
                interrupt_after=policy.interrupt_after,
                cache=cache,
                cells=cells,
                shard=shard,
                backend=policy.backend,
            )
    else:
        result = _execute_serial(spec, algorithm_kwargs, cache, policy.backend)
    if policy.strict and result.manifest.failures:
        first = result.manifest.failures[0]
        raise SweepExecutionError(
            f"{result.manifest.quarantined} sweep cell(s) failed; first: "
            f"cell (eps={first.epsilon}, m={first.machines}, rep={first.repetition}) "
            f"[{first.kind}] {first.detail}",
            result.manifest,
        )
    return result


__all__ = ["ExecutionPolicy", "execute_sweep"]
