"""Elastic, pull-based sweep execution: leases, heartbeats, speculation.

The static scheduler in :mod:`repro.workloads.resilient` pushes cells at
workers (and :class:`~repro.workloads.sharding.ShardPlan` fixes cell->host
assignment up front), so one slow or dying worker stretches the whole
sweep — E24 measured a 1.96x straggler ratio that per-cell retries cannot
fix.  This module inverts the control flow: workers *pull* cells from a
shared :class:`CellQueue`, and every grant is a **lease** — a revocable
commitment to a cell that only becomes final when its verified journal
row lands.  Revocability is what makes the pool elastic:

* **Heartbeats** extend a lease's deadline while the worker computes, so
  a *slow* worker keeps its lease (bounded only by the hard per-cell
  ``timeout``) while a *hung or dead* one — no heartbeats — expires and
  has its cell re-dispatched to a healthy slot.
* **Dead-worker detection**: a worker process that exits without a
  result has its lease released and re-queued immediately, the slot's
  failure count incremented, and the slot respawned — until its failure
  budget is spent, at which point the slot is **quarantined** (folded
  into :class:`~repro.workloads.resilient.FailureManifest` as a
  :class:`~repro.workloads.resilient.WorkerFailure`) and the pool
  shrinks.  The pool never drops below one live slot, so a sweep always
  makes progress.
* **Speculative re-execution**: once the queue runs dry, idle workers
  re-execute the longest-running outstanding cells (at most one extra
  copy per cell).  First verified result wins; a duplicate result is
  asserted bit-identical to the winner, so speculation doubles as a live
  determinism check — a mismatch raises :class:`SpeculationMismatch`
  rather than journaling either copy silently.
* **Adaptive repetitions** (opt-in): repetitions of a grid config are
  issued incrementally, and once the bootstrap confidence interval of
  every algorithm's mean accepted load is tight the remaining reps are
  skipped (counted in ``manifest.cells_skipped``) instead of executed.

Determinism is unchanged: cells draw their instances from
:meth:`SweepSpec.cell_seed`, so re-dispatch, speculation and worker death
cannot alter the data — an elastic chaos run merges bit-identical to the
serial scalar run.  Lease/heartbeat provenance rides on journal rows
*outside* the row CRC (see :mod:`repro.workloads.journal`).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import multiprocessing as mp

from repro.offline.cache import BracketCache, CacheStats
from repro.workloads.resilient import (
    CellFailure,
    FailureManifest,
    ResilientSweepResult,
    SweepInterrupted,
    WorkerFailure,
    _assemble,
    _terminate,
    _terminate_all,
    check_seed_collisions,
    prepare_journal,
    run_cell,
    run_cells,
    validate_cell_rows,
    validate_sweep_pickles,
)
from repro.workloads.sweep import SweepRow, SweepSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.testing.chaos import ChaosPlan, WorkerChaosPlan

#: Scheduler poll cadence (seconds) — bounds dispatch/reap latency.
_POLL_INTERVAL = 0.005

#: Default heartbeat cadence (seconds) inside a worker.
DEFAULT_HEARTBEAT_INTERVAL = 0.1

#: Lease deadline as a multiple of the heartbeat interval.  A lease must
#: survive several consecutive lost heartbeats before it is presumed dead
#: — one delayed scheduler poll must not trigger a spurious revocation.
LEASE_TIMEOUT_BEATS = 10


class SpeculationMismatch(RuntimeError):
    """Two executions of the same cell disagreed bit-for-bit.

    Raised when a duplicate result (speculation, or an injected
    ``duplicate_result`` fault) does not match the already-accepted rows
    for its cell.  This is never a scheduling artifact — cells are pure
    functions of their seed — so it indicates genuine nondeterminism in
    the simulation stack and must fail the sweep loudly.
    """


# ---------------------------------------------------------------------------
# the lease queue (pure state machine — no processes, no wall clock)
# ---------------------------------------------------------------------------


@dataclass
class Lease:
    """One revocable commitment of a cell to a worker slot."""

    eps: float
    m: int
    rep: int
    seed: int
    worker: int
    attempt: int  # 1-based
    granted_at: float
    #: soft deadline, extended by every heartbeat; expiry = presumed dead.
    deadline: float
    #: hard wall-clock bound (``granted_at + timeout``); ``None`` = none.
    hard_deadline: float | None
    heartbeats: int = 0
    #: an end-game duplicate of an outstanding lease, not a fresh attempt.
    speculative: bool = False
    history: tuple[str, ...] = ()


@dataclass
class _PendingCell:
    eps: float
    m: int
    rep: int
    seed: int
    attempt: int  # next attempt number (1-based)
    history: tuple[str, ...] = ()


class CellQueue:
    """Work-stealing cell queue with revocable leases.

    A pure state machine: every method takes ``now`` explicitly and the
    class touches no processes, pipes or clocks, so lease semantics are
    directly property-testable (any interleaving of grant / heartbeat /
    expiry / release / completion must converge to the same completed
    rows — see ``tests/workloads/test_elastic.py``).

    Invariants:

    * at most one lease per worker slot;
    * at most ``max_copies`` concurrent leases per cell (primary +
      speculative end-game copies);
    * a cell is ``pending``, leased, ``completed`` or quarantined
      (``failures``) — never two at once;
    * duplicate completions must be bit-identical or
      :class:`SpeculationMismatch` is raised.
    """

    def __init__(
        self,
        cells: list[tuple[float, int, int, int]],
        *,
        retries: int = 2,
        lease_timeout: float = 1.0,
        timeout: float | None = None,
        speculate: bool = True,
        max_copies: int = 2,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be positive, got {lease_timeout}")
        if max_copies < 1:
            raise ValueError(f"max_copies must be >= 1, got {max_copies}")
        self.retries = retries
        self.lease_timeout = lease_timeout
        self.timeout = timeout
        self.speculate = speculate
        self.max_copies = max_copies
        self.pending: deque[_PendingCell] = deque(
            _PendingCell(eps, m, rep, seed, attempt=1) for eps, m, rep, seed in cells
        )
        #: one lease per worker slot currently holding one.
        self.leases: dict[int, Lease] = {}
        self.completed: dict[int, list[SweepRow]] = {}
        self.failures: list[CellFailure] = []
        #: seeds not yet completed or quarantined.
        self.remaining: set[int] = {seed for _, _, _, seed in cells}
        #: total leases granted (provenance / stats).
        self.granted = 0
        #: speculative leases granted (stats).
        self.speculated = 0

    # -- queries -------------------------------------------------------

    @property
    def done(self) -> bool:
        """All cells completed or quarantined (in-flight losers aside)."""
        return not self.remaining

    def outstanding(self, seed: int) -> list[Lease]:
        """Every live lease on *seed* (0, 1, or up to ``max_copies``)."""
        return [lease for lease in self.leases.values() if lease.seed == seed]

    def expired(self, now: float) -> list[Lease]:
        """Leases whose soft (heartbeat) deadline has passed: presumed dead."""
        return [lease for lease in self.leases.values() if now >= lease.deadline]

    def overdue(self, now: float) -> list[Lease]:
        """Leases past the hard per-cell timeout: the *cell* is charged."""
        return [
            lease
            for lease in self.leases.values()
            if lease.hard_deadline is not None and now >= lease.hard_deadline
        ]

    # -- transitions ---------------------------------------------------

    def next_lease(self, worker: int, now: float) -> Lease | None:
        """Grant the next cell (or an end-game speculative copy) to *worker*.

        Returns ``None`` when there is nothing to grant — the worker goes
        idle and should be re-offered work after the next state change.
        """
        if worker in self.leases:
            raise RuntimeError(f"worker slot {worker} already holds a lease")
        speculative = False
        if self.pending:
            task = self.pending.popleft()
        else:
            task = self._speculation_target(worker)
            if task is None:
                return None
            speculative = True
        lease = Lease(
            eps=task.eps,
            m=task.m,
            rep=task.rep,
            seed=task.seed,
            worker=worker,
            attempt=task.attempt,
            granted_at=now,
            deadline=now + self.lease_timeout,
            hard_deadline=None if self.timeout is None else now + self.timeout,
            speculative=speculative,
            history=task.history,
        )
        self.leases[worker] = lease
        self.granted += 1
        if speculative:
            self.speculated += 1
        return lease

    def _speculation_target(self, worker: int) -> _PendingCell | None:
        """End-game: duplicate the longest-outstanding under-copied cell."""
        if not self.speculate:
            return None
        candidates = [
            lease
            for lease in self.leases.values()
            if lease.seed in self.remaining
            and len(self.outstanding(lease.seed)) < self.max_copies
        ]
        if not candidates:
            return None
        target = min(candidates, key=lambda lease: lease.granted_at)
        return _PendingCell(
            target.eps,
            target.m,
            target.rep,
            target.seed,
            attempt=target.attempt,
            history=target.history,
        )

    def heartbeat(self, worker: int, now: float) -> bool:
        """Extend *worker*'s lease deadline; ``False`` if it holds none.

        Heartbeats only push the *soft* deadline — the hard per-cell
        timeout is immovable, which is what separates "slow but alive"
        from "over budget".
        """
        lease = self.leases.get(worker)
        if lease is None:
            return False
        lease.heartbeats += 1
        lease.deadline = now + self.lease_timeout
        return True

    def release(
        self,
        worker: int,
        detail: str,
        *,
        charge_cell: bool = True,
    ) -> Lease | None:
        """Revoke *worker*'s lease after a failure; re-queue or quarantine.

        ``charge_cell=False`` (worker death, lease expiry) re-queues the
        cell without spending its retry budget — the *worker* is at
        fault, and the caller charges the slot instead.  With other
        copies still outstanding, or the cell already completed, nothing
        is re-queued.  Returns the revoked lease (``None`` if the worker
        held none).
        """
        lease = self.leases.pop(worker, None)
        if lease is None:
            return None
        if lease.seed not in self.remaining or self.outstanding(lease.seed):
            return lease  # completed meanwhile, or another copy is running
        history = lease.history + (f"{detail}",)
        if not charge_cell or lease.attempt <= self.retries:
            self.pending.append(
                _PendingCell(
                    lease.eps,
                    lease.m,
                    lease.rep,
                    lease.seed,
                    attempt=lease.attempt + (1 if charge_cell else 0),
                    history=history,
                )
            )
        else:
            self.remaining.discard(lease.seed)
            self.failures.append(
                CellFailure(
                    epsilon=lease.eps,
                    machines=lease.m,
                    repetition=lease.rep,
                    seed=lease.seed,
                    attempts=lease.attempt,
                    kind=detail.split(":", 1)[0],
                    detail=detail,
                    history=history,
                )
            )
        return lease

    def complete(
        self, worker: int, seed: int, rows: list[SweepRow]
    ) -> tuple[str, Lease | None]:
        """Accept a result; returns ``(outcome, lease)``.

        Outcomes: ``"win"`` (first verified result for the cell — caller
        journals it), ``"duplicate"`` (cell already completed; *rows*
        were asserted bit-identical to the winner), ``"stale"`` (the
        worker's lease was revoked before the result arrived — *rows*
        are still checked against the winner when one exists).  Raises
        :class:`SpeculationMismatch` when duplicate rows differ.
        """
        lease = self.leases.get(worker)
        if lease is not None and lease.seed == seed:
            del self.leases[worker]
        else:
            lease = None
        if seed in self.completed:
            if rows != self.completed[seed]:
                raise SpeculationMismatch(
                    f"duplicate result for cell seed {seed} differs from the "
                    "accepted rows — the simulation stack is nondeterministic"
                )
            return ("duplicate" if lease is not None else "stale", lease)
        if seed not in self.remaining:
            return ("stale", lease)  # quarantined earlier; drop the late copy
        if lease is None:
            return ("stale", None)  # revoked lease; a live copy will land
        self.completed[seed] = rows
        self.remaining.discard(seed)
        return ("win", lease)

    def add_cells(self, cells: list[tuple[float, int, int, int]]) -> None:
        """Append fresh cells (adaptive repetitions issue reps lazily)."""
        for eps, m, rep, seed in cells:
            self.pending.append(_PendingCell(eps, m, rep, seed, attempt=1))
            self.remaining.add(seed)


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------


def _heartbeat_loop(conn, lock, slot: int, seed: int, interval: float, stop) -> None:
    """Worker-side heartbeat thread: one beat per *interval* until stopped."""
    while not stop.wait(interval):
        try:
            with lock:
                conn.send(("heartbeat", slot, seed))
        except (OSError, ValueError):  # pragma: no cover - parent went away
            return


def _elastic_worker(
    conn,
    slot: int,
    spec: SweepSpec,
    algorithm_kwargs: dict[str, dict[str, Any]],
    backend: str,
    chaos: "ChaosPlan | None",
    worker_chaos: "WorkerChaosPlan | None",
    heartbeat_interval: float,
    cache: BracketCache | None,
) -> None:
    """Pull-loop worker: ready -> lease -> heartbeats -> result, repeat.

    Protocol (worker -> parent, all sends serialised by a lock because a
    ``Connection`` is not thread-safe against the heartbeat thread):

    * ``("ready", slot)`` — idle, asking for a lease;
    * ``("heartbeat", slot, seed)`` — still computing *seed*;
    * ``("result", slot, seed, rows, cache_delta)`` — verified rows plus
      the bracket-cache counter *delta* since the previous result;
    * ``("error", slot, seed, detail)`` — the cell raised.

    Parent -> worker: ``("run", (eps, m, rep, seed), attempt)`` or
    ``("stop",)``.  Worker-level chaos (:class:`WorkerChaosPlan`) is
    applied here: injected slowness sleeps *inside* the heartbeat window
    (a slow worker is alive), injected death is a hard ``os._exit``, and
    suppressed heartbeats skip the thread entirely (hang-alike).
    """
    lock = threading.Lock()
    nth_cell = 0
    prev_cache: dict[str, Any] | None = None
    try:
        while True:
            with lock:
                conn.send(("ready", slot))
            message = conn.recv()
            if message[0] == "stop":
                return
            _, (eps, m, rep, seed), attempt = message
            nth_cell += 1
            if worker_chaos is not None and worker_chaos.dies_on_cell(slot, nth_cell):
                from repro.testing.chaos import CHAOS_EXIT_CODE

                os._exit(CHAOS_EXIT_CODE)
            stop_beats = threading.Event()
            beats = None
            if worker_chaos is None or not worker_chaos.suppresses_heartbeat(slot):
                beats = threading.Thread(
                    target=_heartbeat_loop,
                    args=(conn, lock, slot, seed, heartbeat_interval, stop_beats),
                    daemon=True,
                )
                beats.start()
            try:
                if worker_chaos is not None:
                    delay = worker_chaos.delay_for(slot)
                    if delay:
                        time.sleep(delay)  # slow host: heartbeats keep flowing
                fault = None
                if chaos is not None:
                    fault = chaos.fault_for(seed, attempt)
                    chaos.trigger(fault)  # may _exit, hang, or raise
                if backend == "scalar":
                    rows = run_cell(spec, eps, m, rep, algorithm_kwargs, cache)
                else:
                    rows = run_cells(
                        spec, [(eps, m, rep)], algorithm_kwargs, cache, backend=backend
                    )[0]
                if fault == "corrupt":
                    rows = chaos.corrupt_rows(rows)
                delta = None
                if cache is not None:
                    current = cache.stats.as_dict()
                    delta = {
                        key: current[key] - (prev_cache or {}).get(key, 0)
                        for key in current
                        if isinstance(current[key], int)
                    }
                    prev_cache = current
                stop_beats.set()
                if beats is not None:
                    beats.join()
                with lock:
                    conn.send(("result", slot, seed, rows, delta))
                if worker_chaos is not None and worker_chaos.duplicates_result(slot):
                    with lock:
                        conn.send(("result", slot, seed, rows, None))
            except BaseException as exc:  # noqa: BLE001 - crosses the process boundary
                stop_beats.set()
                if beats is not None:
                    beats.join()
                with lock:
                    conn.send(("error", slot, seed, f"{type(exc).__name__}: {exc}"))
            finally:
                stop_beats.set()
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover - teardown races
        pass
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# parent-side worker slots
# ---------------------------------------------------------------------------


@dataclass
class _Slot:
    """Parent-side view of one worker slot across process generations."""

    slot: int
    process: mp.process.BaseProcess | None = None
    conn: Any = None
    generation: int = 0
    failures: int = 0
    history: tuple[str, ...] = ()
    quarantined: bool = False
    stopping: bool = False
    #: slot is blocked in recv waiting for a lease offer.
    idle: bool = False
    started_at: float = 0.0
    last_activity: float = 0.0
    cells_done: int = 0

    @property
    def live(self) -> bool:
        return self.process is not None and not self.quarantined

    def wall_seconds(self) -> float:
        return max(0.0, self.last_activity - self.started_at)


# ---------------------------------------------------------------------------
# adaptive repetitions
# ---------------------------------------------------------------------------


class _AdaptiveReps:
    """Issue repetitions lazily; stop once the bootstrap CI is tight.

    Each grid config ``(eps, m)`` starts with ``min_reps`` repetitions.
    When every issued rep of a config has completed, the bootstrap CI of
    the mean accepted load is computed per algorithm over the completed
    reps: if every algorithm's relative halfwidth is within ``rel_tol``
    the remaining reps are *skipped*; otherwise one more rep is issued
    (re-queued), up to ``spec.repetitions``.  Skipping only ever drops
    whole trailing reps, so the executed prefix stays bit-identical to
    the same reps of an exhaustive run.
    """

    def __init__(
        self,
        spec: SweepSpec,
        cells: list[tuple[float, int, int]],
        *,
        min_reps: int,
        rel_tol: float,
    ) -> None:
        self.spec = spec
        self.min_reps = min_reps
        self.rel_tol = rel_tol
        self.reps_by_config: dict[tuple[float, int], list[int]] = {}
        for eps, m, rep in cells:
            self.reps_by_config.setdefault((eps, m), []).append(rep)
        for reps in self.reps_by_config.values():
            reps.sort()
        self.issued: dict[tuple[float, int], set[int]] = {}
        self.done: dict[tuple[float, int], dict[int, list[SweepRow]]] = {}
        self.skipped = 0

    def initial_cells(
        self, completed: dict[int, list[SweepRow]]
    ) -> list[tuple[float, int, int]]:
        """First wave: ``min_reps`` reps per config (replays count as done)."""
        initial: list[tuple[float, int, int]] = []
        for (eps, m), reps in self.reps_by_config.items():
            self.issued[(eps, m)] = set()
            self.done[(eps, m)] = {}
            for rep in reps:
                seed = self.spec.cell_seed(eps, m, rep)
                if seed in completed:
                    self.issued[(eps, m)].add(rep)
                    self.done[(eps, m)][rep] = completed[seed]
            for rep in reps:
                if len(self.issued[(eps, m)]) >= self.min_reps:
                    break
                if rep not in self.issued[(eps, m)]:
                    self.issued[(eps, m)].add(rep)
                    initial.append((eps, m, rep))
        return initial

    def on_win(
        self, eps: float, m: int, rep: int, rows: list[SweepRow]
    ) -> list[tuple[float, int, int]]:
        """Record a completed rep; returns freshly issued cells (0 or 1)."""
        config = (eps, m)
        self.done[config][rep] = rows
        if len(self.done[config]) < len(self.issued[config]):
            return []  # other reps of this config still in flight
        remaining = [r for r in self.reps_by_config[config] if r not in self.issued[config]]
        if not remaining:
            return []
        if self._tight(config):
            self.skipped += len(remaining)
            self.issued[config].update(remaining)  # never issue them
            return []
        nxt = remaining[0]
        self.issued[config].add(nxt)
        return [(eps, m, nxt)]

    def _tight(self, config: tuple[float, int]) -> bool:
        from repro.analysis.stats import bootstrap_mean

        rows_by_rep = self.done[config]
        if len(rows_by_rep) < 2:
            return False
        loads: dict[str, list[float]] = {}
        for rows in rows_by_rep.values():
            for row in rows:
                loads.setdefault(row.algorithm, []).append(row.accepted_load)
        for samples in loads.values():
            ci = bootstrap_mean(samples)
            if ci.mean == 0.0:
                if ci.halfwidth > 0.0:
                    return False
                continue
            if ci.halfwidth / abs(ci.mean) > self.rel_tol:
                return False
        return True


# ---------------------------------------------------------------------------
# the elastic scheduler
# ---------------------------------------------------------------------------


def _execute_elastic(
    spec: SweepSpec,
    algorithm_kwargs: dict[str, dict[str, Any]] | None = None,
    *,
    max_workers: int | None = None,
    timeout: float | None = None,
    max_retries: int = 2,
    journal_path: str | os.PathLike[str] | None = None,
    resume: bool = False,
    chaos: "ChaosPlan | None" = None,
    worker_chaos: "WorkerChaosPlan | None" = None,
    interrupt_after: int | None = None,
    cache: BracketCache | None = None,
    cells: list[tuple[float, int, int]] | None = None,
    shard: tuple[int, int] | None = None,
    salvage: bool = False,
    backend: str = "scalar",
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    lease_timeout: float | None = None,
    speculate: bool = True,
    adaptive_reps: bool = False,
    adaptive_min_reps: int = 2,
    adaptive_rel_tol: float = 0.01,
    worker_max_failures: int = 3,
) -> ResilientSweepResult:
    """Pull-scheduler core behind ``ExecutionPolicy(elastic=True)``.

    Shares journal preparation, seed-collision checks, row validation and
    result assembly with the static scheduler, so resumes, salvage,
    sharding (the queue simply serves this shard's cells) and the result
    contract are identical.  Differences from the push path:

    * workers are persistent pull-loop processes (one per slot), not one
      process per cell — a slot only respawns after a failure;
    * lease expiry (missed heartbeats) and worker death charge the *slot*
      (``worker_max_failures`` per slot before quarantine), re-queueing
      the cell without spending its retry budget;
    * cell-level failures (error / corrupt / hard timeout) charge the
      cell's retry budget exactly as the static scheduler does;
    * with ``speculate``, the end-game duplicates straggler cells and the
      first verified result wins (duplicates asserted bit-identical);
    * with ``adaptive_reps``, repetitions are issued lazily and skipped
      once the bootstrap CI of the mean accepted load is tight.
    """
    algorithm_kwargs = algorithm_kwargs or {}
    validate_sweep_pickles(spec, algorithm_kwargs)
    if lease_timeout is None:
        lease_timeout = LEASE_TIMEOUT_BEATS * heartbeat_interval

    cells = list(spec.cells()) if cells is None else list(cells)
    check_seed_collisions(spec, cells)
    manifest = FailureManifest(cells_total=len(cells))
    journal, completed = prepare_journal(
        spec, cells, journal_path, resume=resume, shard=shard, salvage=salvage
    )
    manifest.cells_replayed = len(completed)

    adaptive: _AdaptiveReps | None = None
    if adaptive_reps:
        adaptive = _AdaptiveReps(
            spec, cells, min_reps=adaptive_min_reps, rel_tol=adaptive_rel_tol
        )
        todo = adaptive.initial_cells(completed)
    else:
        todo = [cell for cell in cells if spec.cell_seed(*cell) not in completed]
    queue = CellQueue(
        [(eps, m, rep, spec.cell_seed(eps, m, rep)) for eps, m, rep in todo],
        retries=max_retries,
        lease_timeout=lease_timeout,
        timeout=timeout,
        speculate=speculate,
    )

    cell_by_seed = {spec.cell_seed(eps, m, rep): (eps, m, rep) for eps, m, rep in cells}
    workers = max_workers or min(len(todo) or 1, os.cpu_count() or 2)
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    slots = [_Slot(slot=i) for i in range(workers)]
    cache_totals = CacheStats() if cache is not None else None
    new_cells = 0
    heartbeats_total = 0
    started = time.monotonic()

    def spawn(entry: _Slot) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        entry.generation += 1
        process = ctx.Process(
            target=_elastic_worker,
            args=(
                child_conn,
                entry.slot,
                spec,
                algorithm_kwargs,
                backend,
                chaos,
                worker_chaos,
                heartbeat_interval,
                cache,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        now = time.monotonic()
        entry.process = process
        entry.conn = parent_conn
        entry.idle = False
        entry.stopping = False
        if entry.started_at == 0.0:
            entry.started_at = now
        entry.last_activity = now

    def live_slots() -> list[_Slot]:
        return [entry for entry in slots if entry.live]

    def worker_fault(entry: _Slot, detail: str) -> None:
        """Charge a slot failure; respawn or quarantine (pool floor of 1)."""
        entry.failures += 1
        entry.history = entry.history + (detail,)
        if entry.conn is not None:
            entry.conn.close()
        entry.process = None
        entry.conn = None
        entry.idle = False
        if entry.failures > worker_max_failures and len(live_slots()) >= 1:
            entry.quarantined = True
            manifest.worker_failures.append(
                WorkerFailure(
                    slot=entry.slot,
                    failures=entry.failures,
                    detail=detail,
                    history=entry.history,
                )
            )
        else:
            spawn(entry)

    def record_win(lease: Lease, rows: list[SweepRow]) -> None:
        nonlocal new_cells
        queue_seed = lease.seed
        manifest.cells_completed += 1
        if lease.attempt > 1 or lease.history:
            manifest.recovered += 1
        completed[queue_seed] = rows
        if journal is not None:
            journal.record_cell(
                queue_seed,
                lease.eps,
                lease.m,
                lease.rep,
                rows,
                provenance={
                    "worker": lease.worker,
                    "attempt": lease.attempt,
                    "heartbeats": lease.heartbeats,
                    "lease_ms": round((time.monotonic() - lease.granted_at) * 1e3, 3),
                    "speculative": lease.speculative,
                },
            )
        new_cells += 1
        if adaptive is not None:
            fresh = adaptive.on_win(lease.eps, lease.m, lease.rep, rows)
            if fresh:
                queue.add_cells(
                    [(e, mm, r, spec.cell_seed(e, mm, r)) for e, mm, r in fresh]
                )
        if (
            interrupt_after is not None
            and new_cells >= interrupt_after
            and not queue.done
        ):
            raise KeyboardInterrupt  # simulated hard kill, same path as SIGINT

    def cell_fault(entry: _Slot, detail: str) -> None:
        """Charge the cell's retry budget (error / corrupt / timeout)."""
        pending_before = len(queue.pending)
        failures_before = len(queue.failures)
        queue.release(entry.slot, detail, charge_cell=True)
        if len(queue.pending) > pending_before:
            manifest.retries += 1
        for failure in queue.failures[failures_before:]:
            manifest.failures.append(failure)
            if journal is not None:
                journal.record_failure(failure.as_dict())

    def journal_stats(interrupted: bool) -> None:
        if journal is None:
            return
        journal.record_stats(
            {
                "wall_seconds": round(time.monotonic() - started, 6),
                "interrupted": interrupted,
                "scheduler": "elastic",
                "workers": workers,
                "worker_wall_seconds": [
                    round(entry.wall_seconds(), 6) for entry in slots
                ],
                "worker_cells": [entry.cells_done for entry in slots],
                "leases": queue.granted,
                "heartbeats": heartbeats_total,
                "speculated": queue.speculated,
                "cells_completed": manifest.cells_completed,
                "cells_replayed": manifest.cells_replayed,
                "cells_skipped": manifest.cells_skipped,
                "recovered": manifest.recovered,
                "retries": manifest.retries,
                "quarantined": manifest.quarantined,
                "workers_quarantined": manifest.workers_quarantined,
                "cache": None if cache_totals is None else cache_totals.as_dict(),
            }
        )

    def all_processes() -> list[mp.process.BaseProcess]:
        return [entry.process for entry in slots if entry.process is not None]

    for entry in slots:
        spawn(entry)

    try:
        while not queue.done:
            now = time.monotonic()
            progressed = False
            for entry in slots:
                if not entry.live:
                    continue
                # Drain every queued message from this slot.
                while entry.conn.poll():
                    try:
                        message = entry.conn.recv()
                    except (EOFError, OSError):
                        break
                    progressed = True
                    entry.last_activity = time.monotonic()
                    kind = message[0]
                    if kind == "ready":
                        entry.idle = True
                    elif kind == "heartbeat":
                        heartbeats_total += 1
                        queue.heartbeat(entry.slot, time.monotonic())
                    elif kind == "result":
                        _, _, seed, rows, cache_delta = message
                        cell = cell_by_seed.get(seed)
                        problem = (
                            "unknown cell seed"
                            if cell is None
                            else validate_cell_rows(spec, *cell, rows)
                        )
                        if problem is not None:
                            lease = queue.leases.get(entry.slot)
                            if lease is not None and lease.seed == seed:
                                cell_fault(entry, f"corrupt: {problem}")
                            continue  # corrupt stale/duplicate copies just drop
                        outcome, lease = queue.complete(entry.slot, seed, rows)
                        if cache_totals is not None and cache_delta:
                            cache_totals.merge(cache_delta)
                        if outcome == "win":
                            entry.cells_done += 1
                            record_win(lease, rows)
                    elif kind == "error":
                        _, _, seed, detail = message
                        cell_fault(entry, f"error: {detail}")
                if not entry.live:
                    continue
                # Exited without a message left in the pipe: the slot died.
                if not entry.process.is_alive():
                    code = entry.process.exitcode
                    entry.process.join()
                    queue.release(
                        entry.slot,
                        f"crash: worker process died with exit code {code}",
                        charge_cell=False,
                    )
                    worker_fault(entry, f"crash: exit code {code}")
                    progressed = True
                    continue
                # Grant work to an idle slot (or stop it when nothing is left).
                if entry.idle and entry.slot not in queue.leases:
                    lease = queue.next_lease(entry.slot, time.monotonic())
                    if lease is not None:
                        entry.idle = False
                        entry.conn.send(
                            (
                                "run",
                                (lease.eps, lease.m, lease.rep, lease.seed),
                                lease.attempt,
                            )
                        )
                        progressed = True

            now = time.monotonic()
            # Hard per-cell timeout: the cell is charged, like the static path.
            for lease in queue.overdue(now):
                entry = slots[lease.worker]
                cell_fault(
                    entry, "timeout: cell exceeded its timeout; worker terminated"
                )
                if entry.process is not None:
                    _terminate(entry.process)
                    entry.conn.close()
                    entry.process = None
                    entry.conn = None
                    spawn(entry)
            # Soft lease expiry: missed heartbeats — the *slot* is charged.
            for lease in queue.expired(now):
                if lease.worker not in queue.leases:
                    continue  # already handled above this tick
                entry = slots[lease.worker]
                queue.release(
                    entry.slot,
                    "expired: lease deadline passed without a heartbeat",
                    charge_cell=False,
                )
                if entry.process is not None:
                    _terminate(entry.process)
                worker_fault(entry, "expired: missed heartbeats")

            if not progressed:
                time.sleep(_POLL_INTERVAL)

        # Drained: stop idle workers gracefully, cut stragglers loose
        # (in-flight speculative losers — their rows are already accepted).
        for entry in slots:
            if entry.process is None:
                continue
            if entry.idle:
                try:
                    entry.conn.send(("stop",))
                except (OSError, BrokenPipeError):  # pragma: no cover
                    pass
        deadline = time.monotonic() + 1.0
        for entry in slots:
            if entry.process is not None and entry.idle:
                entry.process.join(max(0.0, deadline - time.monotonic()))
        _terminate_all([p for p in all_processes() if p.is_alive()])
        for entry in slots:
            if entry.conn is not None:
                entry.conn.close()

        manifest.cells_completed = len(completed) - manifest.cells_replayed
        manifest.speculated = queue.speculated
        if adaptive is not None:
            manifest.cells_skipped = adaptive.skipped
        journal_stats(interrupted=False)
        if journal is not None:
            journal.record_seal()
    except KeyboardInterrupt:
        _terminate_all(all_processes())
        for entry in slots:
            if entry.conn is not None:
                entry.conn.close()
        manifest.speculated = queue.speculated
        if adaptive is not None:
            manifest.cells_skipped = adaptive.skipped
        journal_stats(interrupted=True)
        partial = _assemble(spec, cells, completed, manifest, journal, cache_totals)
        raise SweepInterrupted(partial) from None
    except BaseException:
        _terminate_all(all_processes())
        for entry in slots:
            if entry.conn is not None:
                entry.conn.close()
        raise
    finally:
        if journal is not None:
            journal.close()

    return _assemble(spec, cells, completed, manifest, journal, cache_totals)


__all__ = [
    "CellQueue",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "LEASE_TIMEOUT_BEATS",
    "Lease",
    "SpeculationMismatch",
]
