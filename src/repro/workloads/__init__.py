"""Workload generation: random, cloud-style, and structured instances.

All generators take explicit seeds/Generators (reproducible by default) and
return validated :class:`~repro.model.instance.Instance` objects whose jobs
respect the declared slack.
"""

from repro.workloads.random_instances import (
    ProcessingDistribution,
    random_instance,
    tight_slack_instance,
    poisson_instance,
)
from repro.workloads.cloud import cloud_instance, ServiceClass, DEFAULT_SERVICE_MIX
from repro.workloads.structured import (
    burst_instance,
    staircase_instance,
    alternating_instance,
    overload_instance,
    adversarial_like_instance,
)
from repro.workloads.sweep import SweepSpec, run_sweep, SweepRow, cell_seed_for
from repro.workloads.arrivals import batch_arrival_instance, mmpp_instance
from repro.workloads.parallel import run_sweep_parallel
from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.sharding import (
    MergeConflict,
    MergeResult,
    ShardJournalInfo,
    ShardPlan,
    merge_journals,
    shard_journal_paths,
)
from repro.workloads.journal import (
    CorruptionEvent,
    CorruptionReport,
    JournalError,
    JournalIntegrityError,
    JournalMismatchError,
    JournalVerification,
    SweepJournal,
    load_journal,
    salvage_journal,
    verify_journal,
)
from repro.workloads.transport import (
    CollectResult,
    CommandTransport,
    LocalDirTransport,
    Transport,
    TransferPolicy,
    TransferRecord,
    TransferTimeout,
    TransportError,
    collect_journals,
    fetch_resumable,
)
from repro.workloads.resilient import (
    CellFailure,
    FailureManifest,
    HostFailure,
    ResilientSweepResult,
    SweepExecutionError,
    SweepInterrupted,
    WorkerFailure,
    run_sweep_resilient,
)
from repro.workloads.elastic import CellQueue, Lease, SpeculationMismatch
from repro.workloads.remote import (
    HostLink,
    HostSpec,
    env_fingerprint,
    load_hosts,
)
from repro.workloads.traces import (
    instance_from_csv,
    instance_to_csv,
    load_trace,
    save_trace,
)

__all__ = [
    "ProcessingDistribution",
    "random_instance",
    "tight_slack_instance",
    "poisson_instance",
    "cloud_instance",
    "ServiceClass",
    "DEFAULT_SERVICE_MIX",
    "burst_instance",
    "staircase_instance",
    "alternating_instance",
    "overload_instance",
    "adversarial_like_instance",
    "SweepSpec",
    "run_sweep",
    "run_sweep_parallel",
    "run_sweep_resilient",
    "SweepRow",
    "cell_seed_for",
    "ExecutionPolicy",
    "execute_sweep",
    "ShardPlan",
    "ShardJournalInfo",
    "MergeConflict",
    "MergeResult",
    "merge_journals",
    "shard_journal_paths",
    "CellFailure",
    "CellQueue",
    "FailureManifest",
    "HostFailure",
    "HostLink",
    "HostSpec",
    "Lease",
    "env_fingerprint",
    "load_hosts",
    "ResilientSweepResult",
    "SpeculationMismatch",
    "SweepExecutionError",
    "SweepInterrupted",
    "WorkerFailure",
    "SweepJournal",
    "CorruptionEvent",
    "CorruptionReport",
    "JournalError",
    "JournalIntegrityError",
    "JournalMismatchError",
    "JournalVerification",
    "load_journal",
    "salvage_journal",
    "verify_journal",
    "Transport",
    "TransportError",
    "TransferTimeout",
    "TransferPolicy",
    "TransferRecord",
    "CollectResult",
    "LocalDirTransport",
    "CommandTransport",
    "collect_journals",
    "fetch_resumable",
    "instance_from_csv",
    "instance_to_csv",
    "load_trace",
    "save_trace",
    "mmpp_instance",
    "batch_arrival_instance",
]
