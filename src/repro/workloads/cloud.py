"""IaaS-style cloud admission workload (the paper's motivating scenario).

Section 1 motivates the problem with Infrastructure-as-a-Service providers
renting out compute under multiple customer service levels: "some periodic
routine tasks have a low urgency while time-sensitive jobs require an
almost immediate completion".  This generator models exactly that:

* a mix of :class:`ServiceClass` profiles (interactive / batch /
  analytics by default) with class-specific job sizes and slack profiles —
  the *minimum* slack across classes is the system slack ``epsilon``;
* a diurnal arrival-rate modulation (sinusoidal day/night pattern), since
  admission pressure in clouds is bursty, not stationary.

Jobs carry their class name in ``tags['service']`` so examples can report
per-class acceptance rates (algorithms ignore tags).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.model.instance import Instance
from repro.model.job import Job
from repro.utils.rng import rng_from_any


@dataclass(frozen=True)
class ServiceClass:
    """One customer service level.

    Attributes
    ----------
    name:
        Label recorded in job tags.
    weight:
        Relative arrival frequency within the mix.
    p_mean, p_sigma:
        Lognormal processing-time parameters (mean of the underlying
        normal is derived from ``p_mean``).
    slack_multiplier:
        The class's slack is ``epsilon * slack_multiplier`` (>= 1; the
        tightest class pins the system slack).
    """

    name: str
    weight: float
    p_mean: float
    p_sigma: float
    slack_multiplier: float

    def __post_init__(self) -> None:
        if self.slack_multiplier < 1.0:
            raise ValueError(
                f"service class {self.name}: slack_multiplier must be >= 1 "
                "(the declared epsilon is the system-wide minimum)"
            )


#: Default three-level mix: time-sensitive interactive jobs at the slack
#: frontier, long batch jobs with generous deadlines, analytics in between.
DEFAULT_SERVICE_MIX: tuple[ServiceClass, ...] = (
    ServiceClass("interactive", weight=0.6, p_mean=0.3, p_sigma=0.6, slack_multiplier=1.0),
    ServiceClass("analytics", weight=0.3, p_mean=1.5, p_sigma=0.8, slack_multiplier=4.0),
    ServiceClass("batch", weight=0.1, p_mean=5.0, p_sigma=0.5, slack_multiplier=12.0),
)


def cloud_instance(
    n: int,
    machines: int,
    epsilon: float,
    seed: int | np.random.Generator | None = None,
    mix: tuple[ServiceClass, ...] = DEFAULT_SERVICE_MIX,
    utilization: float = 1.6,
    day_length: float = 50.0,
    diurnal_amplitude: float = 0.6,
) -> Instance:
    """Generate an IaaS admission stream.

    Parameters
    ----------
    n, machines, epsilon:
        Instance size, machine count and system slack (the tightest class
        sits exactly at this slack).
    mix:
        Service-class mix (weights are normalised).
    utilization:
        Mean offered load relative to capacity; > 1 forces rejections.
    day_length, diurnal_amplitude:
        Period and relative amplitude of the sinusoidal arrival-rate
        modulation (amplitude 0 gives a homogeneous Poisson stream).
    """
    if not 0.0 <= diurnal_amplitude < 1.0:
        raise ValueError(f"diurnal_amplitude must lie in [0, 1), got {diurnal_amplitude}")
    rng = rng_from_any(seed)
    weights = np.array([c.weight for c in mix], dtype=float)
    weights /= weights.sum()
    mean_p = float(sum(w * c.p_mean for w, c in zip(weights, mix)))
    base_rate = utilization * machines / mean_p

    # Thinned non-homogeneous Poisson process: draw with the peak rate,
    # keep each arrival with probability rate(t)/peak.
    peak = base_rate * (1.0 + diurnal_amplitude)
    releases: list[float] = []
    t = 0.0
    while len(releases) < n:
        t += rng.exponential(1.0 / peak)
        rate = base_rate * (
            1.0 + diurnal_amplitude * math.sin(2.0 * math.pi * t / day_length)
        )
        if rng.random() < rate / peak:
            releases.append(t)

    class_idx = rng.choice(len(mix), size=n, p=weights)
    jobs: list[Job] = []
    for r, ci in zip(releases, class_idx):
        cls = mix[ci]
        sigma = cls.p_sigma
        p = float(
            rng.lognormal(mean=math.log(cls.p_mean) - sigma**2 / 2.0, sigma=sigma)
        )
        p = max(p, 1e-6)
        slack = epsilon * cls.slack_multiplier
        jobs.append(
            Job(
                release=float(r),
                processing=p,
                deadline=float(r + (1.0 + slack) * p),
            ).with_tags(service=cls.name)
        )
    return Instance(
        jobs,
        machines=machines,
        epsilon=epsilon,
        name=f"cloud[u={utilization:g}]",
        meta={"mix": [c.name for c in mix], "utilization": utilization},
    )


def per_service_loads(instance: Instance) -> dict[str, float]:
    """Total offered load per service class (reporting helper)."""
    loads: dict[str, float] = {}
    for job in instance:
        service = job.tag("service", "unknown")
        loads[service] = loads.get(service, 0.0) + job.processing
    return loads
