"""Richer arrival processes: MMPP bursts and batch arrivals.

The plain Poisson stream of :mod:`repro.workloads.random_instances`
under-represents two phenomena real admission systems face:

* **regime switching** — traffic alternates between calm and storm
  (Markov-modulated Poisson process, MMPP-2);
* **batch arrivals** — many jobs land in one submission event (array
  jobs, workflow fan-outs).

Both stress admission control harder than a homogeneous stream at the
same mean rate: storms and batches force many commitments against the
same capacity window.
"""

from __future__ import annotations

import numpy as np

from repro.model.instance import Instance
from repro.model.job import Job
from repro.utils.rng import rng_from_any
from repro.workloads.random_instances import ProcessingDistribution, _sample_processing


def mmpp_instance(
    n: int,
    machines: int,
    epsilon: float,
    seed: int | np.random.Generator | None = None,
    calm_rate: float | None = None,
    storm_rate_factor: float = 8.0,
    mean_phase_length: float = 10.0,
    distribution: ProcessingDistribution | str = ProcessingDistribution.UNIFORM,
    p_mean: float = 1.0,
    tight_fraction: float = 0.7,
) -> Instance:
    """Two-state Markov-modulated Poisson arrivals (calm/storm).

    Parameters
    ----------
    calm_rate:
        Arrival rate in the calm state; defaults to half the capacity
        (``0.5 * machines / p_mean``), so storms at ``storm_rate_factor``
        times that overload the fleet.
    storm_rate_factor:
        Rate multiplier of the storm state (> 1).
    mean_phase_length:
        Expected sojourn time in each state (exponential).
    """
    if storm_rate_factor <= 1.0:
        raise ValueError(f"storm_rate_factor must exceed 1, got {storm_rate_factor}")
    rng = rng_from_any(seed)
    distribution = ProcessingDistribution(distribution)
    if calm_rate is None:
        calm_rate = 0.5 * machines / p_mean
    rates = (calm_rate, calm_rate * storm_rate_factor)

    releases: list[float] = []
    state = 0
    t = 0.0
    phase_end = float(rng.exponential(mean_phase_length))
    while len(releases) < n:
        gap = float(rng.exponential(1.0 / rates[state]))
        if t + gap >= phase_end:
            # Jump to the phase boundary and switch state.
            t = phase_end
            state = 1 - state
            phase_end = t + float(rng.exponential(mean_phase_length))
            continue
        t += gap
        releases.append(t)

    processings = _sample_processing(rng, n, distribution, p_mean)
    extra = rng.exponential(1.0, size=n) * processings
    tight = rng.random(n) < tight_fraction
    slacks = np.where(tight, epsilon, epsilon + extra)
    jobs = [
        Job(float(r), float(p), float(r + (1.0 + s) * p))
        for r, p, s in zip(releases, processings, slacks)
    ]
    return Instance(
        jobs, machines=machines, epsilon=epsilon,
        name=f"mmpp[x{storm_rate_factor:g}]",
    )


def batch_arrival_instance(
    batches: int,
    machines: int,
    epsilon: float,
    seed: int | np.random.Generator | None = None,
    mean_batch_size: float = 6.0,
    batch_rate: float = 0.2,
    distribution: ProcessingDistribution | str = ProcessingDistribution.UNIFORM,
    p_mean: float = 1.0,
) -> Instance:
    """Poisson batch arrivals: geometric batch sizes at Poisson instants.

    All jobs of a batch share one release date (and tight slack), forcing
    the online algorithm to make several commitments against the same
    state — the regime where allocation rules matter most.
    """
    rng = rng_from_any(seed)
    distribution = ProcessingDistribution(distribution)
    jobs: list[Job] = []
    t = 0.0
    for b in range(batches):
        t += float(rng.exponential(1.0 / batch_rate))
        size = 1 + int(rng.geometric(1.0 / mean_batch_size))
        processings = _sample_processing(rng, size, distribution, p_mean)
        for p in processings:
            jobs.append(
                Job(t, float(p), t + (1.0 + epsilon) * float(p)).with_tags(batch=b)
            )
    return Instance(jobs, machines=machines, epsilon=epsilon, name="batch-arrivals")
