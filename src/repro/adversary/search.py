"""Falsification search: hunt for hard instances automatically.

The three-phase adversary needs the paper's insight; this module finds
hard instances *without* it, by stochastic local search over the instance
space: random seeds, plus mutations (perturb a job's size, tighten a
deadline to the slack frontier, duplicate a job, drop a job) that keep
the slack condition intact.  The fitness of an instance is the policy's
certified empirical ratio ``OPT_upper / ALG`` (exact OPT for small
instances).

Uses:

* **falsification** — if a policy's ratio can be pushed past a claimed
  guarantee, the claim is wrong (the search never succeeds against
  Threshold's Theorem-2 bound; the test-suite asserts that across
  budgets);
* **hardness profiling** — comparing the hardest-found ratios of
  different policies on equal budget quantifies worst-case robustness
  beyond the fixed adversarial constructions (benchmark E18).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.registry import run_algorithm
from repro.model.instance import Instance
from repro.model.job import Job, tight_deadline
from repro.offline.cache import BracketCache, cached_opt_bracket
from repro.utils.rng import rng_from_any
from repro.workloads.random_instances import random_instance


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one falsification run."""

    algorithm: str
    machines: int
    epsilon: float
    best_ratio: float
    best_instance: Instance
    evaluations: int
    improvements: int


def _evaluate(
    algorithm: str, instance: Instance, cache: BracketCache | None = None
) -> float:
    result = run_algorithm(algorithm, instance)
    if result.accepted_load <= 0:
        return float("inf") if instance.total_load > 0 else 1.0
    return cached_opt_bracket(instance, cache=cache).upper / result.accepted_load


def _mutate(instance: Instance, rng: np.random.Generator) -> Instance:
    """One random structure-preserving mutation of *instance*."""
    jobs = list(instance.jobs)
    eps = instance.epsilon
    move = rng.integers(4)
    if move == 0 and jobs:  # rescale a job (deadline re-anchored, slack kept)
        i = int(rng.integers(len(jobs)))
        job = jobs[i]
        factor = float(rng.uniform(0.5, 2.0))
        p = max(job.processing * factor, 1e-3)
        jobs[i] = Job(job.release, p, tight_deadline(job.release, p, eps))
    elif move == 1 and jobs:  # tighten a deadline to the slack frontier
        i = int(rng.integers(len(jobs)))
        job = jobs[i]
        jobs[i] = Job(
            job.release, job.processing,
            tight_deadline(job.release, job.processing, eps),
        )
    elif move == 2 and jobs:  # duplicate a job at a slightly later release
        i = int(rng.integers(len(jobs)))
        job = jobs[i]
        shift = float(rng.exponential(0.05))
        jobs.append(
            Job(
                job.release + shift,
                job.processing,
                tight_deadline(job.release + shift, job.processing, eps),
            )
        )
    elif move == 3 and len(jobs) > 2:  # drop a job
        i = int(rng.integers(len(jobs)))
        del jobs[i]
    jobs.sort(key=lambda j: j.release)
    return Instance(jobs, machines=instance.machines, epsilon=eps, name="mutated")


def falsify(
    algorithm: str,
    machines: int,
    epsilon: float,
    budget: int = 60,
    n_jobs: int = 8,
    seed: int | np.random.Generator | None = 0,
    cache: BracketCache | None = None,
) -> SearchResult:
    """Search for an instance maximising *algorithm*'s empirical ratio.

    Random-restart hill climbing: a third of the budget seeds fresh random
    tight-slack instances, the rest mutates the incumbent.  ``n_jobs`` is
    kept small so the exact offline solver certifies every fitness value.
    Pass a :class:`~repro.offline.cache.BracketCache` to skip re-solving
    OPT when the search revisits an instance it has already scored (the
    cache keys on content, so a mutation that round-trips back to a
    previous job multiset hits).
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    rng = rng_from_any(seed)
    best_inst = random_instance(
        n_jobs, machines, epsilon, seed=int(rng.integers(2**31)),
        tight_fraction=1.0,
    )
    best_ratio = _evaluate(algorithm, best_inst, cache)
    evaluations, improvements = 1, 0
    for step in range(budget - 1):
        if step % 3 == 0:
            candidate = random_instance(
                n_jobs, machines, epsilon, seed=int(rng.integers(2**31)),
                tight_fraction=1.0,
            )
        else:
            candidate = _mutate(best_inst, rng)
            if len(candidate) > 2 * n_jobs:  # keep the exact solver fast
                continue
        ratio = _evaluate(algorithm, candidate, cache)
        evaluations += 1
        if np.isfinite(ratio) and ratio > best_ratio:
            best_ratio, best_inst = ratio, candidate
            improvements += 1
    return SearchResult(
        algorithm=algorithm,
        machines=machines,
        epsilon=epsilon,
        best_ratio=best_ratio,
        best_instance=best_inst,
        evaluations=evaluations,
        improvements=improvements,
    )
