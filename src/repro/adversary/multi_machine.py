"""The three-phase adaptive adversary of Theorem 1.

Protocol (Section 3 of the paper), for ``m`` machines and slack
``epsilon`` in phase ``k`` (i.e. ``epsilon ∈ (eps_{k-1,m}, eps_{k,m}]``):

* **Phase 1** — submit :math:`J_1(0, 1, d_1)` with a comfortably large
  deadline.  If rejected, stop (the forced ratio is unbounded).  Otherwise
  let :math:`t` be the start time the algorithm committed; *all* further
  jobs are released at :math:`t`.
* **Phase 2** — up to :math:`m` subphases.  Subphase ``h`` submits up to
  :math:`2m` identical jobs :math:`J_{2,h}(t, p_{2,h}, t + 2 p_{2,h})`
  whose processing time is the midpoint of the current *overlap interval*
  minus :math:`t` (Lemma 1's halving construction keeps every already
  accepted job running through the overlap interval, so no machine can
  ever execute two jobs).  An acceptance ends the subphase; a fully
  rejected subphase ``u`` ends the phase.  For ``u < k`` the adversary
  stops; otherwise phase 3 starts.
* **Phase 3** — subphases ``h = u .. m``.  Subphase ``h`` submits up to
  :math:`m` identical jobs
  :math:`J_{3,h}(t,\\; p_{3,h} = (f_h - 1) p_{2,u},\\;
  t + p_{2,u} + p_{3,h})`.  An acceptance ends the subphase; a fully
  rejected subphase ends the game.

The forced optimum is computed *constructively* from the lemmas (and is a
certified lower bound on the true offline optimum, which the test-suite
confirms exactly on small instances):

* stop in phase 2 at ``u``:  :math:`OPT \\ge 1 + 2 m \\, p_{2,u}`;
* stop in phase 3 at ``h``:
  :math:`OPT \\ge 1 + \\max(2 m \\, p_{2,u},\\;
  m \\, p_{2,u} + m \\, p_{3,h})`.

With the interval width ``beta -> 0`` the forced ratio approaches
:math:`c(\\varepsilon, m) = (m f_k + 1)/k` for every play of the policy
(Theorem 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.params import ThresholdParameters, threshold_parameters
from repro.engine.policy import Decision, JobSource
from repro.model.job import Job
from repro.utils.intervals import Interval
from repro.utils.tolerances import TIME_EPS


@dataclass
class AdversaryState:
    """Mutable play-by-play bookkeeping of one adversary run."""

    phase: int = 1
    subphase: int = 0  # 1-based index of the current subphase
    submissions_in_subphase: int = 0
    t: float | None = None  # start time of J_1 as committed by the policy
    overlap: Interval | None = None
    p2: dict[int, float] = field(default_factory=dict)  # subphase -> p_{2,h}
    p3: dict[int, float] = field(default_factory=dict)  # subphase -> p_{3,h}
    accepted_p2: list[float] = field(default_factory=list)
    accepted_p3: list[float] = field(default_factory=list)
    u: int | None = None  # final subphase of phase 2
    final_h: int | None = None  # final subphase of phase 3
    j1_accepted: bool | None = None
    done: bool = False


class ThreePhaseAdversary(JobSource):
    """Adaptive job source implementing the Theorem-1 construction.

    Parameters
    ----------
    m, epsilon:
        Machine count and slack; the phase index ``k`` and multipliers
        ``f_k..f_m`` are derived via :func:`threshold_parameters`.
    beta:
        Width of the initial overlap interval (Lemma 1).  Needs
        :math:`2^m` halvings of head-room; the default provides them with
        a wide margin.
    d1:
        Deadline of the phase-1 job; defaults to a value large enough for
        the optimum to push :math:`J_1` after every other job.
    """

    name = "three-phase-adversary"

    def __init__(
        self,
        m: int,
        epsilon: float,
        beta: float | None = None,
        d1: float | None = None,
    ) -> None:
        if m < 1:
            raise ValueError(f"machine count must be >= 1, got {m}")
        self._m = m
        self._epsilon = float(epsilon)
        self.params: ThresholdParameters = threshold_parameters(epsilon, m)
        self.k = self.params.k
        if beta is None:
            beta = min(0.5 ** (m + 6), epsilon / 16.0, 1e-3)
        if beta <= 0 or beta >= 1:
            raise ValueError(f"beta must lie in (0, 1), got {beta}")
        self.beta = beta
        # OPT may schedule J_1 after everything: the last deadline is at
        # most t + p2 + p3 <= (d1 - 1) + 1 + 1/eps; leave slack on top.
        self._d1 = d1 if d1 is not None else 8.0 + 4.0 / self._epsilon
        self.state = AdversaryState()

    # ------------------------------------------------------------------
    # JobSource interface
    # ------------------------------------------------------------------
    @property
    def machines(self) -> int:
        return self._m

    @property
    def epsilon(self) -> float:
        return self._epsilon

    def _factor(self, h: int) -> float:
        """Multiplier :math:`f_h` for subphase ``h`` of phase 3."""
        return self.params.factor_for_rank(h)

    def next_job(self) -> Job | None:
        st = self.state
        if st.done:
            return None
        if st.phase == 1:
            return Job(release=0.0, processing=1.0, deadline=self._d1).with_tags(
                adversary_phase=1
            )
        if st.phase == 2:
            if st.submissions_in_subphase >= 2 * self._m:
                # Fully rejected subphase: phase 2 ends here.
                self._end_phase2()
                return self.next_job()
            assert st.t is not None and st.overlap is not None
            p = st.overlap.midpoint - st.t
            st.p2[st.subphase] = p
            st.submissions_in_subphase += 1
            return Job(release=st.t, processing=p, deadline=st.t + 2.0 * p).with_tags(
                adversary_phase=2, subphase=st.subphase
            )
        if st.phase == 3:
            if st.submissions_in_subphase >= self._m:
                # Fully rejected subphase: the game ends.
                st.final_h = st.subphase
                st.done = True
                return None
            assert st.t is not None and st.u is not None
            p2u = st.p2[st.u]
            p = (self._factor(st.subphase) - 1.0) * p2u
            st.p3[st.subphase] = p
            st.submissions_in_subphase += 1
            return Job(
                release=st.t, processing=p, deadline=st.t + p2u + p
            ).with_tags(adversary_phase=3, subphase=st.subphase)
        raise RuntimeError(f"invalid adversary phase {st.phase}")  # pragma: no cover

    def observe(self, job: Job, decision: Decision) -> None:
        st = self.state
        phase = job.tag("adversary_phase")
        if phase == 1:
            st.j1_accepted = decision.accepted
            if not decision.accepted:
                st.done = True
                return
            st.t = float(decision.start)
            st.overlap = Interval(st.t + 1.0 - self.beta, st.t + 1.0)
            st.phase = 2
            st.subphase = 1
            st.submissions_in_subphase = 0
            return
        if phase == 2:
            if decision.accepted:
                st.accepted_p2.append(job.processing)
                # Lemma 1: shrink the overlap interval to the part covered
                # by the newly committed execution window.
                assert st.overlap is not None and decision.start is not None
                execution = Interval(decision.start, decision.start + job.processing)
                lo = max(st.overlap.start, execution.start)
                hi = min(st.overlap.end, execution.end)
                if hi - lo <= TIME_EPS:  # pragma: no cover - defensive
                    raise RuntimeError(
                        "overlap interval collapsed: beta too small for this run"
                    )
                st.overlap = Interval(lo, hi)
                if st.subphase >= self._m:
                    # All m subphases accepted is impossible by Lemma 1
                    # (m + 1 jobs on m machines); ending the phase here is
                    # defensive.
                    self._end_phase2()  # pragma: no cover - unreachable
                else:
                    st.subphase += 1
                    st.submissions_in_subphase = 0
            return
        if phase == 3:
            if decision.accepted:
                st.accepted_p3.append(job.processing)
                if st.subphase >= self._m:
                    st.final_h = st.subphase
                    st.done = True
                else:
                    st.subphase += 1
                    st.submissions_in_subphase = 0
            return
        raise RuntimeError(f"job without adversary phase tag: {job}")  # pragma: no cover

    def _end_phase2(self) -> None:
        st = self.state
        st.u = st.subphase
        if st.u < self.k:
            st.done = True
            return
        st.phase = 3
        st.submissions_in_subphase = 0
        # phase 3 starts at subphase u.

    # ------------------------------------------------------------------
    # Outcome accounting
    # ------------------------------------------------------------------
    def constructive_optimum(self) -> float:
        """Certified lower bound on the offline optimum of the emitted jobs.

        Follows Lemmas 2 and 4; ``inf`` stands in for the unbounded case
        where :math:`J_1` was rejected and no further job exists.
        """
        st = self.state
        if st.j1_accepted is False:
            return 1.0  # J_1 alone; the *ratio* is infinite (ALG = 0).
        if st.u is None:
            # Game ended inside phase 2 bookkeeping only if J_1 rejected.
            raise RuntimeError("constructive optimum queried before the game ended")
        p2u = st.p2[st.u]
        best = 1.0 + 2.0 * self._m * p2u
        if st.final_h is not None:
            p3h = st.p3[st.final_h]
            best = max(best, 1.0 + self._m * (p2u + p3h))
        return best

    def algorithm_load(self) -> float:
        """Load the policy under test accepted during the game."""
        st = self.state
        base = 1.0 if st.j1_accepted else 0.0
        return base + sum(st.accepted_p2) + sum(st.accepted_p3)

    def outcome_summary(self) -> dict[str, Any]:
        """Play-by-play summary for reports and the Fig. 2 bench."""
        st = self.state
        return {
            "m": self._m,
            "epsilon": self._epsilon,
            "k": self.k,
            "beta": self.beta,
            "j1_accepted": st.j1_accepted,
            "t": st.t,
            "u": st.u,
            "final_h": st.final_h,
            "accepted_p2": list(st.accepted_p2),
            "accepted_p3": list(st.accepted_p3),
            "target_ratio": self.params.c,
        }
