"""Decision-tree enumeration of the adversary game (Fig. 2) and schedule
extraction for highlighted paths (Fig. 3).

Fig. 2 of the paper draws the adversary's protocol as a decision tree whose
branches are the algorithm's accept/reject choices per subphase.  We
reproduce it *executably*: a :class:`ScriptedPolicy` plays any prescribed
accept/reject plan, each root-to-leaf path is simulated as a real duel, and
the leaf ratios are computed from the actually emitted jobs.  Theorem 1's
claim — every leaf forces at least :math:`c(\\varepsilon, m)` — becomes a
checkable property of the enumeration.

A *plan* is ``(u, h)``:

* accept one job in each phase-2 subphase ``1 .. u-1``, reject all of
  subphase ``u`` (``u ∈ {1..m}``);
* if ``u >= k``: accept one job in each phase-3 subphase ``u .. h-1``,
  reject all of subphase ``h`` (``h ∈ {u..m}``); phase-3 acceptance needs
  an idle machine, which exists exactly while the subphase index is below
  ``m`` — so every syntactically valid plan is playable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.adversary.base import DuelResult, duel
from repro.adversary.multi_machine import ThreePhaseAdversary
from repro.core.params import threshold_parameters
from repro.engine.policy import Decision, OnlinePolicy
from repro.model.job import Job
from repro.model.machine import MachineState


class ScriptedPolicy(OnlinePolicy):
    """Plays a fixed accept/reject plan against the three-phase adversary.

    The policy reads the adversary's phase/subphase tags — it is a probe
    for enumerating the game tree, not a legitimate online algorithm.
    """

    def __init__(self, u: int, h: int | None, start_delay: float = 0.0) -> None:
        self.u = u
        self.h = h
        self.start_delay = start_delay
        self.name = f"scripted(u={u}, h={h})"

    def on_submission(
        self, job: Job, t: float, machines: Sequence[MachineState]
    ) -> Decision:
        phase = job.tag("adversary_phase")
        if phase == 1:
            # Accept J_1, optionally delaying its start (Fig. 3 shows the
            # online algorithm starting J_1 at t >= 1).
            start = max(t, job.release + self.start_delay)
            start = min(start, job.latest_start)
            return Decision.accept(machine=0, start=start)
        subphase = job.tag("subphase")
        accept = (phase == 2 and subphase < self.u) or (
            phase == 3 and self.h is not None and subphase < self.h
        )
        if not accept:
            return Decision.reject(scripted=True)
        idle = [ms for ms in machines if ms.is_idle_from(t)]
        if not idle:  # pragma: no cover - plans are constructed playable
            return Decision.reject(scripted=True, forced=True)
        chosen = min(idle, key=lambda ms: ms.index)
        return Decision.accept(machine=chosen.index, start=chosen.append_start(job, t))


@dataclass
class PathOutcome:
    """One root-to-leaf path of the Fig. 2 tree, fully simulated."""

    u: int
    h: int | None
    forced_ratio: float
    target_ratio: float
    algorithm_load: float
    constructive_opt: float
    duel: DuelResult

    @property
    def label(self) -> str:
        """Compact node label matching the Fig. 2 vocabulary."""
        if self.h is None:
            return f"phase2-stop(u={self.u})"
        return f"phase3-stop(u={self.u}, h={self.h})"


def enumerate_decision_tree(
    m: int,
    epsilon: float,
    beta: float | None = None,
    start_delay: float = 0.0,
) -> list[PathOutcome]:
    """Simulate every plan of the game tree for ``(m, epsilon)``.

    Returns one :class:`PathOutcome` per leaf, ordered by ``(u, h)``.
    """
    params = threshold_parameters(epsilon, m)
    k = params.k
    outcomes: list[PathOutcome] = []
    for u in range(1, m + 1):
        if u < k:
            plans: list[tuple[int, int | None]] = [(u, None)]
        else:
            plans = [(u, h) for h in range(u, m + 1)]
        for u_plan, h_plan in plans:
            policy = ScriptedPolicy(u=u_plan, h=h_plan, start_delay=start_delay)
            result = duel(policy, m=m, epsilon=epsilon, beta=beta)
            outcomes.append(
                PathOutcome(
                    u=u_plan,
                    h=h_plan,
                    forced_ratio=result.forced_ratio,
                    target_ratio=result.target_ratio,
                    algorithm_load=result.algorithm_load,
                    constructive_opt=result.constructive_opt,
                    duel=result,
                )
            )
    return outcomes


def render_decision_tree(outcomes: list[PathOutcome]) -> str:
    """ASCII rendering of the enumerated tree (the Fig. 2 artifact)."""
    lines = ["J1 accepted, all further jobs at time t"]
    by_u: dict[int, list[PathOutcome]] = {}
    for o in outcomes:
        by_u.setdefault(o.u, []).append(o)
    for u in sorted(by_u):
        group = by_u[u]
        lines.append(f"├─ phase 2 stops at subphase u={u}")
        for o in group:
            if o.h is None:
                lines.append(
                    f"│   └─ leaf: stop (u<k)  ratio={o.forced_ratio:.4f}"
                    f"  (target c={o.target_ratio:.4f})"
                )
            else:
                lines.append(
                    f"│   ├─ phase 3 stops at h={o.h}:"
                    f"  ratio={o.forced_ratio:.4f}  (target c={o.target_ratio:.4f})"
                )
    return "\n".join(lines)


def render_decision_tree_dot(outcomes: list[PathOutcome], title: str = "") -> str:
    """Graphviz DOT rendering of the enumerated game tree (Fig. 2 artwork).

    Nodes are adversary states (phase/subphase); edges are the algorithm's
    accept/continue vs reject/stop choices; leaves carry the forced ratio.
    The text is plain DOT — render with ``dot -Tsvg`` where available, or
    read directly (the structure is the artefact).
    """
    lines = [
        "digraph fig2 {",
        '  rankdir=TB; node [fontsize=11, shape=box, style=rounded];',
    ]
    if title:
        lines.append(f'  label="{title}"; labelloc=t;')
    lines.append('  root [label="phase 1: J1 accepted\\nall further jobs at t"];')
    seen_u: set[int] = set()
    for o in sorted(outcomes, key=lambda o: (o.u, o.h if o.h is not None else -1)):
        u_node = f"u{o.u}"
        if o.u not in seen_u:
            seen_u.add(o.u)
            lines.append(
                f'  {u_node} [label="phase 2 stops\\nat subphase u={o.u}"];'
            )
            lines.append(f"  root -> {u_node};")
        if o.h is None:
            leaf = f"leaf_u{o.u}"
            lines.append(
                f'  {leaf} [shape=ellipse, label="stop (u<k)\\n'
                f'ratio={o.forced_ratio:.4f}"];'
            )
            lines.append(f"  {u_node} -> {leaf};")
        else:
            leaf = f"leaf_u{o.u}_h{o.h}"
            lines.append(
                f'  {leaf} [shape=ellipse, label="phase 3 stops at h={o.h}\\n'
                f'ratio={o.forced_ratio:.4f}"];'
            )
            lines.append(f"  {u_node} -> {leaf};")
    lines.append("}")
    return "\n".join(lines)


def red_path_schedules(
    m: int = 3,
    epsilon: float = 0.2,
    beta: float | None = None,
) -> tuple[DuelResult, str]:
    """The Fig. 3 artifact: online schedule of the highlighted path.

    Fig. 2/3 use ``m = 3`` and ``epsilon ∈ [eps_{1,3}, eps_{2,3})`` (phase
    ``k = 2``); the highlighted (red) path accepts through phase 2 up to
    ``u = 2`` and through phase 3 up to ``h = 3``, with :math:`J_1` started
    at ``t >= 1``.  Returns the duel result plus an ASCII Gantt chart of
    the online schedule.
    """
    policy = ScriptedPolicy(u=2, h=3, start_delay=1.0)
    result = duel(policy, m=m, epsilon=epsilon, beta=beta)
    return result, result.schedule.gantt_ascii()
