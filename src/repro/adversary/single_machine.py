"""Goldwasser's classic two-job single-machine adversary.

Section 1.1's warm-up construction: submit :math:`J_1(0, 1, 1+\\varepsilon)`
(unit job with tight slack).  If the algorithm rejects, stop — unbounded
ratio.  Otherwise, the moment the algorithm *starts* the job (immediate
commitment fixes this moment at acceptance time), submit a second job with
processing time :math:`p` slightly below :math:`1/\\varepsilon` and tight
slack.  The busy machine cannot fit it, forcing ratio
:math:`(1 + p)/1 \\to 1 + 1/\\varepsilon`.

The paper notes the *optimal* single-machine bound is
:math:`2 + 1/\\varepsilon`; the sharper version is exactly what the
three-phase adversary of :mod:`repro.adversary.multi_machine` produces at
``m = 1``, which the test-suite verifies.  This module keeps the simple
construction because it is the didactic entry point (and exercises the
tight-slack code path).
"""

from __future__ import annotations

from repro.engine.policy import Decision, JobSource
from repro.model.job import Job, tight_deadline


class GoldwasserTwoJobAdversary(JobSource):
    """Two-job warm-up adversary forcing :math:`\\approx 1 + 1/\\varepsilon`."""

    name = "goldwasser-two-job"

    def __init__(self, epsilon: float, gap: float = 1e-6) -> None:
        if epsilon <= 0 or epsilon > 1:
            raise ValueError(f"slack must lie in (0, 1], got {epsilon}")
        if gap <= 0:
            raise ValueError(f"gap must be positive, got {gap}")
        self._epsilon = epsilon
        #: processing time of the killer job, slightly below 1/eps.
        self.killer_p = max(1.0, 1.0 / epsilon - gap)
        self._stage = 0
        self._t: float | None = None
        self.j1_accepted: bool | None = None
        self.killer_accepted: bool | None = None

    @property
    def machines(self) -> int:
        return 1

    @property
    def epsilon(self) -> float:
        return self._epsilon

    def next_job(self) -> Job | None:
        if self._stage == 0:
            return Job(
                release=0.0,
                processing=1.0,
                deadline=tight_deadline(0.0, 1.0, self._epsilon),
            ).with_tags(role="bait")
        if self._stage == 1 and self.j1_accepted:
            assert self._t is not None
            return Job(
                release=self._t,
                processing=self.killer_p,
                deadline=tight_deadline(self._t, self.killer_p, self._epsilon),
            ).with_tags(role="killer")
        return None

    def observe(self, job: Job, decision: Decision) -> None:
        if job.tag("role") == "bait":
            self.j1_accepted = decision.accepted
            self._t = float(decision.start) if decision.accepted else None
            self._stage = 1
        else:
            self.killer_accepted = decision.accepted
            self._stage = 2

    def forced_ratio(self) -> float:
        """Ratio forced on the policy (``inf`` when the bait was rejected)."""
        if not self.j1_accepted:
            return float("inf")
        if self.killer_accepted:
            # The killer was schedulable after all (large start-time games);
            # the adversary then achieved nothing beyond ratio ~1.
            return (1.0 + self.killer_p) / (1.0 + self.killer_p)
        return (1.0 + self.killer_p) / 1.0
