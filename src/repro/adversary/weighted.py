"""The weighted-objective impossibility (Lucier et al., quoted in §1).

For the general objective :math:`\\sum w_j (1 - U_j)` with arbitrary
non-negative weights, *no* online algorithm with immediate commitment has
a bounded competitive ratio — for any slack.  The paper cites this
(Lucier et al. [28]) as the reason it studies the load objective
:math:`w_j = p_j`.  This module makes the impossibility executable.

Construction (weight escalation)
--------------------------------

All jobs are unit-length with slack exactly :math:`\\varepsilon \\le 1`
and overlapping windows, so no machine can ever run two of them (the same
Lemma-1 overlap-interval bookkeeping as the three-phase adversary).  The
adversary submits jobs of weights :math:`1, R, R^2, \\dots`:

* if the algorithm rejects the level-:math:`i` job, submission stops; it
  has collected at most :math:`\\sum_{j<i} R^j < \\frac{R^i}{R-1} \\cdot
  \\frac{R-1}{R-1}` while the optimum takes the top-:math:`m` weights
  including :math:`R^i`, forcing ratio :math:`> R - 1`;
* if the algorithm accepts levels :math:`0..m-1`, all machines are
  occupied, level :math:`m` *must* be rejected, and the same bound fires.

Hence the forced ratio grows without bound in the escalation factor
:math:`R` — the headline of benchmark E15.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.engine.policy import Decision, JobSource, OnlinePolicy
from repro.engine.simulator import simulate_source
from repro.model.job import Job
from repro.utils.intervals import Interval
from repro.utils.tolerances import TIME_EPS


class WeightedEscalationAdversary(JobSource):
    """Escalating-weight adversary for the general objective.

    Parameters
    ----------
    m, epsilon:
        Machines and slack (any ``epsilon`` in (0, 1]).
    escalation:
        The weight ratio ``R > 1`` between consecutive submissions.
    beta:
        Width of the overlap interval used to keep the unit jobs mutually
        exclusive per machine.
    """

    name = "weighted-escalation-adversary"

    def __init__(
        self, m: int, epsilon: float, escalation: float = 10.0, beta: float | None = None
    ) -> None:
        if m < 1:
            raise ValueError(f"machine count must be >= 1, got {m}")
        if not 0 < epsilon <= 1:
            raise ValueError(f"slack must lie in (0, 1], got {epsilon}")
        if escalation <= 1:
            raise ValueError(f"escalation must exceed 1, got {escalation}")
        self._m = m
        self._epsilon = epsilon
        self.escalation = escalation
        self.beta = beta if beta is not None else min(0.5 ** (m + 6), epsilon / 16.0)
        self.level = 0
        self.done = False
        self.accepted_weights: list[float] = []
        self.all_weights: list[float] = []
        self.overlap: Interval | None = None

    # ------------------------------------------------------------------
    @property
    def machines(self) -> int:
        return self._m

    @property
    def epsilon(self) -> float:
        return self._epsilon

    def _processing(self) -> tuple[float, float]:
        """(release, processing) for the next unit-ish job.

        The first job anchors the overlap interval; later jobs are sized
        to the interval midpoint so every execution must cross it
        (Lemma 1's argument — one job per machine, ever).
        """
        if self.overlap is None:
            return 0.0, 1.0
        return 0.0, self.overlap.midpoint

    def next_job(self) -> Job | None:
        if self.done or self.level > self._m:
            return None
        release, processing = self._processing()
        weight = self.escalation**self.level
        self.all_weights.append(weight)
        return Job(
            release=release,
            processing=processing,
            deadline=release + (1.0 + self._epsilon) * processing,
            weight=weight,
        ).with_tags(level=self.level)

    def observe(self, job: Job, decision: Decision) -> None:
        if decision.accepted:
            self.accepted_weights.append(float(job.weight))
            execution = Interval(decision.start, decision.start + job.processing)
            if self.overlap is None:
                self.overlap = Interval(
                    execution.end - self.beta, execution.end
                )
            else:
                lo = max(self.overlap.start, execution.start)
                hi = min(self.overlap.end, execution.end)
                if hi - lo <= TIME_EPS:  # pragma: no cover - defensive
                    raise RuntimeError("overlap interval collapsed; reduce beta")
                self.overlap = Interval(lo, hi)
            self.level += 1
            if self.level > self._m:
                self.done = True
        else:
            self.done = True

    # ------------------------------------------------------------------
    def constructive_optimum(self) -> float:
        """Top-``m`` submitted weights (pairwise-conflicting unit jobs)."""
        return float(sum(sorted(self.all_weights, reverse=True)[: self._m]))

    def algorithm_value(self) -> float:
        """Weighted value collected by the policy under test."""
        return float(sum(self.accepted_weights))


@dataclass
class WeightedDuelResult:
    """Outcome of one escalation game."""

    policy_name: str
    m: int
    epsilon: float
    escalation: float
    forced_ratio: float
    algorithm_value: float
    optimum: float
    levels_accepted: int
    summary: dict[str, Any] = field(default_factory=dict)


def weighted_duel(
    policy: OnlinePolicy, m: int, epsilon: float, escalation: float = 10.0
) -> WeightedDuelResult:
    """Play the escalation adversary against *policy*."""
    adversary = WeightedEscalationAdversary(m=m, epsilon=epsilon, escalation=escalation)
    simulate_source(policy, adversary)
    alg = adversary.algorithm_value()
    opt = adversary.constructive_optimum()
    ratio = math.inf if alg <= 0 else opt / alg
    return WeightedDuelResult(
        policy_name=policy.name,
        m=m,
        epsilon=epsilon,
        escalation=escalation,
        forced_ratio=ratio,
        algorithm_value=alg,
        optimum=opt,
        levels_accepted=len(adversary.accepted_weights),
        summary={"weights": adversary.all_weights},
    )
