"""Duel harness: run a policy against an adaptive adversary.

The harness wires a :class:`~repro.engine.policy.JobSource` adversary into
the standard simulator, then extracts the forced competitive ratio using
the adversary's constructive optimum (a certified lower bound on the true
offline optimum — optionally cross-checked against the exact solver on
small instances via ``verify_opt=True``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

from repro.adversary.multi_machine import ThreePhaseAdversary
from repro.engine.policy import OnlinePolicy
from repro.engine.simulator import simulate_source
from repro.model.schedule import Schedule
from repro.offline.bounds import flow_upper_bound
from repro.offline.exact import EXACT_JOB_LIMIT, exact_optimum


@dataclass
class DuelResult:
    """Outcome of one adversary-vs-policy game."""

    policy_name: str
    m: int
    epsilon: float
    forced_ratio: float
    target_ratio: float
    algorithm_load: float
    constructive_opt: float
    schedule: Schedule
    summary: dict[str, Any]
    exact_opt: float | None = None
    flow_opt_bound: float | None = None

    @property
    def unbounded(self) -> bool:
        """Whether the policy was forced into an unbounded ratio."""
        return math.isinf(self.forced_ratio)

    @property
    def stats(self) -> Any:
        """Kernel :class:`~repro.engine.kernel.RunStats` of the duel run."""
        return self.schedule.meta.get("stats")

    def ratio_vs_target(self) -> float:
        """Forced ratio normalised by the theoretical target ``c(eps, m)``."""
        return self.forced_ratio / self.target_ratio


def duel(
    policy: OnlinePolicy | Callable[[], OnlinePolicy],
    m: int,
    epsilon: float,
    beta: float | None = None,
    verify_opt: bool = False,
    record_events: bool = False,
) -> DuelResult:
    """Play the Theorem-1 adversary against *policy*.

    The game runs on the shared simulation kernel, so the returned
    schedule carries the same trace/stats instrumentation as any other
    run (``record_events=True`` additionally captures the kernel event
    stream).  ``verify_opt=True`` additionally computes the exact offline
    optimum of the emitted instance (small games only) and the flow upper
    bound — used by tests to certify the constructive optimum.
    """
    policy_obj = policy() if callable(policy) and not isinstance(policy, OnlinePolicy) else policy
    adversary = ThreePhaseAdversary(m=m, epsilon=epsilon, beta=beta)
    schedule = simulate_source(policy_obj, adversary, record_events=record_events)

    alg = adversary.algorithm_load()
    opt = adversary.constructive_optimum()
    ratio = math.inf if alg <= 0 else opt / alg

    exact_opt = None
    flow_bound = None
    if verify_opt and len(schedule.instance) > 0:
        flow_bound = flow_upper_bound(schedule.instance)
        if len(schedule.instance) <= EXACT_JOB_LIMIT:
            exact_opt = exact_optimum(schedule.instance).value

    return DuelResult(
        policy_name=policy_obj.name,
        m=m,
        epsilon=epsilon,
        forced_ratio=ratio,
        target_ratio=adversary.params.c,
        algorithm_load=alg,
        constructive_opt=opt,
        schedule=schedule,
        summary=adversary.outcome_summary(),
        exact_opt=exact_opt,
        flow_opt_bound=flow_bound,
    )
