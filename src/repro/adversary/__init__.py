"""Adversarial lower-bound constructions (Section 3 of the paper).

* :mod:`repro.adversary.multi_machine` — the three-phase adaptive adversary
  behind Theorem 1, implemented as a
  :class:`~repro.engine.policy.JobSource` that reacts to every decision of
  the policy under test.
* :mod:`repro.adversary.single_machine` — Goldwasser's classic two-job
  single-machine construction (Section 1.1's warm-up).
* :mod:`repro.adversary.base` — the duel harness: run a policy against an
  adversary, compute the forced ratio with a constructive (certified)
  optimum.
* :mod:`repro.adversary.analysis` — decision-tree enumeration (Fig. 2) and
  schedule extraction for highlighted paths (Fig. 3).
"""

from repro.adversary.base import DuelResult, duel
from repro.adversary.multi_machine import ThreePhaseAdversary
from repro.adversary.single_machine import GoldwasserTwoJobAdversary
from repro.adversary.analysis import (
    PathOutcome,
    ScriptedPolicy,
    enumerate_decision_tree,
    render_decision_tree,
    render_decision_tree_dot,
)
from repro.adversary.search import SearchResult, falsify
from repro.adversary.weighted import (
    WeightedEscalationAdversary,
    WeightedDuelResult,
    weighted_duel,
)

__all__ = [
    "DuelResult",
    "duel",
    "ThreePhaseAdversary",
    "GoldwasserTwoJobAdversary",
    "PathOutcome",
    "ScriptedPolicy",
    "enumerate_decision_tree",
    "render_decision_tree",
    "render_decision_tree_dot",
    "WeightedEscalationAdversary",
    "WeightedDuelResult",
    "weighted_duel",
    "SearchResult",
    "falsify",
]
