"""Legacy shim so `pip install -e .` works without the `wheel` package.

The environment for this reproduction is offline and ships setuptools 65
without `wheel`; PEP 660 editable installs need `bdist_wheel`, so pip falls
back to this setup.py when invoked as `python setup.py develop`.  All real
metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
