"""E21 — end-to-end case study: a multi-day IaaS cluster under overload.

The integration bench a systems paper would run: 400 jobs of the
three-class cloud mix over several diurnal cycles at 2x offered load on a
4-machine fleet, comparing the paper's Threshold algorithm against
greedy.  Reported per algorithm: certified ratio, per-class SLA
attainment, responsiveness, and the utilization timeline.

Shape claims asserted:

* both algorithms stay within their published guarantees (certified);
* Threshold's accepted *mix* tilts toward the big batch/analytics classes
  relative to greedy (its deadline gate filters small interactive fillers
  first) — measured as the batch:interactive acceptance-rate ratio;
* all audits pass end to end.
"""

from repro.analysis.latency import compare_latency
from repro.analysis.sla import service_table
from repro.analysis.tables import format_table
from repro.analysis.timeline import render_heat_strip, utilization
from repro.core.guarantees import guarantee_for
from repro.engine.audit import audit_run
from repro.engine.simulator import simulate
from repro.baselines.greedy import GreedyPolicy
from repro.core.threshold import ThresholdPolicy
from repro.offline.bracket import opt_bracket
from repro.workloads.cloud import cloud_instance

N, M, EPS = 400, 4, 0.1


def run_case_study():
    instance = cloud_instance(
        N, M, EPS, seed=11, utilization=2.0, day_length=40.0
    )
    schedules = {
        "threshold": simulate(ThresholdPolicy(), instance),
        "greedy": simulate(GreedyPolicy(), instance),
    }
    bracket = opt_bracket(instance, force_bounds=True)
    return instance, schedules, bracket


def test_e21_case_study(benchmark, save_artifact):
    instance, schedules, bracket = benchmark.pedantic(
        run_case_study, rounds=1, iterations=1
    )

    for name, schedule in schedules.items():
        audit_run(schedule)
        ratio = bracket.upper / schedule.accepted_load
        assert ratio <= guarantee_for(name, EPS, M) + 1e-9, (name, ratio)

    sla = service_table(schedules)
    by_class = {row["service"]: row for row in sla}
    tilt = lambda alg: (
        by_class["batch"][alg] / max(by_class["interactive"][alg], 1e-9)
    )
    assert tilt("threshold") > 2.0 * tilt("greedy"), (
        "threshold must tilt acceptance toward the big classes"
    )

    # ---- artefact -------------------------------------------------------
    header = [
        f"E21 — case study: {N} jobs, m={M}, eps={EPS}, 2x offered load, "
        "diurnal cloud mix",
        "",
        format_table(
            [
                {
                    "algorithm": name,
                    "accepted_load": s.accepted_load,
                    "certified_ratio": bracket.upper / s.accepted_load,
                    "guarantee": guarantee_for(name, EPS, M),
                }
                for name, s in schedules.items()
            ],
            title="headline",
        ),
        "",
        format_table(sla, title="per-class load acceptance rate", precision=3),
        "",
        format_table(
            compare_latency(schedules),
            columns=["algorithm", "mean_wait", "p95_wait", "mean_stretch"],
            title="responsiveness",
            precision=3,
        ),
        "",
        "utilization:",
    ]
    for name, s in schedules.items():
        header.append(render_heat_strip(utilization(s, windows=72), label=name[:8]))
    save_artifact("e21_case_study.txt", "\n".join(header) + "\n")
    benchmark.extra_info["tilt_threshold"] = tilt("threshold")
    benchmark.extra_info["tilt_greedy"] = tilt("greedy")
