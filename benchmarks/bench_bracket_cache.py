"""E23 — content-addressed bracket cache: cold vs warm OPT reuse.

The offline bracket (exact OPT below ``EXACT_JOB_LIMIT``) dominates sweep
cost, and it is pure in the instance content — so a crash-and-resume
rerun, or any re-execution of a grid already certified once, should pay
for it exactly once.  This bench measures the
:class:`repro.offline.cache.BracketCache` doing that job:

* **cold vs warm bracket stage** — computing every cell bracket of a
  grid against an empty cache, then again against the populated
  directory through a fresh process-local tier (so every hit is a disk
  hit, the worst case).  The warm pass must be at least 5x faster and
  recompute nothing;
* **interrupt / resume / rerun** — a journal-backed resilient run is
  hard-interrupted mid-grid, resumed to completion, then the full sweep
  is re-run warm: the rerun must hit the cache on every cell (zero
  bracket recomputes) and reproduce the resumed rows bit-identically.

Run directly (``python benchmarks/bench_bracket_cache.py``) to write the
machine-readable snapshot ``BENCH_cache.json`` at the repository root.
"""

import json
import tempfile
import time
from functools import partial
from pathlib import Path

from repro.analysis.tables import format_table
from repro.offline.cache import BracketCache
from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.random_instances import random_instance
from repro.workloads.resilient import SweepInterrupted
from repro.workloads.sweep import SweepSpec, cell_bracket

EPSILONS = [0.1, 0.25]
MACHINES = [2, 3]
REPS = 3
N_JOBS = 12  # inside the exact-solver region: cold brackets are expensive
INTERRUPT_AFTER = 4


def _spec() -> SweepSpec:
    return SweepSpec(
        epsilons=EPSILONS,
        machine_counts=MACHINES,
        algorithms=["threshold", "greedy"],
        workload=partial(random_instance, N_JOBS),
        repetitions=REPS,
        base_seed=23,
        label="bracket-cache",
    )


def _bracket_stage(spec: SweepSpec, cache: BracketCache) -> float:
    """Compute every cell's bracket through *cache*; returns seconds."""
    t0 = time.perf_counter()
    for eps, m, rep in spec.cells():
        instance = spec.workload(m, eps, spec.cell_seed(eps, m, rep))
        cell_bracket(spec, instance, cache)
    return time.perf_counter() - t0


def snapshot() -> dict:
    """Measure cold/warm bracket reuse and the interrupt-resume-rerun flow."""
    spec = _spec()
    cells = len(list(spec.cells()))

    with tempfile.TemporaryDirectory() as cache_dir:
        cold = BracketCache(cache_dir)
        cold_seconds = _bracket_stage(spec, cold)
        assert cold.stats.misses == cells and cold.stats.writes == cells

        # Fresh cache object on the same directory: empty LRU, so every
        # lookup exercises the disk tier — the worst-case warm path.
        warm = BracketCache(cache_dir)
        warm_seconds = _bracket_stage(spec, warm)

        cold_stats, warm_stats = cold.stats.as_dict(), warm.stats.as_dict()

    # Crash / resume / warm-rerun round trip through the journal.
    with tempfile.TemporaryDirectory() as workdir:
        cache_dir = str(Path(workdir) / "brackets")
        journal = str(Path(workdir) / "sweep.jsonl")
        try:
            execute_sweep(
                spec,
                ExecutionPolicy(
                    journal=journal,
                    interrupt_after=INTERRUPT_AFTER,
                    workers=2,
                    cache=BracketCache(cache_dir),
                ),
            )
            raise RuntimeError("interrupt_after did not trigger")
        except SweepInterrupted:
            pass
        resumed = execute_sweep(
            spec,
            ExecutionPolicy(
                journal=journal,
                resume=True,
                workers=2,
                cache=BracketCache(cache_dir),
            ),
        )
        assert resumed.complete
        rerun_cache = BracketCache(cache_dir)
        rerun_rows = execute_sweep(spec, ExecutionPolicy(cache=rerun_cache)).rows
        rerun_stats = rerun_cache.stats.as_dict()

    return {
        "bench": "E23 bracket cache",
        "cells": cells,
        "n_jobs": N_JOBS,
        "machines": MACHINES,
        "epsilons": EPSILONS,
        "repetitions": REPS,
        "base_seed": 23,
        "cold_seconds": round(cold_seconds, 6),
        "warm_seconds": round(warm_seconds, 6),
        "speedup": round(cold_seconds / warm_seconds, 2),
        "cold": cold_stats,
        "warm": warm_stats,
        "resumed_replayed": resumed.manifest.cells_replayed,
        "rerun": rerun_stats,
        "rerun_rows_identical": rerun_rows == resumed.rows,
    }


def test_e23_bracket_cache(benchmark, save_artifact):
    snap = benchmark.pedantic(snapshot, rounds=1, iterations=1)

    # Warm pass recomputes nothing and is at least 5x faster.
    assert snap["warm"]["misses"] == 0
    assert snap["warm"]["hit_rate"] == 1.0
    assert snap["speedup"] >= 5.0, snap

    # A journal-resumed grid left the cache complete: the full warm rerun
    # recomputes zero brackets and reproduces the resumed rows exactly.
    assert snap["resumed_replayed"] >= INTERRUPT_AFTER
    assert snap["rerun"]["misses"] == 0
    assert snap["rerun"]["hit_rate"] == 1.0
    assert snap["rerun_rows_identical"]

    benchmark.extra_info.update(
        {
            "cells": snap["cells"],
            "cold_seconds": snap["cold_seconds"],
            "warm_seconds": snap["warm_seconds"],
            "speedup": snap["speedup"],
            "rerun_hit_rate": snap["rerun"]["hit_rate"],
        }
    )
    rows = [
        {
            "pass": "cold (empty cache)",
            "seconds": snap["cold_seconds"],
            "hits": snap["cold"]["hits"],
            "misses": snap["cold"]["misses"],
            "writes": snap["cold"]["writes"],
        },
        {
            "pass": "warm (disk tier only)",
            "seconds": snap["warm_seconds"],
            "hits": snap["warm"]["hits"],
            "misses": snap["warm"]["misses"],
            "writes": snap["warm"]["writes"],
        },
        {
            "pass": "rerun after crash+resume",
            "seconds": float("nan"),
            "hits": snap["rerun"]["hits"],
            "misses": snap["rerun"]["misses"],
            "writes": snap["rerun"]["writes"],
        },
    ]
    save_artifact(
        "e23_bracket_cache.txt",
        format_table(
            rows,
            title=f"E23 — bracket cache: {snap['cells']} cells, n={N_JOBS} "
            f"(exact OPT), warm speedup {snap['speedup']}x",
        ),
    )


def main() -> int:
    snap = snapshot()
    out = Path(__file__).resolve().parent.parent / "BENCH_cache.json"
    out.write_text(json.dumps(snap, indent=2) + "\n")
    print(f"cold bracket stage : {snap['cold_seconds'] * 1e3:10.1f} ms")
    print(f"warm bracket stage : {snap['warm_seconds'] * 1e3:10.1f} ms")
    print(f"speedup            : {snap['speedup']:10.1f} x")
    print(f"rerun hit rate     : {100 * snap['rerun']['hit_rate']:10.0f} %")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
