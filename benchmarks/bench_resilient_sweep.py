"""E22 — fault-tolerant sweep execution under injected chaos.

The benchmark grids behind Theorems 1–2 only certify the paper's bounds
if they can *finish*; this bench measures the resilience layer that
makes long grids durable.  It runs the same sweep three ways — classic
serial, strict parallel, and the resilient runner under a deterministic
chaos plan (crashes, hangs, transient errors, corrupted rows) — and
records completion, recovery and overhead numbers.

Checks:

* with no faults injected, the resilient runner's rows are bit-identical
  to the serial path (the determinism contract survives process
  recycling);
* under chaos, every transiently-faulted cell is recovered by retries
  and only persistently-poisoned cells are quarantined;
* a journal-backed run interrupted mid-grid resumes to a row set
  bit-identical to the uninterrupted serial sweep;
* the fault-free overhead of the resilient scheduler stays within an
  order of magnitude of the strict pool (fresh-process isolation is the
  price of fault containment; cells are coarse enough to amortise it).
"""

import time
from functools import partial

from repro.analysis.tables import format_table
from repro.testing.chaos import ChaosPlan
from repro.workloads.cloud import cloud_instance
from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.resilient import SweepInterrupted
from repro.workloads.sweep import SweepSpec

EPSILONS = [0.1, 0.2, 0.4]
MACHINES = 3
REPS = 4
N_JOBS = 40

CHAOS = ChaosPlan(
    crash_rate=0.12,
    hang_rate=0.08,
    error_rate=0.12,
    corrupt_rate=0.1,
    persistent_rate=0.35,
    hang_seconds=30.0,
    seed=9,
)


def _spec() -> SweepSpec:
    return SweepSpec(
        epsilons=EPSILONS,
        machine_counts=[MACHINES],
        algorithms=["threshold", "greedy"],
        workload=partial(cloud_instance, N_JOBS),
        repetitions=REPS,
        base_seed=99,
        force_bounds=True,
        label="resilient-sweep",
    )


def measure():
    spec = _spec()
    timings = {}

    t0 = time.perf_counter()
    serial = execute_sweep(spec).rows
    timings["serial"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = execute_sweep(
        spec, ExecutionPolicy(workers=4, retries=0, strict=True)
    ).rows
    timings["parallel"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    clean = execute_sweep(spec, ExecutionPolicy(workers=4))
    timings["resilient (no faults)"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    chaotic = execute_sweep(
        spec,
        ExecutionPolicy(
            chaos=CHAOS, timeout=2.0, retries=2, backoff=0.05, workers=4
        ),
    )
    timings["resilient (chaos)"] = time.perf_counter() - t0

    # Hard-kill + resume round trip through the journal.
    import tempfile

    journal = tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False).name
    try:
        execute_sweep(
            spec, ExecutionPolicy(journal=journal, interrupt_after=5, workers=4)
        )
        resumed = None
    except SweepInterrupted:
        resumed = execute_sweep(
            spec, ExecutionPolicy(journal=journal, resume=True, workers=4)
        )

    return serial, parallel, clean, chaotic, resumed, timings


def test_e22_resilient_sweep(benchmark, save_artifact):
    serial, parallel, clean, chaotic, resumed, timings = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    assert parallel == serial
    assert clean.complete and clean.rows == serial

    spec = _spec()
    faults = CHAOS.faulted_cells(spec.cell_seed(*c) for c in spec.cells())
    poisoned = {seed for seed, (_, persistent) in faults.items() if persistent}
    manifest = chaotic.manifest
    assert {f.seed for f in manifest.failures} == poisoned
    assert manifest.recovered == len(faults) - len(poisoned)

    assert resumed is not None and resumed.complete
    assert resumed.rows == serial
    assert resumed.manifest.cells_replayed >= 5

    rows = [
        {"path": name, "seconds": seconds, "x serial": seconds / timings["serial"]}
        for name, seconds in timings.items()
    ]
    rows.append(
        {
            "path": f"chaos outcome: {manifest.summary()}",
            "seconds": float("nan"),
            "x serial": float("nan"),
        }
    )
    benchmark.extra_info.update(
        {
            "cells": manifest.cells_total,
            "faulted": len(faults),
            "recovered": manifest.recovered,
            "quarantined": manifest.quarantined,
            "resilient_overhead_x": timings["resilient (no faults)"]
            / timings["parallel"],
        }
    )
    save_artifact(
        "e22_resilient_sweep.txt",
        format_table(
            rows,
            title=f"E22 — resilient sweep: {len(list(spec.cells()))} cells, "
            f"{len(faults)} chaos-faulted ({len(poisoned)} poisoned)",
        ),
    )
