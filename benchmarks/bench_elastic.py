"""E26 — elastic vs static scheduling under a 10x-slow worker.

The sharding layer (E24) fixes cell->host assignment up front, so a
heterogeneous fleet pays for its slowest member: one 10x-slow host
stretches the merged sweep by roughly the slow shard's whole wall-clock
(straggler ratio ~2-3 on four shards).  The elastic pull scheduler
(`repro.workloads.elastic`) removes that tax — workers lease cells from
a shared queue under heartbeats, a dead worker's cells re-dispatch, and
the end-game speculatively re-executes stragglers — so per-worker
wall-clock stays near-uniform even with one 10x-slow worker *and* one
worker that dies mid-sweep.  This bench runs the same grid both ways
and certifies:

* static shard assignment: straggler ratio (max/mean shard wall-clock)
  **>= 1.9** with one 10x-slow host;
* elastic pool under the same slowness plus a dying worker: worker
  straggler ratio (max/mean per-worker wall-clock) **< 1.2**, zero
  cells quarantined;
* both datasets — the shard merge and the elastic journal — are
  **bit-identical** to the serial scalar run.

Run directly (``python benchmarks/bench_elastic.py``) to write the
machine-readable snapshot ``BENCH_elastic.json`` at the repository
root.
"""

import json
import os
import tempfile
import time
from functools import partial
from pathlib import Path

from repro.analysis.tables import format_table
from repro.testing import WorkerChaosPlan
from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.random_instances import random_instance
from repro.workloads.sharding import merge_journals, shard_journal_paths
from repro.workloads.sweep import SweepSpec

EPSILONS = [0.2, 0.4]
MACHINES = [1, 2]
REPS = 4
N_JOBS = 10
N_SHARDS = 4
#: Injected per-cell delay on the slow host/worker (~10x a healthy cell,
#: which costs ~20 ms here including process spawn overhead).
SLOW_DELAY = 0.2
#: Env knob the workload reads at call time: set while the slow shard
#: runs (forked workers inherit it), unset everywhere else.  The env is
#: not part of the spec fingerprint, so all runs share one journal
#: lineage — the delay changes *when* cells finish, never their rows.
DELAY_ENV = "E26_CELL_DELAY"


def _e26_workload(n: int, m: int, eps: float, seed: int):
    delay = float(os.environ.get(DELAY_ENV, "0") or 0.0)
    if delay:
        time.sleep(delay)
    return random_instance(n, m, eps, seed=seed)


def _spec() -> SweepSpec:
    return SweepSpec(
        epsilons=EPSILONS,
        machine_counts=MACHINES,
        algorithms=["threshold", "greedy"],
        workload=partial(_e26_workload, N_JOBS),
        repetitions=REPS,
        base_seed=26,
        label="elastic-bench",
    )


def snapshot() -> dict:
    """Static shard assignment vs elastic pool, same grid, same slow host."""
    spec = _spec()

    serial = execute_sweep(spec)
    assert serial.complete

    # -- static: one single-worker pass per shard; shard 0 is the slow host.
    with tempfile.TemporaryDirectory() as tmp:
        paths = shard_journal_paths(Path(tmp) / "sweep.jsonl", N_SHARDS)
        shard_seconds = []
        for i, path in enumerate(paths):
            if i == 0:
                os.environ[DELAY_ENV] = str(SLOW_DELAY)
            try:
                t0 = time.perf_counter()
                result = execute_sweep(
                    spec,
                    ExecutionPolicy(
                        shards=N_SHARDS, shard_index=i, journal=path, workers=1
                    ),
                )
                shard_seconds.append(round(time.perf_counter() - t0, 6))
            finally:
                os.environ.pop(DELAY_ENV, None)
            assert result.complete
        static_merged = merge_journals(paths)
    static_ratio = static_merged.straggler_ratio

    # -- elastic: one pull-scheduler pass; slot 0 is 10x slow (heartbeats
    #    flowing), slot 1 hard-dies picking up its 3rd cell every respawn.
    plan = WorkerChaosPlan(
        slow_worker=((0, SLOW_DELAY),), dead_worker=((1, 3),)
    )
    with tempfile.TemporaryDirectory() as tmp:
        elastic_path = Path(tmp) / "elastic.jsonl"
        t0 = time.perf_counter()
        elastic = execute_sweep(
            spec,
            ExecutionPolicy(
                elastic=True,
                workers=N_SHARDS,
                heartbeat_interval=0.05,
                journal=elastic_path,
                worker_chaos=plan,
            ),
        )
        elastic_seconds = time.perf_counter() - t0
        elastic_merged = merge_journals([elastic_path])
    info = elastic_merged.shards[0]
    elastic_ratio = elastic_merged.worker_straggler_ratio

    return {
        "bench": "E26 elastic vs static under a slow worker",
        "cells": static_merged.manifest.cells_total,
        "n_jobs": N_JOBS,
        "machines": MACHINES,
        "epsilons": EPSILONS,
        "repetitions": REPS,
        "base_seed": 26,
        "slow_delay_seconds": SLOW_DELAY,
        "n_workers": N_SHARDS,
        "static_shard_seconds": shard_seconds,
        "static_shard_walls": [s.wall_seconds for s in static_merged.shards],
        "static_straggler_ratio": (
            None if static_ratio is None else round(static_ratio, 4)
        ),
        "elastic_seconds": round(elastic_seconds, 6),
        "elastic_worker_walls": info.worker_wall_seconds,
        "elastic_straggler_ratio": (
            None if elastic_ratio is None else round(elastic_ratio, 4)
        ),
        "elastic_scheduler": info.scheduler,
        "elastic_recovered": elastic.manifest.recovered,
        "elastic_speculated": elastic.manifest.speculated,
        "elastic_cells_quarantined": elastic.manifest.quarantined,
        "elastic_workers_quarantined": elastic.manifest.workers_quarantined,
        "static_rows_bit_identical": static_merged.rows == serial.rows,
        "elastic_rows_bit_identical": elastic_merged.rows == serial.rows,
    }


def test_e26_elastic_beats_static_straggler(benchmark, save_artifact):
    snap = benchmark.pedantic(snapshot, rounds=1, iterations=1)

    # The acceptance bar: a 10x-slow host must stretch the static layout
    # but not the elastic pool, and neither may change the dataset.
    assert snap["static_straggler_ratio"] >= 1.9
    assert snap["elastic_straggler_ratio"] < 1.2
    assert snap["elastic_cells_quarantined"] == 0
    assert snap["static_rows_bit_identical"]
    assert snap["elastic_rows_bit_identical"]
    assert snap["elastic_scheduler"] == "elastic"

    benchmark.extra_info.update(
        {
            "cells": snap["cells"],
            "static_straggler_ratio": snap["static_straggler_ratio"],
            "elastic_straggler_ratio": snap["elastic_straggler_ratio"],
            "elastic_speculated": snap["elastic_speculated"],
        }
    )
    rows = [
        {
            "scheduler": "static",
            "unit": f"shard {i}" + (" (slow)" if i == 0 else ""),
            "wall (s)": snap["static_shard_walls"][i],
        }
        for i in range(snap["n_workers"])
    ] + [
        {
            "scheduler": "elastic",
            "unit": f"worker {i}"
            + {0: " (slow)", 1: " (dies)"}.get(i, ""),
            "wall (s)": snap["elastic_worker_walls"][i],
        }
        for i in range(snap["n_workers"])
    ]
    save_artifact(
        "e26_elastic.txt",
        format_table(
            rows,
            title=f"E26 — straggler ratio {snap['static_straggler_ratio']} "
            f"static vs {snap['elastic_straggler_ratio']} elastic "
            f"({snap['cells']} cells, {snap['slow_delay_seconds']}s slow delay)",
        ),
    )


def main() -> int:
    snap = snapshot()
    out = Path(__file__).resolve().parent.parent / "BENCH_elastic.json"
    out.write_text(json.dumps(snap, indent=2) + "\n")
    print(f"cells                    : {snap['cells']:10d}")
    print(f"static straggler ratio   : {snap['static_straggler_ratio']:10.3f}")
    print(f"elastic straggler ratio  : {snap['elastic_straggler_ratio']:10.3f}")
    print(f"elastic speculated       : {snap['elastic_speculated']:10d}")
    print(f"cells quarantined        : {snap['elastic_cells_quarantined']:10d}")
    print(
        "bit-identical rows       : "
        f"static={snap['static_rows_bit_identical']} "
        f"elastic={snap['elastic_rows_bit_identical']}"
    )
    print(f"wrote {out}")
    ok = (
        snap["static_rows_bit_identical"]
        and snap["elastic_rows_bit_identical"]
        and snap["elastic_cells_quarantined"] == 0
    )
    return 0 if ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
