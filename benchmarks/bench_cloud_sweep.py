"""E19 — the cloud operator's view: slack as a service-level knob.

The paper motivates slack as "a system parameter determined by the system
provider" (§1).  This bench runs the IaaS workload across a slack grid
with repetitions and bootstrap confidence intervals, answering the
operator question: *how much admission quality does buying more slack
(longer deadlines in the SLA) purchase?*

Checks:

* Threshold's mean certified ratio falls as slack grows (more slack =>
  milder worst case *and* milder average case);
* the per-ε theoretical guarantee always dominates the measured CI upper
  end;
* results are reproducible: the parallel and serial sweep paths agree.
"""

from functools import partial

from repro.analysis.stats import bootstrap_mean
from repro.analysis.tables import format_table
from repro.core.guarantees import theorem2_bound
from repro.workloads.cloud import cloud_instance
from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.sweep import SweepSpec

EPSILONS = [0.05, 0.1, 0.2, 0.4]
MACHINES = 4
REPS = 5
N_JOBS = 60


def _spec() -> SweepSpec:
    return SweepSpec(
        epsilons=EPSILONS,
        machine_counts=[MACHINES],
        algorithms=["threshold", "greedy"],
        workload=partial(cloud_instance, N_JOBS),
        repetitions=REPS,
        base_seed=77,
        force_bounds=True,
        label="cloud-sweep",
    )


def measure():
    rows_raw = execute_sweep(_spec()).rows
    out = []
    for eps in EPSILONS:
        for algorithm in ("threshold", "greedy"):
            ratios = [
                r.ratio_upper
                for r in rows_raw
                if r.epsilon == eps and r.algorithm == algorithm
            ]
            ci = bootstrap_mean(ratios, seed=0)
            out.append(
                {
                    "eps": eps,
                    "algorithm": algorithm,
                    "mean_ratio": ci.mean,
                    "ci_low": ci.lower,
                    "ci_high": ci.upper,
                    "guarantee": theorem2_bound(eps, MACHINES)
                    if algorithm == "threshold"
                    else 2 + 1 / eps,
                }
            )
    return rows_raw, out


def test_e19_cloud_slack_sweep(benchmark, save_artifact):
    rows_raw, rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    threshold_means = [r["mean_ratio"] for r in rows if r["algorithm"] == "threshold"]
    assert all(b <= a + 0.15 for a, b in zip(threshold_means, threshold_means[1:])), (
        "threshold's mean ratio should broadly improve with slack"
    )
    for row in rows:
        assert row["ci_high"] <= row["guarantee"] + 1e-9, row

    save_artifact(
        "e19_cloud_sweep.txt",
        format_table(
            rows,
            title=f"E19 — cloud workload, m={MACHINES}, {REPS} reps, "
            "bootstrap 95% CIs of the certified ratio",
        ),
    )


def test_e19_parallel_path_agrees(benchmark):
    spec = _spec()

    def both():
        serial = execute_sweep(spec)
        parallel = execute_sweep(
            spec, ExecutionPolicy(workers=2, retries=0, strict=True)
        )
        return serial.rows, parallel.rows

    serial, parallel = benchmark.pedantic(both, rounds=1, iterations=1)
    assert serial == parallel
