"""E3 — Proposition 1: c(eps, m) -> ln(1/eps) in the joint limit.

Two measurements, both recorded in the artefact:

1. **Fixed-slack limit.**  For fixed eps, c(eps, m) decreases in m and
   converges; our numerics identify the limit as ``2 + ln(1/eps)`` (the
   continuous model of Section 2 with the f >= 2 constraint active gives
   exactly ``e^{c-2} = 1/eps``).  The paper's Proposition 1 states
   ``ln(1/eps)``; the additive 2 is lower-order as eps -> 0, so both are
   consistent in the joint limit — EXPERIMENTS.md discusses the nuance.
2. **Joint limit.**  c(eps, m=512) / ln(1/eps) -> 1 as eps -> 0.
"""

import math

import pytest

import numpy as np

from repro.analysis.tables import format_table
from repro.core.params import c_bound

FIXED_EPS = 0.01
M_SERIES = (4, 8, 16, 32, 64, 128, 256, 512)
EPS_SERIES = (1e-2, 1e-3, 1e-4, 1e-6, 1e-8, 1e-10)
BIG_M = 512


def fixed_eps_rows():
    target = 2.0 + math.log(1.0 / FIXED_EPS)
    return [
        {
            "m": m,
            "c(eps,m)": c_bound(FIXED_EPS, m),
            "2+ln(1/eps)": target,
            "excess": c_bound(FIXED_EPS, m) - target,
        }
        for m in M_SERIES
    ]


def joint_limit_rows():
    return [
        {
            "eps": eps,
            "c(eps,512)": c_bound(eps, BIG_M),
            "ln(1/eps)": math.log(1.0 / eps),
            "ratio": c_bound(eps, BIG_M) / math.log(1.0 / eps),
        }
        for eps in EPS_SERIES
    ]


def test_prop1_fixed_eps_convergence(benchmark, save_artifact):
    rows = benchmark.pedantic(fixed_eps_rows, rounds=1, iterations=1)
    excess = [r["excess"] for r in rows]
    # Monotone convergence to the 2 + ln(1/eps) limit, roughly halving per
    # doubling of m.
    assert all(e > 0 for e in excess)
    assert all(b < a for a, b in zip(excess, excess[1:]))
    assert excess[-1] < 0.05
    halvings = [a / b for a, b in zip(excess, excess[1:])]
    assert np.median(halvings) == pytest.approx(2.0, abs=0.4)
    save_artifact(
        "prop1_fixed_eps.txt",
        format_table(rows, title=f"c(eps={FIXED_EPS}, m) vs 2 + ln(1/eps)"),
    )
    benchmark.extra_info["final_excess"] = excess[-1]


def test_prop1_joint_limit(benchmark, save_artifact):
    rows = benchmark.pedantic(joint_limit_rows, rounds=1, iterations=1)
    ratios = [r["ratio"] for r in rows]
    assert all(b < a for a, b in zip(ratios, ratios[1:])), "ratio must decrease"
    assert ratios[-1] < 1.12
    assert ratios[-1] > 1.0
    save_artifact(
        "prop1_joint_limit.txt",
        format_table(rows, title="c(eps, m=512) / ln(1/eps) -> 1 (Proposition 1)"),
    )
    benchmark.extra_info["final_ratio"] = ratios[-1]


