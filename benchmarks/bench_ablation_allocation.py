"""E10 — ablation: the best-fit allocation rule (Algorithm 1, Line 9).

Section 1.1 motivates allocating accepted jobs to the *most loaded*
candidate machine: it keeps the m - k + 1 least-loaded machines lightly
loaded (so the threshold stays low for future long jobs) and affects the
ability to accept longer jobs the least.  Measurements:

* **stacking probe** — a three-job instance where best-fit stacks two
  unit jobs and keeps a machine free for a later medium job, while
  worst-fit spreads them and the spread load *raises* the threshold
  (f_m times the least load) so the medium job is rejected: best-fit
  accepts strictly more;
* **adversary duels** — the Theorem-1 adversary never stacks (Lemma 1),
  so all rules coincide there (a consistency check, not a difference);
* **benign random** — worst-fit can accept *more* on easy inputs (it
  keeps thresholds high and that happens to act as a stricter filter
  less often than it helps); the paper's rule is a worst-case choice,
  and the artefact quantifies the trade.
"""

import pytest

from repro.adversary.base import duel
from repro.analysis.tables import format_table
from repro.core.threshold import AllocationRule, ThresholdPolicy
from repro.engine.simulator import simulate
from repro.model.instance import Instance
from repro.model.job import Job
from repro.workloads import random_instance

RULES = list(AllocationRule)


def stacking_probe_instance() -> Instance:
    # m=2, eps=0.1 (k=1, f_1 ~ 3.15, f_2 = 11).  After the two unit jobs:
    # best-fit loads (2, 0) -> threshold 6.3; worst-fit loads (1, 1) ->
    # threshold 11. The medium job (d = 6.5) passes only under best-fit.
    jobs = [Job(0.0, 1.0, 100.0), Job(0.0, 1.0, 4.0), Job(0.0, 2.0, 6.5)]
    return Instance(jobs, machines=2, epsilon=0.1, name="stacking-probe")


def measure():
    rows = []

    probe = stacking_probe_instance()
    probe_loads = {}
    for rule in RULES:
        s = simulate(ThresholdPolicy(allocation=rule), probe)
        probe_loads[rule.value] = s.accepted_load
        rows.append({"workload": "stacking-probe", "rule": rule.value, "value": s.accepted_load})

    duel_ratios = {}
    for rule in RULES:
        r = duel(ThresholdPolicy(allocation=rule), m=3, epsilon=0.2)
        duel_ratios[rule.value] = r.forced_ratio
        rows.append({"workload": "adversary(m=3,eps=0.2)", "rule": rule.value, "value": r.forced_ratio})

    benign = random_instance(150, 3, 0.2, seed=5)
    benign_loads = {}
    for rule in RULES:
        s = simulate(ThresholdPolicy(allocation=rule), benign)
        benign_loads[rule.value] = s.accepted_load
        rows.append({"workload": "benign-random", "rule": rule.value, "value": s.accepted_load})

    return rows, probe_loads, duel_ratios, benign_loads


def test_ablation_allocation(benchmark, save_artifact):
    rows, probe, duels, benign = benchmark.pedantic(measure, rounds=1, iterations=1)

    # The paper's rule wins the worst-case-flavoured probe outright.
    assert probe["best-fit"] > probe["worst-fit"] * 1.5
    assert probe["best-fit"] == pytest.approx(4.0)
    assert probe["worst-fit"] == pytest.approx(2.0)

    # All rules coincide under the non-stacking adversary.
    values = set(round(v, 9) for v in duels.values())
    assert len(values) == 1

    save_artifact(
        "ablation_allocation.txt",
        format_table(
            rows,
            title="E10 — allocation-rule ablation "
            "(value = accepted load, or forced ratio for the adversary row)",
        ),
    )
    benchmark.extra_info["probe"] = probe
    benchmark.extra_info["benign"] = benign
