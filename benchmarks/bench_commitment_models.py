"""E12/E13 — the price of commitment across the §1 model taxonomy.

The paper's introduction ranks commitment models by strength: immediate
commitment (this paper) > delayed commitment (Chen et al. [8]) >
commitment with penalties (Fung [15]) > commitment on admission.  These
benches *measure* that hierarchy on the bait-and-whale streams where
commitment hurts most:

* **E12 (delayed + on-admission)** — δ-deferral lets plain greedy dodge
  the trap; commitment-on-admission (lazy start) recovers near-offline
  value; the immediate-commitment Threshold algorithm recovers most of
  the deferral value with zero deferral (its entire point);
* **E13 (penalties)** — net value of revocable greedy interpolates from
  near-offline power at φ = 0 down to plain greedy as φ → ∞, and is
  monotone non-increasing in φ.

Artefacts: both tables.
"""

from repro.analysis.tables import format_table
from repro.baselines.registry import run_algorithm
from repro.engine.admission import AdmissionLazyPolicy, simulate_admission
from repro.engine.delayed import DelayedGreedyPolicy, simulate_delayed
from repro.engine.penalties import RevocableGreedyPolicy, simulate_with_penalties
from repro.offline.bracket import opt_bracket
from repro.workloads import alternating_instance

EPS_SERIES = [0.1, 0.05]
M = 3
ROUNDS = 4
PHI_SERIES = [0.0, 0.5, 2.0, 10.0, 1e9]


def measure_delayed():
    rows = []
    for eps in EPS_SERIES:
        inst = alternating_instance(pairs=ROUNDS, machines=M, epsilon=eps)
        opt_ub = opt_bracket(inst, force_bounds=True).upper
        greedy = run_algorithm("greedy", inst).accepted_load
        threshold = run_algorithm("threshold", inst).accepted_load
        on_admission = simulate_admission(AdmissionLazyPolicy(), inst).accepted_load
        for delta_frac, delta in [(0.0, 0.0), (0.5, eps / 2), (1.0, eps)]:
            delayed = simulate_delayed(DelayedGreedyPolicy(), inst, delta).accepted_load
            rows.append(
                {
                    "eps": eps,
                    "delta/eps": delta_frac,
                    "delayed-greedy": delayed,
                    "immediate greedy": greedy,
                    "immediate threshold": threshold,
                    "on-admission (lazy)": on_admission,
                    "opt_upper": opt_ub,
                }
            )
    return rows


def measure_penalties():
    rows = []
    for eps in EPS_SERIES:
        inst = alternating_instance(pairs=ROUNDS, machines=M, epsilon=eps)
        greedy = run_algorithm("greedy", inst).accepted_load
        for phi in PHI_SERIES:
            out = simulate_with_penalties(RevocableGreedyPolicy(), inst, phi)
            rows.append(
                {
                    "eps": eps,
                    "phi": phi,
                    "net_value": out.net_value,
                    "completed": out.completed_load,
                    "revoked_jobs": len(out.revoked),
                    "plain greedy": greedy,
                }
            )
    return rows


def test_e12_delayed_commitment(benchmark, save_artifact):
    rows = benchmark.pedantic(measure_delayed, rounds=1, iterations=1)
    for eps in EPS_SERIES:
        grp = {r["delta/eps"]: r for r in rows if r["eps"] == eps}
        # Zero deferral = plain greedy's trap.
        assert grp[0.0]["delayed-greedy"] == grp[0.0]["immediate greedy"]
        # Any real deferral escapes it by a large factor.
        assert grp[1.0]["delayed-greedy"] > 3.0 * grp[0.0]["immediate greedy"]
        # Immediate-commitment Threshold recovers most of the deferral value
        # with no deferral at all.
        assert grp[1.0]["immediate threshold"] > 0.8 * grp[1.0]["delayed-greedy"]
        # Commitment-on-admission (waiting allowed) approaches the offline
        # ceiling on this family — the weakest commitment is the strongest
        # scheduler, exactly the ordering of §1.
        assert grp[1.0]["on-admission (lazy)"] > grp[1.0]["delayed-greedy"]
        assert grp[1.0]["on-admission (lazy)"] > 0.9 * grp[1.0]["opt_upper"]
    save_artifact(
        "e12_delayed_commitment.txt",
        format_table(rows, title="E12 — the price of immediacy (bait-and-whale, m=3)"),
    )


def test_e13_commitment_with_penalties(benchmark, save_artifact):
    rows = benchmark.pedantic(measure_penalties, rounds=1, iterations=1)
    for eps in EPS_SERIES:
        grp = [r for r in rows if r["eps"] == eps]
        values = [r["net_value"] for r in grp]
        # Monotone non-increasing in phi; endpoints sandwich greedy.
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
        assert grp[0]["net_value"] > 3.0 * grp[0]["plain greedy"]
        assert grp[-1]["net_value"] == grp[-1]["plain greedy"]
        assert grp[-1]["revoked_jobs"] == 0
    save_artifact(
        "e13_commitment_penalties.txt",
        format_table(
            rows,
            title="E13 — commitment with penalties: net value vs phi "
            "(bait-and-whale, m=3)",
        ),
    )
