"""E14 — growth rates and the corner closed form.

Quantitative checks of the phase-structure statements in Section 1.1:

* the *dominant first phase* grows like ``eps^{-1/m}``: log-log fits on
  the numeric curve deep inside phase 1 recover slope ``-1/m`` to 2 %;
* the last phase is ``1 + 1/m + 1/eps`` exactly (slope -1 after shift);
* the corner values obey the closed form
  ``eps_{k,m} = (km/(km+2m+1))^{m-k}`` — derived in this reproduction and
  validated against exact rational arithmetic (a contribution on top of
  the paper, which computes corners numerically);
* the *measured* forced ratios of the adversary duels inherit the same
  growth: fitting forced ratios of the Threshold algorithm over an eps
  series inside phase 1 reproduces slope ``-1/m``.
"""

import numpy as np

from repro.adversary.base import duel
from repro.analysis.stats import fit_power_law
from repro.analysis.tables import format_table
from repro.core.params import (
    BoundFunction,
    corner_closed_form,
    corner_values,
    corner_values_exact,
)
from repro.core.threshold import ThresholdPolicy


def fit_curve_slopes():
    rows = []
    for m in (2, 3, 4, 5):
        eps = np.geomspace(1e-8, 1e-5, 25)
        fit = fit_power_law(eps, BoundFunction(m).series(eps))
        rows.append(
            {
                "m": m,
                "fit_slope": fit.slope,
                "predicted": -1.0 / m,
                "r_squared": fit.r_squared,
            }
        )
    return rows


def fit_duel_slopes():
    rows = []
    for m in (2, 3):
        corners = corner_values(m)
        eps_series = np.geomspace(corners[1] / 300.0, corners[1] / 3.0, 6)
        forced = [
            duel(ThresholdPolicy(), m=m, epsilon=float(e)).forced_ratio
            for e in eps_series
        ]
        fit = fit_power_law(eps_series, forced)
        rows.append(
            {
                "m": m,
                "fit_slope": fit.slope,
                "predicted": -1.0 / m,
                "r_squared": fit.r_squared,
            }
        )
    return rows


def corner_table():
    rows = []
    for m in (2, 3, 4, 5, 8):
        exact = corner_values_exact(m)
        for k in range(1, m):
            rows.append(
                {
                    "m": m,
                    "k": k,
                    "exact": str(exact[k]),
                    "closed_form": corner_closed_form(k, m),
                    "float_pipeline": corner_values(m)[k],
                }
            )
    return rows


def test_e14_curve_growth_rates(benchmark, save_artifact):
    rows = benchmark.pedantic(fit_curve_slopes, rounds=1, iterations=1)
    for row in rows:
        assert abs(row["fit_slope"] - row["predicted"]) < 0.02, row
        assert row["r_squared"] > 0.999
    save_artifact(
        "e14_curve_growth_rates.txt",
        format_table(rows, title="E14a — dominant-phase exponent: c ~ eps^{-1/m}"),
    )


def test_e14_measured_duel_growth_rates(benchmark, save_artifact):
    rows = benchmark.pedantic(fit_duel_slopes, rounds=1, iterations=1)
    for row in rows:
        assert abs(row["fit_slope"] - row["predicted"]) < 0.05, row
    save_artifact(
        "e14_duel_growth_rates.txt",
        format_table(
            rows,
            title="E14b — exponent recovered from *measured* forced ratios",
        ),
    )


def test_e14_corner_closed_form(benchmark, save_artifact):
    rows = benchmark.pedantic(corner_table, rounds=1, iterations=1)
    import math
    from fractions import Fraction

    for row in rows:
        # Agreement to float round-off (the closed form and the rational
        # chain take different arithmetic paths).
        assert math.isclose(
            row["closed_form"], float(Fraction(row["exact"])), rel_tol=1e-14
        )
        assert math.isclose(
            row["closed_form"], row["float_pipeline"], rel_tol=1e-11
        )
    save_artifact(
        "e14_corner_closed_form.txt",
        format_table(
            rows,
            title="E14c — corner values: exact rationals vs "
            "(km/(km+2m+1))^{m-k} vs float pipeline",
            precision=10,
        ),
    )
