"""E24 — sharded sweep execution: partition, merge, bit-identical rows.

A multi-host sweep only earns its keep if splitting the grid changes
*nothing* about the data: the deterministic per-cell seeds mean a cell
computed on shard 3 of 4 must equal the same cell in a single-host run
bit for bit, and :func:`repro.workloads.sharding.merge_journals` must
reassemble the shard journals into exactly the single-host row list.
This bench runs a grid both ways — one resilient single-host pass, then
four independent shard passes with stamped journals plus a merge — and
certifies:

* the merged rows are **bit-identical**, row for row, to the single-host
  run (the acceptance bar for the sharding layer);
* the shard plan balances expected cost (max/mean cost ratio near 1);
* the merge is complete — no missing cells, no duplicates, nothing
  quarantined — and reports per-shard wall-clock and straggler ratio.

Run directly (``python benchmarks/bench_sharding.py``) to write the
machine-readable snapshot ``BENCH_sharding.json`` at the repository
root.
"""

import json
import tempfile
import time
from functools import partial
from pathlib import Path

from repro.analysis.tables import format_table
from repro.workloads.execute import ExecutionPolicy, execute_sweep
from repro.workloads.random_instances import random_instance
from repro.workloads.sharding import ShardPlan, merge_journals, shard_journal_paths
from repro.workloads.sweep import SweepSpec

EPSILONS = [0.1, 0.25, 0.5]
MACHINES = [1, 2, 3]
REPS = 3
N_JOBS = 14
N_SHARDS = 4


def _spec() -> SweepSpec:
    return SweepSpec(
        epsilons=EPSILONS,
        machine_counts=MACHINES,
        algorithms=["threshold", "greedy"],
        workload=partial(random_instance, N_JOBS),
        repetitions=REPS,
        base_seed=24,
        label="sharding-bench",
    )


def snapshot() -> dict:
    """Single-host vs 4-shard-merge comparison over one grid."""
    spec = _spec()
    plan = ShardPlan.build(spec, N_SHARDS)

    t0 = time.perf_counter()
    single = execute_sweep(spec, ExecutionPolicy(workers=4))
    single_seconds = time.perf_counter() - t0
    assert single.complete

    with tempfile.TemporaryDirectory() as tmp:
        paths = shard_journal_paths(Path(tmp) / "sweep.jsonl", N_SHARDS)
        shard_seconds = []
        for i, path in enumerate(paths):
            t0 = time.perf_counter()
            result = execute_sweep(
                spec,
                ExecutionPolicy(
                    shards=N_SHARDS, shard_index=i, journal=path, workers=2
                ),
            )
            shard_seconds.append(round(time.perf_counter() - t0, 6))
            assert result.complete
        t0 = time.perf_counter()
        merged = merge_journals(paths)
        merge_seconds = time.perf_counter() - t0

    return {
        "bench": "E24 sharded sweep",
        "cells": merged.manifest.cells_total,
        "n_jobs": N_JOBS,
        "machines": MACHINES,
        "epsilons": EPSILONS,
        "repetitions": REPS,
        "base_seed": 24,
        "n_shards": N_SHARDS,
        "shard_cells": [info.cells for info in merged.shards],
        "plan_costs": list(plan.costs()),
        "plan_balance_ratio": round(plan.balance_ratio, 6),
        "single_host_seconds": round(single_seconds, 6),
        "shard_seconds": shard_seconds,
        "merge_seconds": round(merge_seconds, 6),
        "straggler_ratio": (
            None
            if merged.straggler_ratio is None
            else round(merged.straggler_ratio, 4)
        ),
        "missing": len(merged.missing),
        "duplicates": merged.duplicates,
        "quarantined": merged.manifest.quarantined,
        "rows": len(merged.rows),
        "rows_bit_identical": merged.rows == single.rows,
    }


def test_e24_sharded_merge_bit_identical(benchmark, save_artifact):
    snap = benchmark.pedantic(snapshot, rounds=1, iterations=1)

    # The acceptance bar: sharding must not change the dataset at all.
    assert snap["rows_bit_identical"]
    assert snap["missing"] == 0
    assert snap["duplicates"] == 0
    assert snap["quarantined"] == 0
    assert sum(snap["shard_cells"]) == snap["cells"]

    # The LPT plan keeps expected cost balanced across shards.
    assert snap["plan_balance_ratio"] <= 4 / 3 + 1e-9

    benchmark.extra_info.update(
        {
            "cells": snap["cells"],
            "n_shards": snap["n_shards"],
            "plan_balance_ratio": snap["plan_balance_ratio"],
            "straggler_ratio": snap["straggler_ratio"],
            "merge_seconds": snap["merge_seconds"],
        }
    )
    rows = [
        {
            "shard": i,
            "cells": snap["shard_cells"][i],
            "planned cost": snap["plan_costs"][i],
            "seconds": snap["shard_seconds"][i],
        }
        for i in range(snap["n_shards"])
    ]
    save_artifact(
        "e24_sharding.txt",
        format_table(
            rows,
            title=f"E24 — {snap['cells']} cells over {snap['n_shards']} shards "
            f"(balance {snap['plan_balance_ratio']}, merge "
            f"{snap['merge_seconds']}s, bit-identical: "
            f"{snap['rows_bit_identical']})",
        ),
    )


def main() -> int:
    snap = snapshot()
    out = Path(__file__).resolve().parent.parent / "BENCH_sharding.json"
    out.write_text(json.dumps(snap, indent=2) + "\n")
    print(f"cells              : {snap['cells']:10d}")
    print(f"shards             : {snap['n_shards']:10d} {snap['shard_cells']}")
    print(f"plan balance ratio : {snap['plan_balance_ratio']:10.3f}")
    ratio = snap["straggler_ratio"]
    print(f"straggler ratio    : {ratio if ratio is not None else 'n/a':>10}")
    print(f"merge time         : {snap['merge_seconds'] * 1e3:10.1f} ms")
    print(f"bit-identical rows : {str(snap['rows_bit_identical']):>10}")
    print(f"wrote {out}")
    return 0 if snap["rows_bit_identical"] else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
