"""E9 — the Section-1.2 comparison, measured.

Runs every algorithm in the registry over three workload regimes and
produces the comparison table the paper's related-work discussion implies:

* **benign random** — greedy-style policies win (worst-case-safe
  admission pays a price on easy inputs);
* **bait-and-whale adversarial** — Threshold wins by a growing factor for
  m >= 2 (the commitment-aware admission earning its keep);
* **cloud mix** — the motivating scenario; all certified ratios must stay
  within the published guarantees.

Artefact: all three tables.
"""

from repro.analysis.ratio import compare_algorithms
from repro.analysis.tables import format_table
from repro.baselines.registry import run_algorithm
from repro.workloads import alternating_instance, cloud_instance, random_instance

ALGORITHMS = ["threshold", "greedy", "lee-style", "dasgupta-palis", "migration-greedy"]


def measure_benign():
    inst = random_instance(120, 3, 0.2, seed=11)
    return inst, compare_algorithms(ALGORITHMS, inst)


def measure_cloud():
    inst = cloud_instance(160, 4, 0.1, seed=12, utilization=1.8)
    return inst, compare_algorithms(ALGORITHMS, inst)


def measure_adversarial():
    rows = []
    for eps in (0.1, 0.05, 0.02):
        inst = alternating_instance(pairs=5, machines=3, epsilon=eps)
        th = run_algorithm("threshold", inst).accepted_load
        gr = run_algorithm("greedy", inst).accepted_load
        lee = run_algorithm("lee-style", inst).accepted_load
        rows.append(
            {
                "eps": eps,
                "threshold": th,
                "greedy": gr,
                "lee-style": lee,
                "threshold/greedy": th / gr,
            }
        )
    return rows


def test_comparison_benign_and_cloud(benchmark, save_artifact):
    def run():
        return measure_benign(), measure_cloud()

    (benign_inst, benign), (cloud_inst, cloud) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    for rep in benign + cloud:
        assert rep.within_guarantee, rep.algorithm

    # On benign inputs the aggressive policies out-accept Threshold.
    loads = {r.algorithm: r.accepted_load for r in benign}
    assert loads["greedy"] >= loads["threshold"]

    text = (
        format_table(
            [r.as_dict() for r in benign],
            columns=["algorithm", "load", "ratio_upper", "guarantee", "within"],
            title=f"benign random ({benign_inst.describe()['jobs']} jobs, m=3, eps=0.2)",
        )
        + "\n\n"
        + format_table(
            [r.as_dict() for r in cloud],
            columns=["algorithm", "load", "ratio_upper", "guarantee", "within"],
            title=f"cloud mix ({cloud_inst.describe()['jobs']} jobs, m=4, eps=0.1)",
        )
    )
    save_artifact("comparison_benign_cloud.txt", text)


def test_comparison_adversarial(benchmark, save_artifact):
    rows = benchmark.pedantic(measure_adversarial, rounds=1, iterations=1)

    factors = [r["threshold/greedy"] for r in rows]
    assert all(f > 2.0 for f in factors), rows
    assert factors[-1] > factors[0], "threshold's edge must grow as eps shrinks"

    save_artifact(
        "comparison_adversarial.txt",
        format_table(
            rows,
            title="bait-and-whale (m=3): accepted load per algorithm — "
            "who wins and by what factor",
        ),
    )
    benchmark.extra_info["threshold_over_greedy"] = factors
