"""E6 — Fig. 2: the adversary's decision tree, fully simulated.

Enumerates every root-to-leaf path of the three-phase game for the Fig. 2
setting (m = 3, eps in [eps_{1,3}, eps_{2,3})) and for m = 2 in both its
phases.  Checks Theorem 1's structural claims:

* every leaf forces at least c(eps, m);
* the adversary equalises the leaves reachable at u = k (Eq. (5)) — they
  are all tight;
* the minimum over leaves equals c(eps, m): the algorithm cannot escape.

Artefact: the rendered tree per configuration.
"""

from repro.adversary.analysis import (
    enumerate_decision_tree,
    render_decision_tree,
    render_decision_tree_dot,
)
from repro.core.params import c_bound, threshold_parameters

CONFIGS = [(3, 0.2), (3, 0.1), (2, 0.1), (2, 0.5)]
RATIO_TOL = 5e-3


def enumerate_all():
    return {
        (m, eps): enumerate_decision_tree(m, eps) for m, eps in CONFIGS
    }


def test_fig2_decision_tree(benchmark, save_artifact):
    trees = benchmark.pedantic(enumerate_all, rounds=1, iterations=1)

    blocks = []
    for (m, eps), outcomes in trees.items():
        c = c_bound(eps, m)
        k = threshold_parameters(eps, m).k

        for o in outcomes:
            assert o.forced_ratio >= c * (1 - RATIO_TOL), (m, eps, o.u, o.h)

        tight = [o for o in outcomes if o.u == k]
        assert tight, "the u = k branch must exist"
        for o in tight:
            assert abs(o.forced_ratio - c) / c < RATIO_TOL, (m, eps, o.u, o.h)

        best = min(o.forced_ratio for o in outcomes)
        assert abs(best - c) / c < RATIO_TOL

        blocks.append(
            f"=== m={m}, eps={eps} (k={k}, c={c:.4f}) ===\n"
            + render_decision_tree(outcomes)
        )
    save_artifact("fig2_decision_trees.txt", "\n\n".join(blocks) + "\n")
    save_artifact(
        "fig2_decision_tree.dot",
        render_decision_tree_dot(
            trees[(3, 0.2)], title="Fig. 2 — m=3, eps=0.2 (k=2)"
        ),
    )
    benchmark.extra_info["leaf_counts"] = {
        f"m={m},eps={eps}": len(outs) for (m, eps), outs in trees.items()
    }
