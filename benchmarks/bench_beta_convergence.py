"""E17 — adversary discretisation: forced ratio converges as beta -> 0.

Theorem 1's construction uses an overlap interval of width beta > 0
(Lemma 1); the proof takes beta -> 0.  This bench quantifies the
discretisation: the gap between the forced ratio and the ideal c(eps, m)
shrinks (roughly linearly) with beta, certifying that the implementation's
default beta contributes < 0.1 % error to every E4/E6 number.
"""

from repro.adversary.base import duel
from repro.analysis.tables import format_table
from repro.core.params import c_bound
from repro.core.threshold import ThresholdPolicy

CONFIGS = [(2, 0.1), (3, 0.2)]
BETAS = [1e-2, 1e-3, 1e-4, 1e-5]


def measure():
    rows = []
    for m, eps in CONFIGS:
        target = c_bound(eps, m)
        for beta in BETAS:
            result = duel(ThresholdPolicy(), m=m, epsilon=eps, beta=beta)
            rows.append(
                {
                    "m": m,
                    "eps": eps,
                    "beta": beta,
                    "forced": result.forced_ratio,
                    "c": target,
                    "relative_gap": abs(result.forced_ratio - target) / target,
                }
            )
    return rows


def test_e17_beta_convergence(benchmark, save_artifact):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    for m, eps in CONFIGS:
        gaps = [r["relative_gap"] for r in rows if (r["m"], r["eps"]) == (m, eps)]
        # Monotone (weakly) decreasing and tiny at the smallest beta.
        assert all(b <= a + 1e-12 for a, b in zip(gaps, gaps[1:])), gaps
        assert gaps[-1] < 1e-4
        # Roughly linear in beta: two decades of beta buy >= one decade of gap.
        assert gaps[-1] < gaps[0] / 10.0
    save_artifact(
        "e17_beta_convergence.txt",
        format_table(
            rows,
            title="E17 — forced ratio vs c(eps,m) as the Lemma-1 interval shrinks",
            precision=6,
        ),
    )
    benchmark.extra_info["smallest_gap"] = min(r["relative_gap"] for r in rows)
