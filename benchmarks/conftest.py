"""Shared helpers for the benchmark harness.

Every benchmark writes its paper-style table/figure artefact to
``benchmarks/out/<name>.txt`` (so the reproduced rows/series survive the
run) and attaches headline numbers to ``benchmark.extra_info`` (so they
appear in pytest-benchmark's JSON export).
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    """Write a named text artefact; returns the path."""

    def _save(name: str, text: str) -> pathlib.Path:
        path = artifact_dir / name
        path.write_text(text)
        return path

    return _save
