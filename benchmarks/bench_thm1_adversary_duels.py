"""E4 — Theorem 1: the three-phase adversary forces c(eps, m).

Plays the Section-3 adversary against the Threshold algorithm and the
non-preemptive baselines across a (m, eps) grid.  Shape checks:

* Threshold's forced ratio lands in ``[c(eps,m) (1 - tol), c + 0.165]`` —
  the Theorem-1 / Theorem-2 sandwich (tol covers beta-discretisation);
* greedy and Lee-style are forced to at least c, usually far above it;
* greedy approaches its own 2 + 1/eps guarantee in the small-slack regime.

Artefact: the full duel table (``out/thm1_adversary_duels.txt``).
"""

import pytest

from repro.adversary.base import duel
from repro.analysis.tables import format_table
from repro.baselines.greedy import GreedyPolicy
from repro.baselines.lee import LeeStylePolicy
from repro.core.guarantees import theorem2_bound
from repro.core.params import c_bound
from repro.core.threshold import ThresholdPolicy

GRID = [
    (1, 0.05), (1, 0.2), (1, 0.8),
    (2, 0.05), (2, 0.2), (2, 0.5),
    (3, 0.05), (3, 0.2), (3, 0.6),
    (4, 0.1), (4, 0.3),
    (5, 0.1),
]
POLICIES = [ThresholdPolicy, GreedyPolicy, LeeStylePolicy]
#: Relative slack for beta-discretisation of the forced ratio.
RATIO_TOL = 5e-3


def run_duels():
    rows = []
    for m, eps in GRID:
        for factory in POLICIES:
            policy = factory()
            result = duel(policy, m=m, epsilon=eps)
            rows.append(
                {
                    "m": m,
                    "eps": eps,
                    "algorithm": policy.name,
                    "forced": result.forced_ratio,
                    "c": c_bound(eps, m),
                    "thm2_cap": theorem2_bound(eps, m),
                    "u": result.summary["u"],
                    "h": result.summary["final_h"],
                }
            )
    return rows


def test_thm1_adversary_duels(benchmark, save_artifact):
    rows = benchmark.pedantic(run_duels, rounds=1, iterations=1)

    for row in rows:
        assert row["forced"] >= row["c"] * (1.0 - RATIO_TOL), row

    threshold_rows = [r for r in rows if r["algorithm"] == "threshold"]
    for row in threshold_rows:
        assert row["forced"] <= row["thm2_cap"] + 0.01, row

    greedy_small_slack = [
        r for r in rows if r["algorithm"] == "greedy" and r["eps"] <= 0.2 and r["m"] >= 2
    ]
    for row in greedy_small_slack:
        assert row["forced"] >= 0.85 * (2.0 + 1.0 / row["eps"]), row

    save_artifact(
        "thm1_adversary_duels.txt",
        format_table(rows, title="Theorem-1 duels: forced ratio vs c(eps, m)"),
    )
    worst_gap = max(
        abs(r["forced"] - r["c"]) / r["c"] for r in threshold_rows
    )
    benchmark.extra_info["threshold_worst_relative_gap"] = worst_gap


@pytest.mark.parametrize("m,eps", [(2, 0.2), (3, 0.2)])
def test_duel_speed(benchmark, m, eps):
    """Raw duel latency for one Threshold game (engine + adversary cost)."""
    result = benchmark(lambda: duel(ThresholdPolicy(), m=m, epsilon=eps))
    assert result.forced_ratio >= 1.0
