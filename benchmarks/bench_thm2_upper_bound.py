"""E5 — Theorem 2: measured ratios of Threshold never exceed the bound.

Certified check across workload families: the empirical ratio computed
against a certified *upper* bound on OPT (exact optimum on small
instances, flow relaxation on large ones) over-estimates the true ratio,
so staying below ``theorem2_bound`` is a genuine verification on every
sampled instance.

Families: random uniform, tight-slack lognormal, bursty common-release,
cloud mix, and the static adversarial-like replay — across eps and m.
"""

from repro.analysis.tables import format_table
from repro.baselines.registry import run_algorithm
from repro.core.guarantees import theorem2_bound
from repro.offline.bracket import opt_bracket
from repro.workloads import (
    adversarial_like_instance,
    burst_instance,
    cloud_instance,
    random_instance,
    tight_slack_instance,
)

SMALL_GRID = [(0.1, 2), (0.3, 2), (0.2, 3), (0.5, 3)]
LARGE_GRID = [(0.1, 2), (0.2, 4)]


def _families_small(eps, m, seed):
    yield random_instance(11, m, eps, seed=seed)
    yield tight_slack_instance(11, m, eps, seed=seed, distribution="lognormal")
    yield burst_instance(2, 5, machines=m, epsilon=eps, seed=seed)


def _families_large(eps, m, seed):
    yield random_instance(120, m, eps, seed=seed)
    yield cloud_instance(120, m, eps, seed=seed)
    yield adversarial_like_instance(machines=m, epsilon=eps)


def measure(grid, families, force_bounds):
    rows = []
    for eps, m in grid:
        for seed in (0, 1):
            for inst in families(eps, m, seed):
                bracket = opt_bracket(inst, force_bounds=force_bounds)
                result = run_algorithm("threshold", inst)
                ratio = (
                    float("inf")
                    if result.accepted_load <= 0
                    else bracket.upper / result.accepted_load
                )
                rows.append(
                    {
                        "workload": inst.name,
                        "eps": eps,
                        "m": m,
                        "seed": seed,
                        "load": result.accepted_load,
                        "opt_upper": bracket.upper,
                        "ratio_upper": ratio,
                        "bound": theorem2_bound(eps, m),
                        "exact_opt": bracket.exact,
                    }
                )
    return rows


def test_thm2_small_instances_exact_opt(benchmark, save_artifact):
    rows = benchmark.pedantic(
        lambda: measure(SMALL_GRID, _families_small, force_bounds=False),
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row["exact_opt"], "small instances must use the exact optimum"
        assert row["ratio_upper"] <= row["bound"] + 1e-9, row
    save_artifact(
        "thm2_small_instances.txt",
        format_table(rows, title="Theorem 2 vs exact OPT (small instances)"),
    )
    benchmark.extra_info["max_ratio"] = max(r["ratio_upper"] for r in rows)
    benchmark.extra_info["min_headroom"] = min(
        r["bound"] - r["ratio_upper"] for r in rows
    )


def test_thm2_large_instances_flow_bound(benchmark, save_artifact):
    rows = benchmark.pedantic(
        lambda: measure(LARGE_GRID, _families_large, force_bounds=True),
        rounds=1,
        iterations=1,
    )
    for row in rows:
        assert row["ratio_upper"] <= row["bound"] + 1e-9, row
    save_artifact(
        "thm2_large_instances.txt",
        format_table(rows, title="Theorem 2 vs flow upper bound (large instances)"),
    )
    benchmark.extra_info["max_ratio"] = max(r["ratio_upper"] for r in rows)
