"""E18 — blind falsification search vs the theorems.

Stochastic local search over instance space tries to push each policy's
certified empirical ratio as high as possible with no knowledge of the
paper's constructions.  Two claims are checked:

* **soundness** — the search never exceeds any published guarantee
  (Theorem 2 for Threshold, 2 + 1/eps for greedy): the theorems hold not
  only against the hand-built adversary but against automated attack;
* **usefulness** — the search finds a substantial fraction of the
  theoretical worst case blindly (> 50 % on the single machine), i.e. it
  is a meaningful robustness probe for policies *without* published
  bounds.
"""

from repro.adversary.search import falsify
from repro.analysis.tables import format_table
from repro.core.guarantees import greedy_bound, theorem2_bound

CONFIGS = [(1, 0.1), (2, 0.2)]
BUDGET = 300
SEEDS = (1, 2)


def measure():
    rows = []
    for m, eps in CONFIGS:
        for algorithm, bound in (
            ("threshold", theorem2_bound(eps, m)),
            ("greedy", greedy_bound(eps, m)),
        ):
            best = 0.0
            for seed in SEEDS:
                r = falsify(
                    algorithm, machines=m, epsilon=eps, budget=BUDGET,
                    n_jobs=6, seed=seed,
                )
                best = max(best, r.best_ratio)
            rows.append(
                {
                    "m": m,
                    "eps": eps,
                    "algorithm": algorithm,
                    "found_ratio": best,
                    "guarantee": bound,
                    "fraction_of_worst_case": best / bound,
                }
            )
    return rows


def test_e18_falsification(benchmark, save_artifact):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    for row in rows:
        assert row["found_ratio"] <= row["guarantee"] + 1e-6, row
    single_machine = [r for r in rows if r["m"] == 1]
    assert any(r["fraction_of_worst_case"] > 0.5 for r in single_machine)
    save_artifact(
        "e18_falsification.txt",
        format_table(
            rows,
            title=f"E18 — blind search ({BUDGET} evals x {len(SEEDS)} seeds) "
            "vs published guarantees",
        ),
    )
    benchmark.extra_info["max_fraction"] = max(
        r["fraction_of_worst_case"] for r in rows
    )
